"""repro -- Safe Data Sharing and Data Dissemination on Smart Devices.

A full Python reproduction of Bouganim, Cremarenco, Dang Ngoc, Dieu,
Pucheral (SIGMOD 2005): client-based access control for XML documents
evaluated inside a smart-card Secure Operating Environment, with a
streaming non-deterministic-automata rule engine, an embedded skip
index, chunked authenticated encryption, a DSP, a terminal proxy and
the two demo applications (collaborative sharing and selective
dissemination).

Quickstart (the full architecture, through the facade)::

    from repro import Community

    community = Community()
    owner = community.enroll("owner")
    doctor = community.enroll("doctor")
    doc = owner.publish(xml_text,
                        [("+", "doctor", "//patient"),
                         ("-", "doctor", "//billing")],
                        to=[doctor])
    with doctor.open(doc) as session:
        print(session.query().text())

The streaming rule engine is also usable on its own::

    from repro import AccessRule, RuleSet, authorized_view
    from repro.xmlstream import parse_string, write_string

    rules = RuleSet([AccessRule.parse("+", "doctor", "//patient"),
                     AccessRule.parse("-", "doctor", "//billing")])
    view = authorized_view(parse_string(xml_text), rules, "doctor")
    print(write_string(view))

See ``examples/`` for the full smart-card architecture in action and
:mod:`repro.errors` for the exception taxonomy.
"""

from repro.community import (
    Channel,
    Community,
    Document,
    Member,
    Session,
    ViewStream,
)
from repro.core import (
    AccessController,
    AccessRule,
    CompiledPolicy,
    MultiSubjectEvaluator,
    PolicyRegistry,
    RuleSet,
    Sign,
    Subject,
    ViewMode,
    authorized_view,
    compile_policy,
    multicast_views,
    reference_view,
)
from repro.errors import (
    AccessDenied,
    DocumentLocked,
    KeyNotGranted,
    PolicyError,
    ReproError,
    ResourceExhausted,
    TamperDetected,
    TransportError,
)
from repro.skipindex import IndexMode
from repro.smartcard import PendingStrategy, SmartCard
from repro.terminal import Publisher, Terminal

__version__ = "1.2.0"

__all__ = [
    "AccessController",
    "AccessDenied",
    "AccessRule",
    "Channel",
    "Community",
    "CompiledPolicy",
    "Document",
    "DocumentLocked",
    "IndexMode",
    "KeyNotGranted",
    "Member",
    "MultiSubjectEvaluator",
    "PendingStrategy",
    "PolicyError",
    "PolicyRegistry",
    "Publisher",
    "ReproError",
    "ResourceExhausted",
    "RuleSet",
    "Session",
    "Sign",
    "SmartCard",
    "Subject",
    "TamperDetected",
    "Terminal",
    "TransportError",
    "ViewMode",
    "ViewStream",
    "authorized_view",
    "compile_policy",
    "multicast_views",
    "reference_view",
    "__version__",
]
