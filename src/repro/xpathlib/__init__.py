"""The XPath fragment ``XP{[],*,//}`` used by access rules and queries.

The paper restricts rule objects and queries to "a rather robust subset
of XPath [...] node tests, the child axis (/), the descendant axis (//),
wildcards (*) and predicates or branches [...]" (Section 2.2, after
Miklau & Suciu).  This package provides the AST, a parser, a reference
(tree-based) evaluator used as the testing oracle, and a sound
containment test used for rule analysis.
"""

from repro.xpathlib.ast import (
    Axis,
    Comparison,
    NodeTest,
    Path,
    Predicate,
    Step,
)
from repro.xpathlib.evaluator import evaluate_path, node_matches_path
from repro.xpathlib.parser import XPathSyntaxError, parse_path

__all__ = [
    "Axis",
    "Comparison",
    "NodeTest",
    "Path",
    "Predicate",
    "Step",
    "XPathSyntaxError",
    "evaluate_path",
    "node_matches_path",
    "parse_path",
]
