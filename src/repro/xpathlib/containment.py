"""Sound containment test for the fragment ``XP{[],*,//}``.

Following Miklau & Suciu ("Containment and equivalence for an XPath
fragment", PODS 2002 -- reference [7] of the paper), a path expression
is viewed as a *tree pattern* and ``q ⊆ p`` holds whenever there is a
homomorphism from ``pattern(p)`` to ``pattern(q)``.

The homomorphism test is **sound** for the whole fragment and complete
for its sub-fragments ``XP{[],//}`` and ``XP{[],*}``; for the combined
fragment it may miss some containments (deciding those is coNP-hard),
which is acceptable for its use here: the rule analyser only *prunes*
work when containment is proven.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpathlib.ast import Comparison, Path, Predicate


@dataclass
class _PatternNode:
    """A node of the tree pattern derived from a path expression."""

    label: str | None  # None is the wildcard
    comparison: Comparison | None = None
    children: list[tuple["_PatternNode", bool]] = field(default_factory=list)
    is_output: bool = False

    def add(self, child: "_PatternNode", descendant_edge: bool) -> "_PatternNode":
        self.children.append((child, descendant_edge))
        return child


_ROOT_LABEL = "\x00root"


def _attach_predicate(node: _PatternNode, predicate: Predicate) -> None:
    if predicate.path is None:
        # A dot predicate constrains the node's own value.
        node.comparison = predicate.comparison
        return
    current = node
    steps = predicate.path.steps
    for index, step in enumerate(steps):
        child = _PatternNode(step.test.name)
        current = current.add(child, step.axis.name == "DESCENDANT")
        for nested in step.predicates:
            _attach_predicate(current, nested)
        if index == len(steps) - 1 and predicate.comparison is not None:
            current.comparison = predicate.comparison


def build_pattern(path: Path) -> _PatternNode:
    """Convert an absolute path into its tree pattern.

    The returned node is a virtual document root; the pattern's output
    node corresponds to the final location step.
    """
    if not path.absolute:
        raise ValueError("patterns are built from absolute paths")
    root = _PatternNode(_ROOT_LABEL)
    current = root
    for step in path.steps:
        child = _PatternNode(step.test.name)
        current = current.add(child, step.axis.name == "DESCENDANT")
        for predicate in step.predicates:
            _attach_predicate(current, predicate)
    current.is_output = True
    return root


def _labels_compatible(p_node: _PatternNode, q_node: _PatternNode) -> bool:
    if p_node.label == _ROOT_LABEL or q_node.label == _ROOT_LABEL:
        return p_node.label == q_node.label
    if p_node.label is not None and p_node.label != q_node.label:
        # A named test in p can still map onto a wildcard in q only if
        # q's wildcard is *less* specific -- that direction is unsound,
        # so require q to carry the same (or a concrete equal) label.
        return False
    if p_node.comparison is not None and p_node.comparison != q_node.comparison:
        return False
    if p_node.is_output and not q_node.is_output:
        return False
    return True


def _descendant_targets(q_node: _PatternNode) -> list[_PatternNode]:
    """All proper descendants of ``q_node`` in the pattern."""
    result: list[_PatternNode] = []
    stack = [child for child, _ in q_node.children]
    while stack:
        node = stack.pop()
        result.append(node)
        stack.extend(child for child, _ in node.children)
    return result


def _homomorphism(
    p_node: _PatternNode,
    q_node: _PatternNode,
    memo: dict[tuple[int, int], bool],
) -> bool:
    key = (id(p_node), id(q_node))
    if key in memo:
        return memo[key]
    memo[key] = False  # guard against cycles (patterns are trees, so none)
    if not _labels_compatible(p_node, q_node):
        return False
    for p_child, descendant_edge in p_node.children:
        if descendant_edge:
            targets = _descendant_targets(q_node)
        else:
            targets = [child for child, is_desc in q_node.children if not is_desc]
        if not any(_homomorphism(p_child, target, memo) for target in targets):
            return False
    memo[key] = True
    return True


def contains(p: Path, q: Path) -> bool:
    """Sound test for ``q ⊆ p`` (every document node selected by ``q``
    is also selected by ``p``).

    Returns ``True`` only when containment is certain; ``False`` means
    "not proven".
    """
    p_pattern = build_pattern(p)
    q_pattern = build_pattern(q)
    return _homomorphism(p_pattern, q_pattern, {})


def equivalent(p: Path, q: Path) -> bool:
    """Sound test for semantic equivalence of two paths."""
    return contains(p, q) and contains(q, p)
