"""Tokenizer for the XPath fragment."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator


class TokenType(enum.Enum):
    SLASH = "/"
    DOUBLE_SLASH = "//"
    STAR = "*"
    NAME = "name"
    LBRACKET = "["
    RBRACKET = "]"
    DOT = "."
    DOT_SLASH = "./"
    DOT_DOUBLE_SLASH = ".//"
    OP = "op"
    LITERAL = "literal"
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    position: int


class XPathLexError(ValueError):
    """Raised on characters outside the fragment's grammar."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-:")
_OPERATORS = ("!=", "<=", ">=", "=", "<", ">")


def tokenize(text: str) -> Iterator[Token]:
    """Yield the tokens of ``text``, ending with an END token."""
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char in " \t\r\n":
            position += 1
            continue
        if char == "/":
            if text.startswith("//", position):
                yield Token(TokenType.DOUBLE_SLASH, "//", position)
                position += 2
            else:
                yield Token(TokenType.SLASH, "/", position)
                position += 1
            continue
        if char == ".":
            if text.startswith(".//", position):
                yield Token(TokenType.DOT_DOUBLE_SLASH, ".//", position)
                position += 3
            elif text.startswith("./", position):
                yield Token(TokenType.DOT_SLASH, "./", position)
                position += 2
            else:
                yield Token(TokenType.DOT, ".", position)
                position += 1
            continue
        if char == "*":
            yield Token(TokenType.STAR, "*", position)
            position += 1
            continue
        if char == "[":
            yield Token(TokenType.LBRACKET, "[", position)
            position += 1
            continue
        if char == "]":
            yield Token(TokenType.RBRACKET, "]", position)
            position += 1
            continue
        if char in ("'", '"'):
            end = text.find(char, position + 1)
            if end < 0:
                raise XPathLexError("unterminated string literal", position)
            yield Token(TokenType.LITERAL, text[position + 1:end], position)
            position = end + 1
            continue
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, position)), None
        )
        if matched_op is not None:
            yield Token(TokenType.OP, matched_op, position)
            position += len(matched_op)
            continue
        if char.isdigit() or (
            char == "-" and position + 1 < length and text[position + 1].isdigit()
        ):
            end = position + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                seen_dot = seen_dot or text[end] == "."
                end += 1
            yield Token(TokenType.LITERAL, text[position:end], position)
            position = end
            continue
        if char in _NAME_START:
            end = position + 1
            while end < length and text[end] in _NAME_CHARS:
                end += 1
            yield Token(TokenType.NAME, text[position:end], position)
            position = end
            continue
        raise XPathLexError(f"unexpected character {char!r}", position)
    yield Token(TokenType.END, "", length)
