"""Recursive-descent parser for the XPath fragment ``XP{[],*,//}``.

Grammar (predicates may nest arbitrarily)::

    path       := abs_path | rel_path
    abs_path   := ("/" | "//") step (("/" | "//") step)*
    rel_path   := (".//" | "./")? step (("/" | "//") step)*
    step       := nodetest predicate*
    nodetest   := NAME | "*"
    predicate  := "[" pred_expr "]"
    pred_expr  := rel_path (OP literal)?  |  "." OP literal
"""

from __future__ import annotations

from repro.xpathlib.ast import (
    Axis,
    Comparison,
    NodeTest,
    Path,
    Predicate,
    Step,
)
from repro.xpathlib.lexer import Token, TokenType, XPathLexError, tokenize


class XPathSyntaxError(ValueError):
    """Raised when the expression is outside the supported fragment."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class _Parser:
    def __init__(self, text: str) -> None:
        try:
            self._tokens = list(tokenize(text))
        except XPathLexError as exc:
            raise XPathSyntaxError(str(exc), exc.position) from exc
        self._index = 0

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise XPathSyntaxError(
                f"expected {token_type.value!r}, found {token.value!r}",
                token.position,
            )
        return self._advance()

    # -- grammar -------------------------------------------------------

    def parse(self) -> Path:
        path = self._path(top_level=True)
        end = self._peek()
        if end.type is not TokenType.END:
            raise XPathSyntaxError(
                f"unexpected trailing input {end.value!r}", end.position
            )
        return path

    def _path(self, *, top_level: bool) -> Path:
        token = self._peek()
        if token.type in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
            absolute = True
            first_axis = (
                Axis.CHILD if token.type is TokenType.SLASH else Axis.DESCENDANT
            )
            self._advance()
        elif token.type in (TokenType.DOT_SLASH, TokenType.DOT_DOUBLE_SLASH):
            if top_level:
                raise XPathSyntaxError(
                    "rule and query paths must be absolute", token.position
                )
            absolute = False
            first_axis = (
                Axis.CHILD
                if token.type is TokenType.DOT_SLASH
                else Axis.DESCENDANT
            )
            self._advance()
        else:
            if top_level:
                raise XPathSyntaxError(
                    "rule and query paths must start with '/' or '//'",
                    token.position,
                )
            absolute = False
            first_axis = Axis.CHILD
        steps = [self._step(first_axis)]
        while self._peek().type in (TokenType.SLASH, TokenType.DOUBLE_SLASH):
            axis_token = self._advance()
            axis = (
                Axis.CHILD
                if axis_token.type is TokenType.SLASH
                else Axis.DESCENDANT
            )
            steps.append(self._step(axis))
        return Path(tuple(steps), absolute=absolute)

    def _step(self, axis: Axis) -> Step:
        token = self._peek()
        if token.type is TokenType.STAR:
            self._advance()
            test = NodeTest(None)
        elif token.type is TokenType.NAME:
            self._advance()
            test = NodeTest(token.value)
        else:
            raise XPathSyntaxError(
                f"expected a node test, found {token.value!r}", token.position
            )
        predicates: list[Predicate] = []
        while self._peek().type is TokenType.LBRACKET:
            predicates.append(self._predicate())
        return Step(axis, test, tuple(predicates))

    def _predicate(self) -> Predicate:
        self._expect(TokenType.LBRACKET)
        token = self._peek()
        if token.type is TokenType.DOT:
            self._advance()
            op = self._expect(TokenType.OP)
            literal = self._expect(TokenType.LITERAL)
            predicate = Predicate(None, Comparison(op.value, literal.value))
        else:
            path = self._path(top_level=False)
            if self._peek().type is TokenType.OP:
                op = self._advance()
                literal = self._expect(TokenType.LITERAL)
                predicate = Predicate(path, Comparison(op.value, literal.value))
            else:
                predicate = Predicate(path)
        self._expect(TokenType.RBRACKET)
        return predicate


#: Parse memo: paths are immutable value objects, and the same rule
#: texts are re-parsed on every card session (one per rule record), so
#: lexing+parsing is paid once per distinct expression.
_PARSE_CACHE: dict[str, Path] = {}
_PARSE_CACHE_LIMIT = 1024


def parse_path(text: str) -> Path:
    """Parse ``text`` into a :class:`~repro.xpathlib.ast.Path`.

    Raises :class:`XPathSyntaxError` outside the fragment.
    """
    path = _PARSE_CACHE.get(text)
    if path is None:
        path = _Parser(text).parse()
        if len(_PARSE_CACHE) >= _PARSE_CACHE_LIMIT:
            _PARSE_CACHE.clear()
        _PARSE_CACHE[text] = path
    return path
