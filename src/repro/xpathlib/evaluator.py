"""Reference (tree-based) evaluation of the XPath fragment.

This evaluator is the *oracle* of the test suite: the streaming engine
running inside the simulated smart card must produce exactly the node
sets this module computes.  It is also used by the trusted-server
baseline, which is allowed to materialize documents.

Semantics notes:

* ``/a`` selects the root element if its tag is ``a``; ``//a`` selects
  every element named ``a`` (including the root).
* ``p//q`` selects ``q`` elements that are *proper* descendants of nodes
  selected by ``p``.
* For value comparisons the string value of a node is the concatenation
  of its **direct** text children.  This matches what the streaming
  engine can observe (the ``value`` events raised while the node is the
  innermost open element) and is documented as a deliberate deviation
  from full XPath string-value semantics.
"""

from __future__ import annotations

from typing import Iterable

from repro.xmlstream.tree import Element
from repro.xpathlib.ast import Axis, Path, Predicate, Step


def _axis_candidates(context: Element, axis: Axis) -> Iterable[Element]:
    """Elements reachable from ``context`` along ``axis``."""
    if axis is Axis.CHILD:
        return context.element_children
    return (node for node in context.iter() if node is not context)


def _initial_candidates(root: Element, axis: Axis) -> Iterable[Element]:
    """Candidates for the first step of an absolute path.

    The (virtual) document node sits above ``root``: its only child is
    the root element and its descendants are every element.
    """
    if axis is Axis.CHILD:
        return (root,)
    return root.iter()


def _satisfies_predicate(node: Element, predicate: Predicate) -> bool:
    if predicate.path is None:
        assert predicate.comparison is not None
        return predicate.comparison.test(node.text)
    matches = _evaluate_steps(predicate.path.steps, [node], relative=True)
    if predicate.comparison is None:
        return bool(matches)
    return any(predicate.comparison.test(match.text) for match in matches)


def _apply_step(candidates: Iterable[Element], step: Step) -> list[Element]:
    selected: list[Element] = []
    seen: set[int] = set()
    for node in candidates:
        if not step.test.matches(node.tag):
            continue
        if id(node) in seen:
            continue
        if all(_satisfies_predicate(node, p) for p in step.predicates):
            seen.add(id(node))
            selected.append(node)
    return selected


def _evaluate_steps(
    steps: tuple[Step, ...],
    contexts: list[Element],
    *,
    relative: bool,
    root: Element | None = None,
) -> list[Element]:
    if relative:
        first_candidates: list[Element] = []
        seen: set[int] = set()
        for context in contexts:
            for node in _axis_candidates(context, steps[0].axis):
                if id(node) not in seen:
                    seen.add(id(node))
                    first_candidates.append(node)
        current = _apply_step(first_candidates, steps[0])
    else:
        assert root is not None
        current = _apply_step(_initial_candidates(root, steps[0].axis), steps[0])
    for step in steps[1:]:
        next_candidates: list[Element] = []
        seen = set()
        for context in current:
            for node in _axis_candidates(context, step.axis):
                if id(node) not in seen:
                    seen.add(id(node))
                    next_candidates.append(node)
        current = _apply_step(next_candidates, step)
    return current


def evaluate_path(
    path: Path,
    root: Element,
    context: Element | None = None,
) -> list[Element]:
    """Return the node set selected by ``path``.

    Absolute paths are evaluated from the document node above ``root``;
    relative paths require a ``context`` element.  The result preserves
    document order and contains no duplicates.
    """
    if path.absolute:
        result = _evaluate_steps(path.steps, [], relative=False, root=root)
    else:
        if context is None:
            raise ValueError("relative paths require a context element")
        result = _evaluate_steps(path.steps, [context], relative=True)
    order = {id(node): index for index, node in enumerate(root.iter())}
    return sorted(result, key=lambda node: order[id(node)])


def node_matches_path(node: Element, path: Path, root: Element) -> bool:
    """Whether ``node`` belongs to the node set of the absolute ``path``."""
    if not path.absolute:
        raise ValueError("node_matches_path expects an absolute path")
    return any(match is node for match in evaluate_path(path, root))
