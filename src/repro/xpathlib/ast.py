"""Abstract syntax for the fragment ``XP{[],*,//}``.

A :class:`Path` is a sequence of :class:`Step`; each step carries an
axis (child or descendant), a node test (a tag name or the wildcard) and
zero or more predicates.  A predicate holds a *relative* path and an
optional comparison on the text value of the node(s) it reaches -- this
matches the expressiveness used by the paper's access rules (existence
branches such as ``//b[c]/d`` and value branches such as
``//patient[name = "Smith"]``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class Axis(enum.Enum):
    """The two axes of the fragment."""

    CHILD = "/"
    DESCENDANT = "//"


@dataclass(frozen=True, slots=True)
class NodeTest:
    """A tag-name test; ``name is None`` denotes the wildcard ``*``."""

    name: str | None

    @property
    def is_wildcard(self) -> bool:
        return self.name is None

    def matches(self, tag: str) -> bool:
        """Whether this test accepts an element with the given tag."""
        return self.name is None or self.name == tag

    def __str__(self) -> str:
        return "*" if self.name is None else self.name


WILDCARD = NodeTest(None)

_COMPARISON_OPS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True, slots=True)
class Comparison:
    """A comparison of a node's text value against a literal."""

    op: str
    literal: str

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def test(self, value: str) -> bool:
        """Evaluate ``value <op> literal``.

        If both sides parse as numbers the comparison is numeric,
        otherwise it is a plain string comparison -- the behaviour the
        workload queries rely on.
        """
        left: float | str
        right: float | str
        try:
            left, right = float(value), float(self.literal)
        except ValueError:
            left, right = value, self.literal
        if self.op == "=":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def __str__(self) -> str:
        return f"{self.op} \"{self.literal}\""


@dataclass(frozen=True, slots=True)
class Predicate:
    """A branch ``[path]``, ``[path op literal]`` or ``[. op literal]``.

    ``path is None`` denotes the context-node value test ``[. op lit]``.
    """

    path: "Path | None"
    comparison: Comparison | None = None

    def __post_init__(self) -> None:
        if self.path is None and self.comparison is None:
            raise ValueError("a dot predicate requires a comparison")
        if self.path is not None and self.path.absolute:
            raise ValueError("predicate paths must be relative")

    def __str__(self) -> str:
        inner = "." if self.path is None else str(self.path)
        if self.comparison is not None:
            inner = f"{inner} {self.comparison}"
        return f"[{inner}]"


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: axis, node test and predicates."""

    axis: Axis
    test: NodeTest
    predicates: tuple[Predicate, ...] = field(default=())

    def __str__(self) -> str:
        return f"{self.test}" + "".join(str(p) for p in self.predicates)


@dataclass(frozen=True, slots=True)
class Path:
    """A location path.

    ``absolute`` distinguishes rule/query objects (evaluated from the
    document root) from the relative paths inside predicates (evaluated
    from the context node).
    """

    steps: tuple[Step, ...]
    absolute: bool = True

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a path needs at least one step")

    def __str__(self) -> str:
        parts: list[str] = []
        for index, step in enumerate(self.steps):
            separator = step.axis.value
            if index == 0 and not self.absolute:
                separator = "" if step.axis is Axis.CHILD else ".//"
            parts.append(f"{separator}{step}")
        return "".join(parts)

    # -- structural helpers used by the compiler and analyses ---------

    def iter_predicates(self) -> Iterator[tuple[int, Predicate]]:
        """Yield ``(step_index, predicate)`` for every predicate."""
        for index, step in enumerate(self.steps):
            for predicate in step.predicates:
                yield index, predicate

    @property
    def has_predicates(self) -> bool:
        return any(step.predicates for step in self.steps)

    @property
    def has_descendant_axis(self) -> bool:
        return any(step.axis is Axis.DESCENDANT for step in self.steps)

    def label_set(self) -> frozenset[str]:
        """All non-wildcard tag names mentioned anywhere in the path.

        This is the information the skip index filters on: if a label
        required by a rule is absent from a subtree's tag bitmap, the
        rule cannot progress inside that subtree.
        """
        labels: set[str] = set()
        for step in self.steps:
            if step.test.name is not None:
                labels.add(step.test.name)
            for predicate in step.predicates:
                if predicate.path is not None:
                    labels.update(predicate.path.label_set())
        return frozenset(labels)

    def spine(self) -> "Path":
        """The path without any predicates (the navigational part)."""
        return Path(
            tuple(Step(s.axis, s.test) for s in self.steps),
            absolute=self.absolute,
        )

    def depth_bounds(self) -> tuple[int, float]:
        """(min, max) depth at which the final step can match.

        ``max`` is ``inf`` when a descendant axis occurs.  Used by the
        analyses and by memory sizing in the card applet.
        """
        minimum = len(self.steps)
        maximum: float = len(self.steps)
        if self.has_descendant_axis:
            maximum = float("inf")
        return minimum, maximum
