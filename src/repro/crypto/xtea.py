"""XTEA block cipher (Needham & Wheeler, 1997) -- from scratch.

64-bit blocks, 128-bit keys, 32 rounds.  XTEA is a realistic stand-in
for a software cipher on an 8/32-bit smart-card CPU: tiny code, small
state, cost strictly linear in the number of blocks.  The cycle model
in :mod:`repro.smartcard.resources` charges per byte accordingly.

Two implementation layers:

* the historical block functions (:func:`xtea_encrypt_block`,
  :func:`xtea_decrypt_block`) remain the readable reference and the
  bit-for-bit ground truth the batched paths are tested against;
* :class:`XTEACipher` is the wall-clock hot path: the key schedule
  (the 64 per-round ``sum + key[...]`` constants, which depend only on
  the key) is computed once per key and memoized, and whole buffers of
  blocks are processed per call.  Multi-block calls run the rounds
  *bit-sliced across blocks*: each 8-byte block occupies one 64-bit
  lane of a pair of Python big integers, so one arithmetic operation
  advances every block at once instead of paying interpreter dispatch
  per block.  Lane values are 32 bits wide in 64-bit lanes, so adds
  never carry across lanes and per-lane subtraction is an add of the
  lane complement.
"""

from __future__ import annotations

import struct

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
_ROUNDS = 32

BLOCK_SIZE = 8
KEY_SIZE = 16

#: Minimum number of blocks before the bit-sliced path beats the
#: scheduled per-block loop (lane packing has fixed overhead).
_SWAR_MIN_BLOCKS = 3


def _key_schedule(key: bytes) -> tuple[int, int, int, int]:
    if len(key) != KEY_SIZE:
        raise ValueError(f"XTEA needs a {KEY_SIZE}-byte key")
    return struct.unpack(">4L", key)


class _LaneState:
    """Per-lane-count constants for the bit-sliced paths.

    ``dec``/``enc`` hold the lane-replicated round schedules, built on
    first use per direction (a cipher that only ever decrypts never
    pays for the encrypt replication, and vice versa) and cached with
    the constants so repeated calls share them.
    """

    __slots__ = ("ones", "mask", "kones", "full", "dec", "enc")

    def __init__(self, count: int) -> None:
        self.ones = (1 << (64 * count)) // ((1 << 64) - 1)  # 0x0001_0001...
        self.mask = _MASK * self.ones
        # Lane-wise subtraction a - b (mod 2^32) is a + (2^32) - b with
        # the borrow absorbed per lane; fold the 2^32-per-lane constant
        # into kones once instead of two ops per round.
        self.kones = self.mask + self.ones
        self.full = (1 << (64 * count)) - 1
        self.dec: tuple[tuple[int, int], ...] | None = None
        self.enc: tuple[tuple[int, int], ...] | None = None


class XTEACipher:
    """A keyed XTEA instance with a precomputed round schedule.

    ``enc_schedule``/``dec_schedule`` hold the 32 ``(sum0, sum1)``
    pairs consumed by the round loops; they are derived from the key
    alone, so every block encrypted under this key shares them.
    Instances are memoized per key via :meth:`for_key` -- the seal,
    open and key-wrap paths all land on the same object.
    """

    __slots__ = ("key", "enc_schedule", "dec_schedule", "_lane_cache")

    #: Per-key instance cache (bounded; keys are 16-byte strings).
    _instances: dict[bytes, "XTEACipher"] = {}
    _INSTANCE_LIMIT = 256

    def __init__(self, key: bytes) -> None:
        k = _key_schedule(key)
        self.key = key
        enc: list[tuple[int, int]] = []
        total = 0
        for _ in range(_ROUNDS):
            sum0 = (total + k[total & 3]) & _MASK
            total = (total + _DELTA) & _MASK
            sum1 = (total + k[(total >> 11) & 3]) & _MASK
            enc.append((sum0, sum1))
        self.enc_schedule = tuple(enc)
        self.dec_schedule = tuple((s1, s0) for s0, s1 in reversed(enc))
        # lane count -> cached lane constants + replicated schedules
        self._lane_cache: dict[int, _LaneState] = {}

    @classmethod
    def for_key(cls, key: bytes) -> "XTEACipher":
        """The memoized cipher for ``key`` (schedule computed once)."""
        cipher = cls._instances.get(key)
        if cipher is None:
            cipher = cls(key)
            if len(cls._instances) >= cls._INSTANCE_LIMIT:
                cls._instances.clear()
            cls._instances[key] = cipher
        return cipher

    # -- single block (reference-compatible) ---------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"XTEA blocks are {BLOCK_SIZE} bytes")
        v0, v1 = struct.unpack(">2L", block)
        for sum0, sum1 in self.enc_schedule:
            v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ sum0)) & _MASK
            v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ sum1)) & _MASK
        return struct.pack(">2L", v0, v1)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"XTEA blocks are {BLOCK_SIZE} bytes")
        v0, v1 = struct.unpack(">2L", block)
        for sum1, sum0 in self.dec_schedule:
            v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ sum1)) & _MASK
            v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ sum0)) & _MASK
        return struct.pack(">2L", v0, v1)

    # -- lane helpers ---------------------------------------------------------

    def _lanes(self, count: int) -> "_LaneState":
        """Lane constants for ``count`` lanes (replications built lazily)."""
        state = self._lane_cache.get(count)
        if state is None:
            if len(self._lane_cache) >= 16:
                self._lane_cache.clear()
            state = self._lane_cache[count] = _LaneState(count)
        return state

    def _dec_replicated(self, state: "_LaneState") -> tuple[tuple[int, int], ...]:
        if state.dec is None:
            ones = state.ones
            state.dec = tuple(
                (sum1 * ones, sum0 * ones) for sum1, sum0 in self.dec_schedule
            )
        return state.dec

    def _enc_replicated(self, state: "_LaneState") -> tuple[tuple[int, int], ...]:
        if state.enc is None:
            ones = state.ones
            state.enc = tuple(
                (sum0 * ones, sum1 * ones) for sum0, sum1 in self.enc_schedule
            )
        return state.enc

    @staticmethod
    def _pack_lanes(words: tuple[int, ...], count: int) -> tuple[int, int]:
        """Split interleaved (v0, v1) words into two lane integers.

        Lane layout: word ``i`` sits in bits ``64*i..64*i+31`` -- i.e.
        one 64-bit little-endian slot per 32-bit value, produced by a
        single C-level pack per integer.
        """
        return (
            int.from_bytes(struct.pack(f"<{count}Q", *words[0::2]), "little"),
            int.from_bytes(struct.pack(f"<{count}Q", *words[1::2]), "little"),
        )

    @staticmethod
    def _unpack_lanes(v0: int, v1: int, count: int) -> bytes:
        """Interleave two lane integers back into big-endian blocks."""
        lanes0 = struct.unpack(f"<{count}Q", v0.to_bytes(8 * count, "little"))
        lanes1 = struct.unpack(f"<{count}Q", v1.to_bytes(8 * count, "little"))
        interleaved: list[int] = [0] * (2 * count)
        interleaved[0::2] = lanes0
        interleaved[1::2] = lanes1
        return struct.pack(f">{2 * count}L", *interleaved)

    # -- CBC over whole buffers ----------------------------------------------

    def cbc_encrypt_padded(self, padded: bytes, iv: bytes) -> bytes:
        """CBC-encrypt a block-aligned buffer (padding already applied).

        Chaining makes encryption inherently sequential, so this is the
        scheduled per-block loop with the XOR done on integers (no
        per-byte work, no per-block key schedule).
        """
        count = len(padded) // BLOCK_SIZE
        words = struct.unpack(f">{2 * count}L", padded)
        p0, p1 = struct.unpack(">2L", iv)
        out = bytearray(len(padded))
        pack_into = struct.pack_into
        schedule = self.enc_schedule
        for index in range(count):
            v0 = words[2 * index] ^ p0
            v1 = words[2 * index + 1] ^ p1
            for sum0, sum1 in schedule:
                v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ sum0)) & _MASK
                v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ sum1)) & _MASK
            p0, p1 = v0, v1
            pack_into(">2L", out, 8 * index, v0, v1)
        return bytes(out)

    def cbc_encrypt_many(
        self, messages: list[tuple[bytes, bytes]]
    ) -> list[bytes]:
        """CBC-encrypt independent ``(padded, iv)`` messages together.

        Messages chain internally but not across each other, so the
        lane dimension is the *message*: CBC step ``j`` encrypts block
        ``j`` of every equal-length message in one bit-sliced pass.
        Messages are grouped by block count; each group costs
        ``blocks`` sequential steps regardless of how many messages it
        holds.  Output order matches input order.
        """
        results: list[bytes | None] = [None] * len(messages)
        groups: dict[int, list[int]] = {}
        for position, (padded, iv) in enumerate(messages):
            if len(padded) % BLOCK_SIZE or not padded:
                raise ValueError("messages must be padded to block multiples")
            if len(iv) != BLOCK_SIZE:
                raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
            groups.setdefault(len(padded) // BLOCK_SIZE, []).append(position)
        for block_count, positions in groups.items():
            lanes = len(positions)
            if lanes < _SWAR_MIN_BLOCKS:
                for position in positions:
                    padded, iv = messages[position]
                    results[position] = self.cbc_encrypt_padded(padded, iv)
                continue
            state = self._lanes(lanes)
            mask = state.mask
            schedule = self._enc_replicated(state)
            unpack = struct.unpack
            words = [unpack(f">{2 * block_count}L", messages[p][0]) for p in positions]
            ivs = [unpack(">2L", messages[p][1]) for p in positions]
            prev0, prev1 = self._pack_lanes(
                tuple(w for iv in ivs for w in iv), lanes
            )
            outs = [bytearray(block_count * 8) for _ in positions]
            for j in range(block_count):
                interleaved = tuple(
                    w
                    for lane_words in words
                    for w in (lane_words[2 * j], lane_words[2 * j + 1])
                )
                x0, x1 = self._pack_lanes(interleaved, lanes)
                v0 = (x0 ^ prev0) & mask
                v1 = (x1 ^ prev1) & mask
                # Shift garbage above bit 31 of a lane cannot reach the
                # lane's low 32 bits through addition (carries only move
                # up), so one mask after the add suffices.
                for r0, r1 in schedule:
                    t = (((v1 << 4) ^ (v1 >> 5)) + v1) & mask
                    v0 = (v0 + (t ^ r0)) & mask
                    t = (((v0 << 4) ^ (v0 >> 5)) + v0) & mask
                    v1 = (v1 + (t ^ r1)) & mask
                prev0, prev1 = v0, v1
                # One 8-byte block per lane, already big-endian.
                blocks = self._unpack_lanes(v0, v1, lanes)
                start = 8 * j
                for lane, out in enumerate(outs):
                    out[start:start + 8] = blocks[8 * lane:8 * lane + 8]
            for lane, position in enumerate(positions):
                results[position] = bytes(outs[lane])
        return results  # type: ignore[return-value]

    def cbc_decrypt_raw(self, ciphertext: bytes, iv: bytes) -> bytes:
        """CBC-decrypt a block-aligned buffer; padding left in place.

        Decryption has no chaining dependency (every block decrypts
        independently, then XORs with the previous *ciphertext* block),
        so the whole buffer runs bit-sliced: one lane per block, the
        final chaining XOR done between two big integers.
        """
        count = len(ciphertext) // BLOCK_SIZE
        if count < _SWAR_MIN_BLOCKS:
            words = struct.unpack(f">{2 * count}L", ciphertext)
            p0, p1 = struct.unpack(">2L", iv)
            out = bytearray(len(ciphertext))
            pack_into = struct.pack_into
            schedule = self.dec_schedule
            for index in range(count):
                c0 = words[2 * index]
                c1 = words[2 * index + 1]
                v0, v1 = c0, c1
                for sum1, sum0 in schedule:
                    v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ sum1)) & _MASK
                    v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ sum0)) & _MASK
                pack_into(">2L", out, 8 * index, v0 ^ p0, v1 ^ p1)
                p0, p1 = c0, c1
            return bytes(out)
        state = self._lanes(count)
        mask, kones, full = state.mask, state.kones, state.full
        schedule = self._dec_replicated(state)
        words = struct.unpack(f">{2 * count}L", ciphertext)
        c0, c1 = self._pack_lanes(words, count)
        # Chaining input: IV in lane 0, then each ciphertext block one
        # lane up -- a single lane-shift of the packed ciphertext.
        iv0, iv1 = struct.unpack(">2L", iv)
        prev0 = ((c0 << 64) & full) | iv0
        prev1 = ((c1 << 64) & full) | iv1
        v0, v1 = c0, c1
        # Lane-wise v - t == v + kones - t (no cross-lane borrow); shift
        # garbage above bit 31 is cleared by the single mask per step.
        for r1, r0 in schedule:
            t = (((v0 << 4) ^ (v0 >> 5)) + v0) & mask
            v1 = (v1 + kones - (t ^ r1)) & mask
            t = (((v1 << 4) ^ (v1 >> 5)) + v1) & mask
            v0 = (v0 + kones - (t ^ r0)) & mask
        return self._unpack_lanes(v0 ^ prev0, v1 ^ prev1, count)


def xtea_encrypt_block(block: bytes, key: bytes) -> bytes:
    """Encrypt one 8-byte block."""
    return XTEACipher.for_key(key).encrypt_block(block)


def xtea_decrypt_block(block: bytes, key: bytes) -> bytes:
    """Decrypt one 8-byte block."""
    return XTEACipher.for_key(key).decrypt_block(block)
