"""XTEA block cipher (Needham & Wheeler, 1997) -- from scratch.

64-bit blocks, 128-bit keys, 32 rounds.  XTEA is a realistic stand-in
for a software cipher on an 8/32-bit smart-card CPU: tiny code, small
state, cost strictly linear in the number of blocks.  The cycle model
in :mod:`repro.smartcard.resources` charges per byte accordingly.
"""

from __future__ import annotations

import struct

_DELTA = 0x9E3779B9
_MASK = 0xFFFFFFFF
_ROUNDS = 32

BLOCK_SIZE = 8
KEY_SIZE = 16


def _key_schedule(key: bytes) -> tuple[int, int, int, int]:
    if len(key) != KEY_SIZE:
        raise ValueError(f"XTEA needs a {KEY_SIZE}-byte key")
    return struct.unpack(">4L", key)


def xtea_encrypt_block(block: bytes, key: bytes) -> bytes:
    """Encrypt one 8-byte block."""
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"XTEA blocks are {BLOCK_SIZE} bytes")
    k = _key_schedule(key)
    v0, v1 = struct.unpack(">2L", block)
    total = 0
    for _ in range(_ROUNDS):
        v0 = (v0 + ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
        total = (total + _DELTA) & _MASK
        v1 = (v1 + ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))) & _MASK
    return struct.pack(">2L", v0, v1)


def xtea_decrypt_block(block: bytes, key: bytes) -> bytes:
    """Decrypt one 8-byte block."""
    if len(block) != BLOCK_SIZE:
        raise ValueError(f"XTEA blocks are {BLOCK_SIZE} bytes")
    k = _key_schedule(key)
    v0, v1 = struct.unpack(">2L", block)
    total = (_DELTA * _ROUNDS) & _MASK
    for _ in range(_ROUNDS):
        v1 = (v1 - ((((v0 << 4) ^ (v0 >> 5)) + v0) ^ (total + k[(total >> 11) & 3]))) & _MASK
        total = (total - _DELTA) & _MASK
        v0 = (v0 - ((((v1 << 4) ^ (v1 >> 5)) + v1) ^ (total + k[total & 3]))) & _MASK
    return struct.pack(">2L", v0, v1)
