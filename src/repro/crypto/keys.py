"""Key material and derivation.

One secret per document (``k_doc``) is shared among authorized users
through the (simulated) PKI; encryption, MAC and IV keys are derived
from it, so revoking a user never requires re-keying unrelated
documents -- and, the paper's central point, changing *access rules*
never requires re-encrypting anything at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto.mac import keyed_digest
from repro.crypto.xtea import BLOCK_SIZE, KEY_SIZE, XTEACipher
from repro.errors import KeyNotGranted


def random_key() -> bytes:
    """A fresh 128-bit document secret."""
    return os.urandom(KEY_SIZE)


def derive_key(secret: bytes, label: str, length: int = KEY_SIZE) -> bytes:
    """Deterministic subkey derivation (HKDF-like, one expand step)."""
    return keyed_digest(secret, b"derive:" + label.encode("utf-8"))[:length]


def derive_iv(secret: bytes, doc_id: str, version: int, index: int) -> bytes:
    """Deterministic per-chunk IV; no IV storage in the container."""
    message = f"iv:{doc_id}:{version}:{index}".encode("utf-8")
    return keyed_digest(secret, message)[:BLOCK_SIZE]


@dataclass(frozen=True, slots=True)
class DocumentKeys:
    """The derived key bundle for one document.

    Subkeys are derived once at construction (the seed recomputed the
    HMAC on every ``encryption``/``mac`` access -- twice per chunk on
    the hot path); ``cipher`` is the shared keyed XTEA instance used by
    every seal/open call under this document.
    """

    secret: bytes
    encryption: bytes = field(init=False, repr=False)
    mac: bytes = field(init=False, repr=False)
    cipher: XTEACipher = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "encryption", derive_key(self.secret, "enc"))
        object.__setattr__(self, "mac", derive_key(self.secret, "mac"))
        object.__setattr__(self, "cipher", XTEACipher.for_key(self.encryption))

    def iv(self, doc_id: str, version: int, index: int) -> bytes:
        return derive_iv(self.secret, doc_id, version, index)


class KeyRing:
    """Per-principal store of document secrets.

    On the card this lives in secure stable storage; terminal-side
    instances model what each user has been granted through the PKI.
    """

    def __init__(self) -> None:
        self._secrets: dict[str, DocumentKeys] = {}

    def grant(self, doc_id: str, secret: bytes) -> None:
        """Install the secret for a document."""
        self._secrets[doc_id] = DocumentKeys(secret)

    def revoke(self, doc_id: str) -> None:
        self._secrets.pop(doc_id, None)

    def keys_for(self, doc_id: str) -> DocumentKeys:
        """Key bundle for a document (:class:`KeyNotGranted` if absent)."""
        keys = self._secrets.get(doc_id)
        if keys is None:
            raise KeyNotGranted(
                f"no key granted for document {doc_id!r}", doc_id=doc_id
            )
        return keys

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._secrets

    def __len__(self) -> int:
        return len(self._secrets)
