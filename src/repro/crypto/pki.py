"""Simulated PKI for key exchange between users.

The demo paper's own choice, footnote 2: "In the demonstration, we will
not use a PKI infrastructure but rather simulate it [...] PKI is a
well-known technique that need not be demonstrated."

We implement a small but real finite-field Diffie-Hellman (RFC 3526
2048-bit MODP group) plus key wrapping, so the code path exercised by
the applications -- publish a document secret to a set of users without
the DSP learning it -- is genuine, while staying offline.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.crypto.groupkey import unwrap_with_kek, wrap_with_kek
from repro.crypto.xtea import KEY_SIZE
from repro.errors import KeyNotGranted

# RFC 3526, group 14 (2048-bit MODP).
_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF",
    16,
)
_G = 2


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A DH key pair for one principal."""

    private: int
    public: int

    @classmethod
    def generate(cls, seed: bytes | None = None) -> "KeyPair":
        """Generate a key pair (seeded for deterministic tests).

        The private exponent is 256 bits (short-exponent DH, standard
        for a 2048-bit MODP group at the ~128-bit security level); a
        full-group exponent made every key-agreement modexp ~8x more
        expensive for no added strength.
        """
        if seed is None:
            seed = os.urandom(32)
        private = int.from_bytes(
            hashlib.sha256(b"dh-private:" + seed).digest(), "big"
        ) % (_P - 2) + 1
        return cls(private, pow(_G, private, _P))


def shared_secret(own: KeyPair, peer_public: int) -> bytes:
    """Derive a 128-bit wrapping key from the DH shared value."""
    value = pow(peer_public, own.private, _P)
    raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
    return hashlib.sha256(b"dh-kek:" + raw).digest()[:KEY_SIZE]


class SimulatedPKI:
    """A directory of public keys plus wrapped-secret distribution.

    ``publish_secret`` is what a document owner calls to hand the
    document secret to each authorized user; the wrapped blobs can sit
    on the untrusted DSP, which learns nothing.
    """

    def __init__(self) -> None:
        self._directory: dict[str, int] = {}
        self._pairs: dict[str, KeyPair] = {}
        # Unordered public-key pair -> KEK.  DH is deterministic *and
        # symmetric* (g^(ab) seen from either side), so the cache is
        # transparent and one entry serves both directions: the owner's
        # wrap during publish already caches the KEK the recipient's
        # unwrap needs, sparing the 2048-bit modular exponentiation
        # (~7 ms) on every unlock between an already-acquainted pair.
        self._kek_cache: dict[tuple[int, int], bytes] = {}

    def _kek(self, principal: str, peer_public: int) -> bytes:
        pair = self._pair_of(principal)
        key = (
            (pair.public, peer_public)
            if pair.public <= peer_public
            else (peer_public, pair.public)
        )
        kek = self._kek_cache.get(key)
        if kek is None:
            kek = shared_secret(pair, peer_public)
            self._kek_cache[key] = kek
        return kek

    def _pair_of(self, principal: str) -> KeyPair:
        pair = self._pairs.get(principal)
        if pair is None:
            raise KeyNotGranted(
                f"principal {principal!r} is not enrolled in the PKI",
                subject=principal,
            )
        return pair

    def enroll(self, principal: str, seed: bytes | None = None) -> KeyPair:
        """Create and register a key pair for a principal.

        Re-enrolling (key rotation) evicts the principal's cached KEKs:
        they were derived from the old private key and would silently
        unwrap to garbage against peers holding the new public key.
        """
        if seed is None:
            seed = b"enroll:" + principal.encode("utf-8")
        pair = KeyPair.generate(seed)
        old_public = self._directory.get(principal)
        if old_public is not None:
            # Drop every KEK involving the retired public key: those
            # entries pair the old private key with some peer and would
            # silently unwrap to garbage after the rotation.
            for key in [k for k in self._kek_cache if old_public in k]:
                del self._kek_cache[key]
        self._directory[principal] = pair.public
        self._pairs[principal] = pair
        return pair

    def public_key(self, principal: str) -> int:
        key = self._directory.get(principal)
        if key is None:
            raise KeyNotGranted(
                f"principal {principal!r} is not enrolled in the PKI",
                subject=principal,
            )
        return key

    def wrap_secret(
        self, sender: str, recipient: str, secret: bytes
    ) -> bytes:
        """Wrap ``secret`` from ``sender`` to ``recipient``.

        Delegates to the shared :mod:`repro.crypto.groupkey` helper with
        the pairwise ``sender:recipient`` context -- byte-identical to
        the historical inline construction, so blobs persisted by older
        builds still unwrap.
        """
        kek = self._kek(sender, self.public_key(recipient))
        return wrap_with_kek(kek, f"{sender}:{recipient}", secret)

    def unwrap_secret(
        self, recipient: str, sender: str, wrapped: bytes
    ) -> bytes:
        """Unwrap a secret received from ``sender``."""
        kek = self._kek(recipient, self.public_key(sender))
        return unwrap_with_kek(kek, f"{sender}:{recipient}", wrapped)

    def wrap_for(
        self, sender: str, recipient: str, context: str, secret: bytes
    ) -> bytes:
        """Pairwise wrap under an explicit context label.

        Same pairwise KEK as :meth:`wrap_secret`, but the IV binds to a
        caller-chosen context (e.g. a feed tier) instead of the bare
        principal pair, so one pair of principals can exchange several
        independent secrets without IV reuse.
        """
        kek = self._kek(sender, self.public_key(recipient))
        return wrap_with_kek(kek, context, secret)

    def unwrap_from(
        self, recipient: str, sender: str, context: str, wrapped: bytes
    ) -> bytes:
        """Invert :meth:`wrap_for` on the recipient side."""
        kek = self._kek(recipient, self.public_key(sender))
        return unwrap_with_kek(kek, context, wrapped)

    def publish_secret(
        self, owner: str, recipients: list[str], secret: bytes
    ) -> dict[str, bytes]:
        """Wrapped copies of ``secret`` for every recipient."""
        return {
            recipient: self.wrap_secret(owner, recipient, secret)
            for recipient in recipients
        }
