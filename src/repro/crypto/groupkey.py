"""The ONE symmetric key-wrap implementation behind every grant path.

Historically each layer that needed to hand a secret to someone open-
coded the same CBC-under-a-KEK construction (the PKI's pairwise wraps,
and now the feeds' tier-key hierarchy).  This module is the single
shared implementation: a wrap is ``CBC_KEK(secret)`` with a
deterministic IV bound to a *context* string, so the same (KEK,
context) pair always produces the same blob -- deterministic tests,
idempotent re-grants -- while distinct contexts (different principal
pairs, different tiers, different epochs) never share an IV.

:func:`wrap_call_count` is a process-wide counter in the style of
:func:`repro.core.nfa.compile_call_count`: tests and benchmarks read it
to assert key-wrap economics exactly -- e.g. that revoking a member
from a feed tier performs *one* re-wrap, not one per member or per
document.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.xtea import BLOCK_SIZE

_wrap_calls = 0


def wrap_call_count() -> int:
    """Process-wide number of key wraps performed so far.

    Read it before and after an operation to count the wraps it cost;
    unwraps are not counted (they are the receiver's business).
    """
    return _wrap_calls


def _context_iv(kek: bytes, context: str) -> bytes:
    return hmac.new(
        kek, f"wrap:{context}".encode("utf-8"), hashlib.sha256
    ).digest()[:BLOCK_SIZE]


def wrap_with_kek(kek: bytes, context: str, secret: bytes) -> bytes:
    """Wrap ``secret`` under ``kek``, IV-bound to ``context``."""
    global _wrap_calls
    _wrap_calls += 1
    return cbc_encrypt(secret, kek, _context_iv(kek, context))


def unwrap_with_kek(kek: bytes, context: str, wrapped: bytes) -> bytes:
    """Invert :func:`wrap_with_kek` for the same ``(kek, context)``."""
    return cbc_decrypt(wrapped, kek, _context_iv(kek, context))
