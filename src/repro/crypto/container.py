"""The encrypted document container stored at the DSP.

The SXS plaintext stream (skip index included) is cut into fixed-size
chunks; each chunk is encrypted independently (XTEA-CBC, deterministic
per-chunk IV) and carries a positional MAC.  Independent chunks are
what make the skip index effective end-to-end: the card can resume at
any chunk boundary without decrypting or verifying what it skipped,
while substitution/reorder/replay/truncation all remain detectable
(see :mod:`repro.crypto.mac`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keys import DocumentKeys
from repro.crypto.mac import (
    DEFAULT_TAG_LENGTH,
    chunk_mac,
    header_mac,
    verify_mac,
)
from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    cbc_encrypt_many,
)
from repro.errors import TamperDetected

DEFAULT_CHUNK_SIZE = 96  # plaintext bytes per chunk; fits card RAM easily


class IntegrityError(TamperDetected):
    """Raised when a MAC check or structural invariant fails."""


@dataclass(frozen=True, slots=True)
class DocumentHeader:
    """Authenticated container metadata."""

    doc_id: str
    version: int
    chunk_size: int
    chunk_count: int
    total_length: int  # plaintext bytes
    tag_length: int
    tag: bytes = field(repr=False, default=b"")

    def payload(self) -> bytes:
        return self.total_length.to_bytes(8, "big") + bytes([self.tag_length])

    def verify(self, keys: DocumentKeys) -> None:
        """Check the header MAC (card side, before any chunk is used)."""
        expected = header_mac(
            keys.mac,
            self.doc_id,
            self.version,
            self.chunk_count,
            self.chunk_size,
            self.payload(),
            self.tag_length,
        )
        if not verify_mac(expected, self.tag):
            raise IntegrityError(f"header MAC mismatch for {self.doc_id!r}")


@dataclass(frozen=True, slots=True)
class DocumentContainer:
    """Header plus encrypted chunks, as stored at the DSP."""

    header: DocumentHeader
    chunks: tuple[bytes, ...]  # each = ciphertext || tag

    def chunk_for_offset(self, offset: int) -> int:
        """Index of the chunk containing plaintext ``offset``."""
        return offset // self.header.chunk_size

    @property
    def stored_size(self) -> int:
        """Total bytes at rest (ciphertext + tags), the E4/E6 metric."""
        return sum(len(chunk) for chunk in self.chunks)


def seal_document(
    plaintext: bytes,
    doc_id: str,
    version: int,
    keys: DocumentKeys,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    tag_length: int = DEFAULT_TAG_LENGTH,
) -> DocumentContainer:
    """Encrypt and authenticate an SXS plaintext stream (owner side)."""
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    chunk_count = max(1, -(-len(plaintext) // chunk_size))
    # All chunks encrypt through one shared keyed cipher, bit-sliced
    # across chunks (each chunk chains internally on its own IV).
    ciphertexts = cbc_encrypt_many(
        [
            (
                plaintext[index * chunk_size:(index + 1) * chunk_size],
                keys.iv(doc_id, version, index),
            )
            for index in range(chunk_count)
        ],
        keys.cipher,
    )
    chunks: list[bytes] = []
    for index, ciphertext in enumerate(ciphertexts):
        tag = chunk_mac(
            keys.mac, doc_id, version, index, chunk_count, ciphertext, tag_length
        )
        chunks.append(ciphertext + tag)
    header = DocumentHeader(
        doc_id=doc_id,
        version=version,
        chunk_size=chunk_size,
        chunk_count=chunk_count,
        total_length=len(plaintext),
        tag_length=tag_length,
        tag=b"",
    )
    header = DocumentHeader(
        doc_id=doc_id,
        version=version,
        chunk_size=chunk_size,
        chunk_count=chunk_count,
        total_length=len(plaintext),
        tag_length=tag_length,
        tag=header_mac(
            keys.mac, doc_id, version, chunk_count, chunk_size,
            header.payload(), tag_length,
        ),
    )
    return DocumentContainer(header=header, chunks=tuple(chunks))


def seal_blob(
    plaintext: bytes,
    label: str,
    version: int,
    keys: DocumentKeys,
    tag_length: int = DEFAULT_TAG_LENGTH,
) -> bytes:
    """Encrypt and authenticate a small standalone blob (e.g. one access
    rule record).  The label namespaces the MAC so a blob can never be
    replayed as a document chunk or as a different record."""
    iv = keys.iv(label, version, 0)
    ciphertext = cbc_encrypt(plaintext, keys.cipher, iv)
    tag = chunk_mac(keys.mac, label, version, 0, 1, ciphertext, tag_length)
    return ciphertext + tag


def open_blob(
    blob: bytes,
    label: str,
    version: int,
    keys: DocumentKeys,
    tag_length: int = DEFAULT_TAG_LENGTH,
) -> bytes:
    """Verify and decrypt a blob sealed by :func:`seal_blob`."""
    if len(blob) <= tag_length:
        raise IntegrityError(f"blob {label!r} too short")
    ciphertext, tag = blob[:-tag_length], blob[-tag_length:]
    expected = chunk_mac(keys.mac, label, version, 0, 1, ciphertext, tag_length)
    if not verify_mac(expected, tag):
        raise IntegrityError(f"blob MAC mismatch for {label!r}")
    iv = keys.iv(label, version, 0)
    try:
        return cbc_decrypt(ciphertext, keys.cipher, iv)
    except (PaddingError, ValueError) as exc:
        raise IntegrityError(f"blob {label!r} failed to decrypt") from exc


def open_chunk(
    header: DocumentHeader,
    index: int,
    blob: bytes,
    keys: DocumentKeys,
) -> bytes:
    """Verify and decrypt one chunk (card side).

    Raises :class:`IntegrityError` on any tamper evidence.
    """
    if not 0 <= index < header.chunk_count:
        raise IntegrityError(f"chunk index {index} out of range")
    if len(blob) <= header.tag_length:
        raise IntegrityError("chunk too short")
    ciphertext, tag = blob[:-header.tag_length], blob[-header.tag_length:]
    expected = chunk_mac(
        keys.mac,
        header.doc_id,
        header.version,
        index,
        header.chunk_count,
        ciphertext,
        header.tag_length,
    )
    if not verify_mac(expected, tag):
        raise IntegrityError(
            f"chunk {index} MAC mismatch for {header.doc_id!r}"
        )
    iv = keys.iv(header.doc_id, header.version, index)
    try:
        plaintext = cbc_decrypt(ciphertext, keys.cipher, iv)
    except (PaddingError, ValueError) as exc:
        raise IntegrityError(f"chunk {index} failed to decrypt") from exc
    expected_length = min(
        header.chunk_size,
        header.total_length - index * header.chunk_size,
    )
    if len(plaintext) != expected_length:
        raise IntegrityError(f"chunk {index} has unexpected length")
    return plaintext
