"""Merkle-tree integrity: the alternative to per-chunk MACs.

DESIGN.md lists integrity granularity as an ablation: our container
authenticates each chunk with its own positional MAC (8 bytes at rest
per chunk, O(1) verification, nothing to fetch beyond the chunk).  The
classical alternative -- used by secure storage systems of the period
such as GnatDb [10] -- keeps a single authenticated *root* and verifies
each randomly-accessed chunk against an authentication path of
``log2(n)`` sibling hashes.

Trade-off the E11 analysis quantifies:

* storage at rest: one root (+32 B) vs ``8 B x chunks``;
* per-access transfer: ``~32 B x log2(n)`` of auth path vs 0;
* per-access card work: ``log2(n)`` hashes vs one MAC.

For the paper's workload -- the skip index makes chunk access *sparse*
-- per-chunk MACs win on card work while Merkle wins on storage; both
are implemented and tested so the comparison is executable.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

HASH_SIZE = 16  # truncated SHA-256, card-realistic


def _leaf_hash(index: int, data: bytes) -> bytes:
    return hashlib.sha256(
        b"leaf:" + index.to_bytes(8, "big") + data
    ).digest()[:HASH_SIZE]


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"node:" + left + right).digest()[:HASH_SIZE]


@dataclass(frozen=True, slots=True)
class AuthPath:
    """Sibling hashes from a leaf up to the root.

    ``siblings[k]`` is the sibling at height ``k``; ``None`` when the
    node had no sibling at that level (odd tail promoted unchanged).
    """

    leaf_index: int
    siblings: tuple[bytes | None, ...]

    @property
    def transfer_bytes(self) -> int:
        """Bytes the terminal ships to the card for this verification."""
        return sum(HASH_SIZE for sibling in self.siblings if sibling is not None)


class MerkleTree:
    """A Merkle tree over the encrypted chunks of one container."""

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ValueError("a Merkle tree needs at least one leaf")
        level = [
            _leaf_hash(index, data) for index, data in enumerate(leaves)
        ]
        self._levels: list[list[bytes]] = [level]
        while len(level) > 1:
            next_level: list[bytes] = []
            for position in range(0, len(level), 2):
                if position + 1 < len(level):
                    next_level.append(
                        _node_hash(level[position], level[position + 1])
                    )
                else:
                    next_level.append(level[position])  # promote odd tail
            self._levels.append(next_level)
            level = next_level

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return len(self._levels[0])

    def auth_path(self, index: int) -> AuthPath:
        """Authentication path for leaf ``index`` (served by the DSP)."""
        if not 0 <= index < self.leaf_count:
            raise IndexError(index)
        siblings: list[bytes | None] = []
        position = index
        for level in self._levels[:-1]:
            sibling_position = position ^ 1
            if sibling_position < len(level):
                siblings.append(level[sibling_position])
            else:
                siblings.append(None)
            position //= 2
        return AuthPath(index, tuple(siblings))


def verify_chunk(
    root: bytes,
    index: int,
    data: bytes,
    path: AuthPath,
) -> bool:
    """Card-side check of one chunk against the authenticated root.

    Returns True iff recomputing the path from ``data`` reaches
    ``root``; the caller counts ``hash_operations(path)`` cycles.
    """
    if path.leaf_index != index:
        return False
    current = _leaf_hash(index, data)
    position = index
    for sibling in path.siblings:
        if sibling is not None:
            if position % 2 == 0:
                current = _node_hash(current, sibling)
            else:
                current = _node_hash(sibling, current)
        position //= 2
    return hmac.compare_digest(current, root)


def hash_operations(path: AuthPath) -> int:
    """Hashes the card performs for one verification (leaf + nodes)."""
    return 1 + sum(1 for sibling in path.siblings if sibling is not None)


def storage_overhead(chunk_count: int) -> int:
    """Bytes at rest beyond the ciphertext: just the root.

    (The inner nodes can be recomputed by the DSP on demand or cached;
    they are not part of what the *owner* must publish.)
    """
    del chunk_count
    return HASH_SIZE
