"""CBC mode with PKCS#7 padding over the XTEA block cipher."""

from __future__ import annotations

from repro.crypto.xtea import (
    BLOCK_SIZE,
    xtea_decrypt_block,
    xtea_encrypt_block,
)


class PaddingError(ValueError):
    """Raised when PKCS#7 padding is malformed after decryption."""


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds 1..block_size bytes)."""
    pad = block_size - (len(data) % block_size)
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a block multiple")
    pad = data[-1]
    if not 1 <= pad <= block_size or data[-pad:] != bytes([pad]) * pad:
        raise PaddingError("bad padding bytes")
    return data[:-pad]


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt(plaintext: bytes, key: bytes, iv: bytes) -> bytes:
    """Encrypt with XTEA-CBC; the plaintext is PKCS#7-padded."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor(padded[offset:offset + BLOCK_SIZE], previous)
        previous = xtea_encrypt_block(block, key)
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(ciphertext: bytes, key: bytes, iv: bytes) -> bytes:
    """Decrypt XTEA-CBC and strip padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext length is not a block multiple")
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset:offset + BLOCK_SIZE]
        out.extend(_xor(xtea_decrypt_block(block, key), previous))
        previous = block
    return pkcs7_unpad(bytes(out))
