"""CBC mode with PKCS#7 padding over the XTEA block cipher.

The mode layer works on whole buffers: one call pads, chains and
encrypts (or decrypts, unchains and unpads) an entire chunk through the
memoized :class:`~repro.crypto.xtea.XTEACipher`, instead of paying a
Python function call and a fresh key schedule per 8-byte block.  A
``key`` argument may be raw 16-byte key material or an already-keyed
cipher object; the container layer passes the shared cipher so seal,
open and MAC-adjacent paths never re-derive the schedule.
"""

from __future__ import annotations

from repro.crypto.xtea import BLOCK_SIZE, XTEACipher
from repro.errors import TamperDetected


class PaddingError(TamperDetected, ValueError):
    """Raised when PKCS#7 padding is malformed after decryption.

    Malformed padding after an authenticated decrypt means the key or
    ciphertext was wrong -- tamper evidence, hence the taxonomy parent
    -- but it stays a :class:`ValueError` for historical callers.
    """


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always adds 1..block_size bytes)."""
    pad = block_size - (len(data) % block_size)
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("ciphertext length is not a block multiple")
    pad = data[-1]
    if not 1 <= pad <= block_size or data[-pad:] != bytes([pad]) * pad:
        raise PaddingError("bad padding bytes")
    return data[:-pad]


def _cipher(key: "bytes | XTEACipher") -> XTEACipher:
    if isinstance(key, XTEACipher):
        return key
    return XTEACipher.for_key(key)


def cbc_encrypt(plaintext: bytes, key: "bytes | XTEACipher", iv: bytes) -> bytes:
    """Encrypt with XTEA-CBC; the plaintext is PKCS#7-padded."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    return _cipher(key).cbc_encrypt_padded(pkcs7_pad(plaintext), iv)


def cbc_encrypt_many(
    messages: "list[tuple[bytes, bytes]]", key: "bytes | XTEACipher"
) -> list[bytes]:
    """Encrypt many independent ``(plaintext, iv)`` messages at once.

    Every message is padded and CBC-chained exactly as in
    :func:`cbc_encrypt`; equal-length messages advance together through
    the bit-sliced cipher (one lane per message).  The result list is
    bit-for-bit what per-message :func:`cbc_encrypt` calls would return.
    """
    for _, iv in messages:
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    return _cipher(key).cbc_encrypt_many(
        [(pkcs7_pad(plaintext), iv) for plaintext, iv in messages]
    )


def cbc_decrypt(ciphertext: bytes, key: "bytes | XTEACipher", iv: bytes) -> bytes:
    """Decrypt XTEA-CBC and strip padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext length is not a block multiple")
    return pkcs7_unpad(_cipher(key).cbc_decrypt_raw(ciphertext, iv))
