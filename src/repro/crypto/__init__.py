"""Cryptographic substrate (simulated smart-card crypto).

The real demonstrator used the e-gate card's crypto hardware; this
package substitutes a from-scratch XTEA block cipher in CBC mode with
HMAC-SHA-256 integrity tags and a simulated PKI (the paper's own demo
"simulate[s] it to keep the demonstration independent of a network
connection").  Costs are charged per byte to the card CPU model, so the
*relative* cost structure -- decryption linear in bytes, which is what
the skip index optimizes -- matches the paper's platform.
"""

from repro.crypto.container import (
    DocumentContainer,
    DocumentHeader,
    IntegrityError,
    open_blob,
    open_chunk,
    seal_blob,
    seal_document,
)
from repro.crypto.merkle import AuthPath, MerkleTree, verify_chunk
from repro.crypto.keys import DocumentKeys, KeyRing, derive_key
from repro.crypto.mac import chunk_mac, header_mac, verify_mac
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.pki import KeyPair, SimulatedPKI
from repro.crypto.xtea import xtea_decrypt_block, xtea_encrypt_block

__all__ = [
    "AuthPath",
    "DocumentContainer",
    "DocumentHeader",
    "DocumentKeys",
    "IntegrityError",
    "KeyPair",
    "KeyRing",
    "MerkleTree",
    "SimulatedPKI",
    "cbc_decrypt",
    "cbc_encrypt",
    "chunk_mac",
    "derive_key",
    "header_mac",
    "open_blob",
    "open_chunk",
    "seal_blob",
    "seal_document",
    "verify_chunk",
    "verify_mac",
    "xtea_decrypt_block",
    "xtea_encrypt_block",
]
