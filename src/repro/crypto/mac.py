"""Integrity tags: HMAC-SHA-256 with positional binding.

"The only way to mislead the access control rule evaluator is to tamper
the input document, for example by substituting or modifying encrypted
blocks, thus motivating the encryption and integrity checking"
(Section 2.1).

Every chunk MAC binds ``(document id, version, chunk index, chunk
count)`` in addition to the ciphertext, so each of the classic attacks
by an untrusted DSP or channel fails:

* *modification*  -- the ciphertext is under the MAC;
* *substitution*  -- the document id is under the MAC;
* *reordering*    -- the chunk index is under the MAC;
* *truncation*    -- the chunk count is under the MAC (and the header
  carries its own MAC);
* *version replay* -- the version is under the MAC and the card keeps a
  monotonic per-document version register in its secure store.

Tags may be truncated (smart cards commonly use 4-8 byte tags to save
bandwidth); the length is a parameter of the container.
"""

from __future__ import annotations

import hashlib
import hmac

DEFAULT_TAG_LENGTH = 8

#: Keyed HMAC contexts with the key pads already absorbed; ``copy()``
#: per message skips the two key-schedule compression rounds that
#: ``hmac.new`` pays on every call.  Every message is still MAC'd in
#: full -- only the key-dependent prefix state is shared.  The memo is
#: shared with :mod:`repro.crypto.keys` (IV/subkey derivation).
_BASES: dict[bytes, "hmac.HMAC"] = {}
_BASE_LIMIT = 256


def keyed_digest(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA-256 with a per-key precomputed pad state."""
    base = _BASES.get(key)
    if base is None:
        if len(_BASES) >= _BASE_LIMIT:
            _BASES.clear()
        base = _BASES[key] = hmac.new(key, b"", hashlib.sha256)
    mac = base.copy()
    mac.update(message)
    return mac.digest()


def _mac(key: bytes, message: bytes, length: int) -> bytes:
    return keyed_digest(key, message)[:length]


def chunk_mac(
    key: bytes,
    doc_id: str,
    version: int,
    index: int,
    chunk_count: int,
    ciphertext: bytes,
    length: int = DEFAULT_TAG_LENGTH,
) -> bytes:
    """MAC of one encrypted chunk with full positional binding."""
    header = (
        doc_id.encode("utf-8")
        + b"\x00"
        + version.to_bytes(8, "big")
        + index.to_bytes(8, "big")
        + chunk_count.to_bytes(8, "big")
    )
    return _mac(key, header + ciphertext, length)


def header_mac(
    key: bytes,
    doc_id: str,
    version: int,
    chunk_count: int,
    chunk_size: int,
    payload: bytes,
    length: int = DEFAULT_TAG_LENGTH,
) -> bytes:
    """MAC of the container header (metadata + any plaintext payload)."""
    header = (
        b"HDR"
        + doc_id.encode("utf-8")
        + b"\x00"
        + version.to_bytes(8, "big")
        + chunk_count.to_bytes(8, "big")
        + chunk_size.to_bytes(8, "big")
    )
    return _mac(key, header + payload, length)


def verify_mac(expected: bytes, actual: bytes) -> bool:
    """Constant-time tag comparison."""
    return hmac.compare_digest(expected, actual)
