"""Trusted-server filtering: the architecture the paper rejects.

If the server were trusted, it could evaluate the view in plaintext
and ship only the result.  The paper's whole point is that servers and
DSPs are *not* trusted; this baseline exists as the latency floor in
experiment E6's comparison table.
"""

from __future__ import annotations

from repro.core.delivery import ViewMode
from repro.core.reference import reference_view
from repro.core.rules import RuleSet, Sign
from repro.smartcard.resources import NetworkModel, SimClock
from repro.xmlstream.tree import Element
from repro.xmlstream.writer import write_string


def trusted_server_query(
    root: Element,
    rules: RuleSet,
    subject: str,
    query: str | None = None,
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign = Sign.DENY,
    network: NetworkModel | None = None,
    clock: SimClock | None = None,
) -> tuple[str, SimClock]:
    """Compute the view server-side and charge only the result transfer."""
    network = network or NetworkModel()
    clock = clock or SimClock()
    view = write_string(
        reference_view(root, rules, subject, query=query, mode=mode, default=default)
    )
    payload = view.encode("utf-8")
    clock.add("network", network.request_overhead_seconds)
    clock.add("network", network.transfer_seconds(len(payload)))
    return view, clock
