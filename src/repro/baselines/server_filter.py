"""Trusted-server filtering: the architecture the paper rejects.

If the server were trusted, it could evaluate the view in plaintext
and ship only the result.  The paper's whole point is that servers and
DSPs are *not* trusted; this baseline exists as the latency floor in
experiment E6's comparison table.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.core.reference import reference_view
from repro.core.rules import RuleSet, Sign, Subject
from repro.smartcard.resources import NetworkModel, SimClock
from repro.xmlstream.tree import Element, tree_to_events
from repro.xmlstream.writer import write_string


def trusted_server_query(
    root: Element,
    rules: RuleSet,
    subject: str,
    query: str | None = None,
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign = Sign.DENY,
    network: NetworkModel | None = None,
    clock: SimClock | None = None,
) -> tuple[str, SimClock]:
    """Compute the view server-side and charge only the result transfer."""
    network = network or NetworkModel()
    clock = clock or SimClock()
    view = write_string(
        reference_view(root, rules, subject, query=query, mode=mode, default=default)
    )
    payload = view.encode("utf-8")
    clock.add("network", network.request_overhead_seconds)
    clock.add("network", network.transfer_seconds(len(payload)))
    return view, clock


def trusted_server_multicast(
    root: Element,
    rules: RuleSet,
    subjects: Sequence[Subject | str],
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign = Sign.DENY,
    network: NetworkModel | None = None,
    clock: SimClock | None = None,
    registry: PolicyRegistry | None = None,
) -> tuple[dict[str, str], SimClock]:
    """Trusted-server views for a whole audience in one parse pass.

    The multicast analogue of :func:`trusted_server_query`: instead of
    walking the document once per subject, all subjects' automata run
    over a single shared pass.  Delegates to
    :class:`~repro.dsp.server.TrustedFilterService` (the one place
    that renders and charges multicast views) over a throwaway DSP
    front, so the two trusted-server reference points price transfers
    identically.
    """
    from repro.dsp.server import DSPServer, TrustedFilterService

    server = DSPServer(network=network, clock=clock)
    service = TrustedFilterService(server, registry=registry)
    rendered = service.multicast(
        tree_to_events(root), rules, subjects, default=default, mode=mode
    )
    return rendered, server.clock
