"""The static encryption-based sharing model ([1], [6]).

"the dataset is split in subsets reflecting a current sharing
situation, each encrypted with a different key.  Once the dataset is
encrypted, changes in the access control rules definition may impact
the subset boundaries, hence incurring a partial re-encryption of the
dataset and a potential redistribution of keys." (Section 1)

This module implements exactly that scheme so experiment E8 can price
policy churn: nodes are grouped by *authorization vector* (the set of
subjects allowed to read them), each group gets its own key, and each
subject receives the keys of the groups it may read.  A rule change
moves nodes between groups -> those nodes are re-encrypted; it changes
subjects' key sets -> keys are redistributed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reference import _decide, _direct_matches
from repro.core.rules import RuleSet, Sign
from repro.xmlstream.events import event_size
from repro.xmlstream.events import CloseEvent, OpenEvent, ValueEvent
from repro.xmlstream.tree import Element


def _node_bytes(node: Element) -> int:
    """Serialized bytes owned by this node alone (tags, attrs, text)."""
    open_event = OpenEvent(node.tag, tuple(node.attributes.items()))
    size = event_size(open_event) + event_size(CloseEvent(node.tag))
    for child in node.children:
        if isinstance(child, str):
            size += event_size(ValueEvent(child))
    return size


@dataclass(frozen=True, slots=True)
class ChurnCost:
    """Price of one policy change under static encryption."""

    nodes_reencrypted: int
    bytes_reencrypted: int
    keys_redistributed: int
    classes_before: int
    classes_after: int


class StaticEncryptionScheme:
    """Authorization-equivalence-class encryption of one document."""

    def __init__(
        self, root: Element, rules: RuleSet, subjects: list[str]
    ) -> None:
        self.root = root
        self.subjects = list(subjects)
        self._vectors: dict[int, frozenset[str]] = {}
        self._key_sets: dict[str, set[frozenset[str]]] = {}
        self.total_bytes = sum(_node_bytes(node) for node in root.iter())
        self._compute(rules)

    def _compute(self, rules: RuleSet) -> None:
        vectors: dict[int, frozenset[str]] = {}
        for subject in self.subjects:
            subject_rules = rules.for_subject(subject)
            matches = _direct_matches(subject_rules, self.root)
            cache: dict[int, Sign] = {}
            for node in self.root.iter():
                decision = _decide(node, matches, Sign.DENY, cache)
                if decision is Sign.PERMIT:
                    current = vectors.get(id(node), frozenset())
                    vectors[id(node)] = current | {subject}
        for node in self.root.iter():
            vectors.setdefault(id(node), frozenset())
        self._vectors = vectors
        key_sets: dict[str, set[frozenset[str]]] = {
            subject: set() for subject in self.subjects
        }
        for vector in vectors.values():
            for subject in vector:
                key_sets[subject].add(vector)
        self._key_sets = key_sets

    @property
    def class_count(self) -> int:
        """Number of distinct encryption classes (keys) in use."""
        return len(set(self._vectors.values()))

    def keys_held_by(self, subject: str) -> int:
        return len(self._key_sets.get(subject, ()))

    def initial_encryption_bytes(self) -> int:
        """Everything is encrypted once at setup."""
        return self.total_bytes

    def initial_keys_distributed(self) -> int:
        return sum(len(keys) for keys in self._key_sets.values())

    def rekey_for(self, new_rules: RuleSet) -> ChurnCost:
        """Price a policy change, then adopt it.

        A node whose authorization vector changed moves to another
        class and must be re-encrypted; every (subject, new key) pair
        not previously held is a key redistribution.  Keys of shrunken
        classes are rotated, so members of a class that *lost* a
        subject receive fresh keys too (otherwise the revoked subject
        could keep decrypting) -- the standard revocation cost.
        """
        old_vectors = self._vectors
        old_key_sets = {
            subject: set(keys) for subject, keys in self._key_sets.items()
        }
        classes_before = self.class_count
        self._compute(new_rules)
        nodes = 0
        nbytes = 0
        changed_vectors: set[frozenset[str]] = set()
        for node in self.root.iter():
            old = old_vectors.get(id(node), frozenset())
            new = self._vectors[id(node)]
            if old != new:
                nodes += 1
                nbytes += _node_bytes(node)
                changed_vectors.add(new)
        keys = 0
        for subject in self.subjects:
            gained = self._key_sets[subject] - old_key_sets.get(subject, set())
            keys += len(gained)
            # Rotated keys: classes the subject keeps but whose
            # membership changed (someone was revoked from them).
            kept = self._key_sets[subject] & old_key_sets.get(subject, set())
            keys += len(kept & changed_vectors)
        return ChurnCost(
            nodes_reencrypted=nodes,
            bytes_reencrypted=nbytes,
            keys_redistributed=keys,
            classes_before=classes_before,
            classes_after=self.class_count,
        )
