"""Baselines the paper argues against or ablates.

* :mod:`repro.baselines.static_encryption` -- the client-based schemes
  of Bertino et al. [1] and Hacigumus et al. [6]: the dataset is
  partitioned into authorization-equivalence classes, one key per
  class.  Sharing is static: every policy change re-encrypts data and
  redistributes keys (experiment E8).
* :mod:`repro.baselines.full_decrypt` -- our engine without the skip
  index: the card decrypts and parses everything (E1/E2 ablation).
* :mod:`repro.baselines.server_filter` -- a *trusted* server computing
  views in plaintext: the architecture the paper's threat model rules
  out, kept as a latency reference point (E6).
"""

from repro.baselines.static_encryption import (
    ChurnCost,
    StaticEncryptionScheme,
)
from repro.baselines.server_filter import (
    trusted_server_multicast,
    trusted_server_query,
)

__all__ = [
    "ChurnCost",
    "StaticEncryptionScheme",
    "trusted_server_multicast",
    "trusted_server_query",
]
