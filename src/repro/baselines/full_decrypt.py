"""Full-decryption baseline: the card engine without its skip index.

Publishing with ``IndexMode.NONE`` removes the embedded metadata, so
the card must receive and decrypt every chunk.  The comparison against
``IndexMode.RECURSIVE`` isolates the paper's skip-index contribution
(experiments E1 and E2).
"""

from __future__ import annotations

from repro.bench.harness import PullSetup, run_pull_session
from repro.core.rules import RuleSet
from repro.skipindex.encoder import IndexMode
from repro.smartcard.resources import SessionMetrics
from repro.xmlstream.events import Event


def run_without_index(
    events: list[Event],
    rules: RuleSet,
    subject: str,
    query: str | None = None,
) -> tuple[str, SessionMetrics]:
    """One pull session over an index-free container."""
    setup = PullSetup(
        events=events,
        rules=rules,
        subject=subject,
        query=query,
        index_mode=IndexMode.NONE,
    )
    outcome = run_pull_session(setup)
    return outcome.xml, outcome.metrics
