"""The :class:`Feed`: tiered dissemination of one publisher's corpus.

A feed owns a set of documents, a set of named tiers
(:class:`~repro.feeds.tiers.TierSpec`) and one broadcast lane per
tier.  The publisher's per-cycle work is O(tiers):

* every document carries ONE composed policy (all tiers' templates),
  compiled once per distinct sub-policy and shared by every card in a
  tier;
* every document carries ONE wrapped secret per tier
  (:mod:`repro.feeds.keys`), written at publish time -- carousel
  cycles, joins and policy churn never touch it;
* members cost one PKI wrap at join, and nothing per cycle;
* revoking a member is one blob deletion, one epoch bump and exactly
  one re-wrap, regardless of member and document count.

Late joiners call :meth:`Feed.catch_up`: the last broadcast cycle is
persisted at the DSP (``SQLiteBackend``'s ``feed_snapshots`` table)
and replayed through the member's card after validation against the
store generation, the tier epoch and each document's versions -- a
republish or revocation can never serve a stale cycle.

A feed restored by ``Community.open`` is **sealed** (the owner's tier
keyrings and plaintext live only in the publishing process): catch-up
and epoch inspection work, publishing/subscribing/revoking need the
owner process -- the same split as sealed :class:`Document` handles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.delivery import ViewMode
from repro.core.rules import Sign, Subject
from repro.crypto.container import seal_document
from repro.crypto.keys import DocumentKeys, random_key
from repro.dissemination.channel import BroadcastChannel
from repro.dissemination.publisher import StreamPublisher
from repro.dsp.backends import SQLiteBackend, ShardedBackend, StoredDocument
from repro.dsp.store import DSPStore
from repro.errors import KeyNotGranted, PolicyError
from repro.feeds.keys import (
    ResolvedTierKeys,
    TierKeyring,
    decode_epoch,
    epoch_recipient,
    feed_doc_id,
    grant_recipient,
    member_recipient,
    resolve_tier_keys,
    tier_prefix,
)
from repro.feeds.snapshot import CycleSnapshot, decode_snapshot, encode_snapshot
from repro.feeds.subscriber import FeedSubscriberHandle
from repro.feeds.tiers import TierSpec, compose_rules
from repro.skipindex.encoder import IndexMode
from repro.smartcard.card import encode_header
from repro.terminal.transfer import TransferPolicy

if TYPE_CHECKING:
    from repro.community.facade import Community, Document, DocumentSource, Member


class _TierState:
    """One tier's runtime wiring inside a feed."""

    __slots__ = ("spec", "keyring", "channel", "publisher", "handles", "last_cycle")

    def __init__(
        self,
        spec: TierSpec,
        keyring: TierKeyring | None,
        channel: BroadcastChannel,
        publisher: StreamPublisher,
    ) -> None:
        self.spec = spec
        self.keyring = keyring
        self.channel = channel
        self.publisher = publisher
        self.handles: list[FeedSubscriberHandle] = []
        self.last_cycle: CycleSnapshot | None = None


class Feed:
    """Tiered, group-keyed dissemination of one owner's documents.

    Build through ``community.feed(name, owner=..., tiers=[...])``;
    the constructor is wired by the facade.
    """

    def __init__(
        self,
        community: "Community",
        name: str,
        owner: "Member",
        tiers: Sequence[TierSpec],
        *,
        sealed: bool = False,
        doc_ids: Sequence[str] = (),
    ) -> None:
        if not name or ":" in name:
            raise PolicyError(
                f"feed name {name!r} must be non-empty and contain no ':' "
                "(it becomes part of every tier's group subject)"
            )
        if not tiers:
            raise PolicyError(f"feed {name!r} needs at least one tier")
        compose_rules(name, tiers)  # validates tier names up front
        self.community = community
        self.name = name
        self.owner = owner
        self.sealed = sealed
        self._tiers: dict[str, _TierState] = {}
        for spec in tiers:
            channel = BroadcastChannel(clock=community.clock)
            self._tiers[spec.name] = _TierState(
                spec,
                None if sealed else TierKeyring.create(name, spec.name),
                channel,
                StreamPublisher(channel, registry=community.registry),
            )
        self._members: dict[str, str] = {}
        self._docs: list[Document] = [
            community.document(doc_id) for doc_id in doc_ids
        ]
        if not sealed:
            self._create_anchor()

    def __repr__(self) -> str:
        state = "sealed" if self.sealed else "live"
        return (
            f"Feed({self.name!r}, owner={self.owner.name!r}, "
            f"tiers={list(self._tiers)}, {state})"
        )

    # -- wiring -----------------------------------------------------------

    def _store(self) -> DSPStore:
        return self.community._require_store()

    def _require_live(self, operation: str) -> None:
        if self.sealed:
            raise PolicyError(
                f"feed {self.name!r} is a sealed handle; {operation} needs "
                "the owner's tier keyrings, which only the publishing "
                "process holds (catch_up and epoch inspection still work)",
                subject=self.owner.name,
            )

    def _keyring(self, tier: str) -> TierKeyring:
        keyring = self._tiers[tier].keyring
        assert keyring is not None  # _require_live ran first
        return keyring

    def _tier(self, name: str) -> _TierState:
        state = self._tiers.get(name)
        if state is None:
            raise PolicyError(
                f"feed {self.name!r} has no tier {name!r} "
                f"(tiers: {list(self._tiers)})"
            )
        return state

    def _create_anchor(self) -> None:
        """Upload the manifest document anchoring this feed's key blobs.

        The container is a minimal sealed blob under a throwaway key --
        nobody ever reads it; it exists so the feed's tier blobs can
        ride the ordinary ``wrapped_keys`` table under a document id
        every backend and topology already persists and serves.
        """
        store = self._store()
        anchor = feed_doc_id(self.name)
        if anchor in store:
            raise PolicyError(
                f"a feed named {self.name!r} already exists at this store "
                "(Community.open restores it as a sealed handle)"
            )
        container = seal_document(
            f"feed-anchor:{self.name}".encode("utf-8"),
            anchor,
            1,
            DocumentKeys(random_key()),
            chunk_size=64,
        )
        store.put_document(container)
        for tier, state in self._tiers.items():
            keyring = state.keyring
            assert keyring is not None
            store.put_wrapped_key(
                anchor, epoch_recipient(self.name, tier), keyring.epoch_record()
            )
            store.put_wrapped_key(
                anchor, grant_recipient(self.name, tier), keyring.wrap_grant()
            )

    # -- introspection ----------------------------------------------------

    @property
    def tiers(self) -> list[TierSpec]:
        return [state.spec for state in self._tiers.values()]

    @property
    def documents(self) -> "list[Document]":
        return list(self._docs)

    @property
    def members(self) -> dict[str, str]:
        """Member name -> tier name, in join order (live feeds only)."""
        return dict(self._members)

    def handles(self, tier: str | None = None) -> list[FeedSubscriberHandle]:
        if tier is not None:
            return list(self._tier(tier).handles)
        return [h for state in self._tiers.values() for h in state.handles]

    def epoch(self, tier: str) -> int:
        """The tier's current epoch, as recorded at the DSP.

        Works on sealed feeds: the epoch record is a public blob.
        """
        self._tier(tier)
        record = self.community.dsp.get_wrapped_key(
            feed_doc_id(self.name), epoch_recipient(self.name, tier)
        )
        return decode_epoch(record)

    def stored(self, doc_id: str) -> StoredDocument:
        """The DSP's record of one feed document (rules for the cards)."""
        return self._store().get(doc_id)

    def broadcast_list(self, tier: str) -> "list[Document]":
        """The documents one cycle carries to ``tier`` (quota applied)."""
        quota = self._tier(tier).spec.quota
        return self._docs[: quota] if quota is not None else list(self._docs)

    # -- owner side -------------------------------------------------------

    def publish(
        self,
        source: "DocumentSource",
        *,
        doc_id: str | None = None,
        index_mode: IndexMode = IndexMode.RECURSIVE,
        chunk_size: int = 96,
    ) -> "Document":
        """Publish (or republish) a document into every tier.

        The document is sealed once, under the feed's composed policy
        (every tier's template); each tier then costs exactly one
        symmetric wrap of the document secret under its content key.
        No member-count-dependent work happens here.
        """
        self._require_live("publishing")
        rules = compose_rules(self.name, self.tiers)
        document = self.owner.publish(
            source,
            rules,
            doc_id=doc_id,
            index_mode=index_mode,
            chunk_size=chunk_size,
        )
        store = self._store()
        secret = self.owner.publisher.secret_for(document.doc_id)
        for tier in self._tiers:
            store.put_wrapped_key(
                document.doc_id,
                tier_prefix(self.name, tier),
                self._keyring(tier).wrap_doc_secret(document.doc_id, secret),
            )
        if all(existing.doc_id != document.doc_id for existing in self._docs):
            self._docs.append(document)
            self.community._save_manifest()
        return document

    def broadcast(self, cycles: int = 1) -> None:
        """Send ``cycles`` carousel cycles on every tier's lane.

        Per cycle each tier broadcasts its quota-capped document list;
        the byte cost is O(tiers x documents) regardless of audience
        size, and zero key wraps or policy compiles happen (asserted
        by tests through the process-wide counters).  The last cycle
        is recorded as each tier's catch-up snapshot and persisted
        when the store is durable.
        """
        self._require_live("broadcasting")
        if cycles < 1:
            raise PolicyError("a broadcast needs at least one cycle")
        store = self._store()
        for tier, state in self._tiers.items():
            documents = self.broadcast_list(tier)
            stored = [store.get(document.doc_id) for document in documents]
            for _ in range(cycles):
                for record in stored:
                    state.publisher.broadcast_document(record.container)
            state.last_cycle = self._snapshot_from_store(tier)
            self._persist_snapshot(state.last_cycle)

    def preview(
        self, mode: ViewMode = ViewMode.SKELETON
    ) -> dict[str, str]:
        """Every tier's per-cycle view, in ONE evaluation pass per doc.

        One multicast lane per *tier* -- not per member -- because a
        tier's members share the tier group subject.  The result is
        each tier's concatenated view of its broadcast list, exactly
        what a subscribed member's :attr:`FeedSubscriberHandle.view`
        accumulates after one complete cycle.
        """
        self._require_live("previews")
        views: dict[str, list[str]] = {tier: [] for tier in self._tiers}
        carried: dict[str, set[str]] = {
            tier: {doc.doc_id for doc in self.broadcast_list(tier)}
            for tier in self._tiers
        }
        publisher = next(iter(self._tiers.values())).publisher
        for document in self._docs:
            lanes = [
                tier
                for tier in self._tiers
                if document.doc_id in carried[tier]
            ]
            if not lanes:
                continue  # quota-excluded everywhere: no lane to fill
            events = document.events
            rules = document.rules
            if events is None or rules is None:
                raise PolicyError(
                    f"document {document.doc_id!r} is a sealed handle; "
                    "feed previews need the owner's plaintext",
                    doc_id=document.doc_id,
                )
            passes = publisher.preview_views(
                events,
                rules,
                [Subject(tier_prefix(self.name, tier)) for tier in lanes],
                default=Sign.DENY,
                mode=mode,
            )
            for tier in lanes:
                views[tier].append(passes[tier_prefix(self.name, tier)])
        return {tier: "".join(parts) for tier, parts in views.items()}

    # -- membership -------------------------------------------------------

    def subscribe(
        self,
        member: "Member | str",
        tier: str,
        *,
        view_mode: ViewMode = ViewMode.SKELETON,
        transfer: TransferPolicy | None = None,
        attach: bool = True,
    ) -> FeedSubscriberHandle:
        """Join a member to a tier: ONE PKI wrap, ever.

        The member's wrapped ``S_tier`` blob is written at the DSP, the
        tier keys are resolved back through the reader path (proving
        the blob works), and the returned handle starts listening on
        the tier's lane from the next cycle.

        ``attach=False`` records the membership (and still proves the
        key path) without wiring a live listener -- for members that
        will only ever :meth:`catch_up`, and for benchmarks that grow
        membership without simulating every receiver.
        """
        self._require_live("subscribing")
        if isinstance(member, str):
            member = self.community.member(member)
        if member.name in self._members:
            raise PolicyError(
                f"{member.name!r} is already subscribed to tier "
                f"{self._members[member.name]!r} of feed {self.name!r} "
                "(one card runs one session per document; revoke first "
                "to move tiers)",
                subject=member.name,
            )
        state = self._tier(tier)
        keyring = self._keyring(tier)
        self._store().put_wrapped_key(
            feed_doc_id(self.name),
            member_recipient(self.name, tier, member.name),
            keyring.wrap_member(self.community.pki, self.owner.name, member.name),
        )
        keys = resolve_tier_keys(
            self.community.dsp,
            self.community.pki,
            self.name,
            tier,
            self.owner.name,
            member.name,
        )
        handle = FeedSubscriberHandle(
            self, member, tier, keys, view_mode=view_mode, transfer=transfer
        )
        if attach:
            state.channel.subscribe(handle.on_frame)
            state.handles.append(handle)
        self._members[member.name] = tier
        return handle

    def revoke(self, member: "Member | str") -> None:
        """Remove a member from its tier: one re-wrap, one epoch bump.

        Deletes the member's ``S_tier`` blob, bumps the tier epoch and
        re-wraps the tier content key under the new epoch key -- the
        only wrap performed, however many members and documents exist.
        Attached handles are detached immediately (no further frames),
        persisted snapshots of the tier are invalidated, and the
        member's next catch-up fails with
        :class:`~repro.errors.KeyNotGranted`.

        Like flat-channel revocation this is *soft* against a member
        whose terminal already resolved the tier keys (the paper's
        model) -- and note the epoch bump rotates only the *wrapping*
        of ``C_tier``, never ``C_tier`` itself: a revoked member who
        retained a :class:`~repro.feeds.keys.ResolvedTierKeys` handle
        can keep unwrapping document secrets, **including documents
        published after the revocation**, until the tier is re-keyed.
        The epoch machinery cuts off the DSP *fetch* path, not
        already-resolved keys; durable exclusion pairs this with a
        policy update (the cards enforce rules regardless of keys) or
        a tier re-key.
        """
        self._require_live("revocation")
        name = member if isinstance(member, str) else member.name
        tier = self._members.pop(name, None)
        if tier is None:
            raise PolicyError(
                f"{name!r} is not subscribed to feed {self.name!r}",
                subject=name,
            )
        store = self._store()
        anchor = feed_doc_id(self.name)
        store.remove_wrapped_key(anchor, member_recipient(self.name, tier, name))
        keyring = self._keyring(tier)
        keyring.bump_epoch()
        store.put_wrapped_key(
            anchor, epoch_recipient(self.name, tier), keyring.epoch_record()
        )
        store.put_wrapped_key(
            anchor, grant_recipient(self.name, tier), keyring.wrap_grant()
        )
        state = self._tier(tier)
        for handle in state.handles:
            if handle.member.name == name:
                handle.revoked = True
        state.handles = [h for h in state.handles if h.member.name != name]
        state.last_cycle = None
        self._delete_snapshot(tier)

    # -- late-joiner catch-up ---------------------------------------------

    def catch_up(
        self,
        member: "Member | str",
        *,
        view_mode: ViewMode = ViewMode.SKELETON,
        transfer: TransferPolicy | None = None,
    ) -> FeedSubscriberHandle:
        """Replay the tier's last broadcast cycle through the member's card.

        Resolves the member's tier keys from the DSP blobs (works in a
        reopened process: the simulated PKI re-derives key pairs
        deterministically), validates the persisted snapshot against
        the store generation / tier epoch / document versions, and
        replays its frames through a fresh handle -- the resulting view
        is byte-identical to having listened to the full live cycle.

        On a live feed a missing or stale snapshot is rebuilt from the
        store; on a sealed feed it raises
        :class:`~repro.errors.PolicyError` (the owner process must
        rebroadcast), and a revoked member fails with
        :class:`~repro.errors.KeyNotGranted` before any frame flows.
        """
        if isinstance(member, str):
            member = self.community.member(member)
        tier, keys = self._resolve_membership(member.name)
        snapshot = self._current_snapshot(tier, expected_epoch=keys.epoch)
        handle = FeedSubscriberHandle(
            self, member, tier, keys, view_mode=view_mode, transfer=transfer
        )
        # The handle is one-shot: it replays the snapshot NOW and never
        # attaches to the live lane -- a member who also subscribed
        # would otherwise run two interleaved sessions on one card
        # during the next cycle (the hazard double-subscribe refuses).
        for kind, index, payload in snapshot.frames:
            handle.on_frame(kind, index, payload)
        return handle

    def _resolve_membership(self, name: str) -> tuple[str, ResolvedTierKeys]:
        tier = self._members.get(name)
        candidates = [tier] if tier is not None else list(self._tiers)
        failure: KeyNotGranted | None = None
        for candidate in candidates:
            try:
                keys = resolve_tier_keys(
                    self.community.dsp,
                    self.community.pki,
                    self.name,
                    candidate,
                    self.owner.name,
                    name,
                )
                return candidate, keys
            except KeyNotGranted as exc:
                failure = exc
        raise KeyNotGranted(
            f"{name!r} holds no tier key blob on feed {self.name!r} "
            "(never subscribed, or revoked)",
            subject=name,
        ) from failure

    # -- snapshots --------------------------------------------------------

    def _snapshot_backend(self) -> "SQLiteBackend | ShardedBackend | None":
        store = self.community.store
        if store is None:
            return None
        backend = store.backend
        if isinstance(backend, (SQLiteBackend, ShardedBackend)):
            return backend
        return None

    def _snapshot_from_store(self, tier: str) -> CycleSnapshot:
        """Synthesize the tier's cycle snapshot from the stored corpus.

        The frames are exactly what :meth:`broadcast` emits -- header,
        chunks in order, end, per document of the tier's broadcast
        list -- so a replayed catch-up is byte-identical to a live
        cycle.
        """
        store = self._store()
        docs: list[tuple[str, int, int]] = []
        frames: list[tuple[str, int, bytes]] = []
        for document in self.broadcast_list(tier):
            record = store.get(document.doc_id)
            container = record.container
            docs.append(
                (
                    document.doc_id,
                    container.header.version,
                    record.rules_version,
                )
            )
            frames.append(("header", 0, encode_header(container.header)))
            for index, blob in enumerate(container.chunks):
                frames.append(("chunk", index, blob))
            frames.append(("end", 0, b""))
        return CycleSnapshot(
            feed=self.name,
            tier=tier,
            epoch=self.epoch(tier),
            generation=store.generation,
            boot=store.boot,
            docs=tuple(docs),
            frames=tuple(frames),
        )

    def _persist_snapshot(self, snapshot: CycleSnapshot) -> None:
        backend = self._snapshot_backend()
        if backend is not None:
            backend.put_feed_snapshot(
                snapshot.feed,
                snapshot.tier,
                encode_snapshot(snapshot),
                epoch=snapshot.epoch,
            )

    def _delete_snapshot(self, tier: str) -> None:
        backend = self._snapshot_backend()
        if backend is not None:
            backend.delete_feed_snapshot(self.name, tier)

    def _snapshot_is_current(
        self, snapshot: CycleSnapshot, tier: str, expected_epoch: int
    ) -> bool:
        store = self._store()
        if (
            snapshot.boot == store.boot
            and snapshot.generation == store.generation
        ):
            # PR-5 contract: an unchanged generation proves NOTHING at
            # the store moved since the snapshot -- fresh, zero reads.
            # The generation counter is process-lifetime (restarts at
            # 0), so the fast path also demands the recording store's
            # boot nonce: a snapshot from a previous process can never
            # short-circuit on a coincidentally-equal counter and must
            # pass the piecewise stamps below.
            return snapshot.epoch == expected_epoch
        if snapshot.epoch != expected_epoch:
            return False  # a revocation moved the tier epoch
        current = [doc.doc_id for doc in self.broadcast_list(tier)]
        if [doc_id for doc_id, _, _ in snapshot.docs] != current:
            return False  # the corpus itself changed
        for doc_id, version, rules_version in snapshot.docs:
            record = store.get(doc_id)
            if (
                record.container.header.version != version
                or record.rules_version != rules_version
            ):
                return False  # a republish or policy update landed
        return True

    def _current_snapshot(
        self, tier: str, *, expected_epoch: int
    ) -> CycleSnapshot:
        state = self._tier(tier)
        snapshot = state.last_cycle
        if snapshot is None:
            backend = self._snapshot_backend()
            blob = (
                backend.get_feed_snapshot(self.name, tier)
                if backend is not None
                else None
            )
            if blob is not None:
                snapshot = decode_snapshot(blob)
        if snapshot is not None and self._snapshot_is_current(
            snapshot, tier, expected_epoch
        ):
            state.last_cycle = snapshot
            return snapshot
        if self.sealed:
            detail = (
                "is stale (republish, policy update or revocation since)"
                if snapshot is not None
                else "was never recorded"
            )
            raise PolicyError(
                f"the catch-up snapshot for tier {tier!r} of sealed feed "
                f"{self.name!r} {detail}; the owner process must "
                "broadcast again",
                subject=self.owner.name,
            )
        snapshot = self._snapshot_from_store(tier)
        state.last_cycle = snapshot
        self._persist_snapshot(snapshot)
        return snapshot
