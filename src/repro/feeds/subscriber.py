"""One member's receiving end of a feed tier lane.

A tier lane carries *several* documents per carousel cycle, while a
:class:`~repro.dissemination.subscriber.Subscriber` runs exactly one
document session.  :class:`FeedSubscriberHandle` bridges the two: each
``header`` frame routes to (or lazily creates) the per-document
subscriber on the member's one card, resolving the document secret
through the tier key hierarchy on first sight -- so a member joining
mid-cycle, or before a document even existed, needs no re-grant.

Like the carousel's late joiner, frames arriving before the handle has
engaged a document (the tail of a cycle already in progress) are
counted and discarded; completed documents ignore repeat cycles.

Card refusals surface exactly as in the flat channel: recorded per
document, converted to the typed :mod:`repro.errors` taxonomy by
:meth:`require_ok`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.delivery import ViewMode
from repro.dissemination.subscriber import Subscriber
from repro.errors import KeyNotGranted, ReproError, TransportError
from repro.feeds.keys import (
    ResolvedTierKeys,
    resolve_doc_secret,
    tier_prefix,
)
from repro.smartcard.card import decode_header
from repro.smartcard.resources import SessionMetrics
from repro.terminal.transfer import TransferPolicy

if TYPE_CHECKING:
    from repro.community.facade import Member
    from repro.feeds.feed import Feed


class FeedSubscriberHandle:
    """A member's multi-document subscription to one feed tier."""

    def __init__(
        self,
        feed: "Feed",
        member: "Member",
        tier: str,
        keys: ResolvedTierKeys,
        *,
        view_mode: ViewMode = ViewMode.SKELETON,
        transfer: TransferPolicy | None = None,
    ) -> None:
        self.feed = feed
        self.member = member
        self.tier = tier
        self.group = tier_prefix(feed.name, tier)
        self.keys = keys
        self._view_mode = view_mode
        self._transfer = transfer
        self._subscribers: dict[str, Subscriber] = {}
        self._order: list[str] = []
        self._current: Subscriber | None = None
        self._provisioned: set[str] = set()
        #: Frames discarded before the handle engaged any document (the
        #: tail of the cycle in progress when the member tuned in).
        self.frames_missed = 0
        #: Set by ``Feed.revoke``: a detached handle ignores every
        #: further frame, so a revoked member's view never grows.
        self.revoked = False
        self._failure: ReproError | None = None

    def __repr__(self) -> str:
        return (
            f"FeedSubscriberHandle({self.member.name!r}, "
            f"feed={self.feed.name!r}, tier={self.tier!r})"
        )

    # -- broadcast listener ----------------------------------------------

    def on_frame(self, kind: str, index: int, payload: bytes) -> None:
        """Channel callback: route frames to per-document sessions."""
        if self.revoked or self._failure is not None:
            return
        if kind == "header":
            try:
                self._current = self._engage(decode_header(payload).doc_id)
            except ReproError as exc:
                # A key-resolution failure (e.g. a grant withdrawn
                # between cycles) must not unwind the publisher's
                # broadcast loop through the channel callback; it is
                # recorded and surfaced by require_ok().
                self._failure = exc
                self._current = None
                return
        elif self._current is None:
            self.frames_missed += 1
            return
        self._current.on_frame(kind, index, payload)
        if kind == "end":
            self._current = None

    def _engage(self, doc_id: str) -> Subscriber:
        subscriber = self._subscribers.get(doc_id)
        if subscriber is not None:
            return subscriber
        if doc_id not in self._provisioned:
            secret = resolve_doc_secret(
                self.member.community.dsp,
                self.keys,
                self.feed.name,
                self.tier,
                doc_id,
            )
            self.member.terminal.proxy.provision_key(doc_id, secret)
            self._provisioned.add(doc_id)
        stored = self.feed.stored(doc_id)
        subscriber = Subscriber(
            self.member.name,
            self.member.terminal.card,
            stored.rules_version,
            list(stored.rule_records),
            clock=self.member.community.clock,
            view_mode=self._view_mode,
            registry=self.member.community.registry,
            transfer=self._transfer,
            groups=frozenset({self.group}),
        )
        self._subscribers[doc_id] = subscriber
        self._order.append(doc_id)
        return subscriber

    # -- results ----------------------------------------------------------

    @property
    def views(self) -> dict[str, str]:
        """Per-document authorized views, in first-engagement order."""
        return {
            doc_id: self._subscribers[doc_id].view for doc_id in self._order
        }

    @property
    def view(self) -> str:
        """The concatenated authorized view across the tier's documents."""
        return "".join(self.views.values())

    def metrics_for(self, doc_id: str) -> SessionMetrics:
        """The card/link metrics of one document's session."""
        subscriber = self._subscribers.get(doc_id)
        if subscriber is None:
            raise KeyNotGranted(
                f"{self.member.name!r} never engaged document {doc_id!r} "
                f"on feed {self.feed.name!r}",
                doc_id=doc_id,
                subject=self.member.name,
            )
        return subscriber.metrics

    @property
    def docs_complete(self) -> int:
        return sum(
            1 for sub in self._subscribers.values() if sub.state.document_done
        )

    @property
    def ok(self) -> bool:
        return (
            not self.revoked
            and self._failure is None
            and bool(self._subscribers)
            and all(sub.ok for sub in self._subscribers.values())
        )

    def require_ok(self) -> None:
        """Raise the typed error behind any failed document session."""
        if self._failure is not None:
            raise self._failure
        if self.revoked:
            raise KeyNotGranted(
                f"{self.member.name!r} was revoked from tier {self.tier!r} "
                f"of feed {self.feed.name!r}",
                subject=self.member.name,
            )
        if not self._subscribers:
            raise TransportError(
                f"subscriber {self.member.name!r} never saw a header frame "
                f"on feed {self.feed.name!r}",
                subject=self.member.name,
            )
        for subscriber in self._subscribers.values():
            subscriber.require_ok()
