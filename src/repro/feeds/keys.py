"""The tier group-key hierarchy: a tier is ONE wrapped key.

The flat ``Channel`` pays one PKI wrap per (document, member).  A feed
tier pays one PKI wrap per *member* -- once, at join -- and one
symmetric wrap per *document*; broadcast cycles and policy churn pay
zero.  The chain:

.. code-block:: text

    member --(one PKI wrap, at join)--> S_tier    tier master secret
    S_tier --derive("epoch:e")-------> K_e        epoch key
    K_e    --(THE one re-wrapped blob)-> C_tier   tier content key
    C_tier --(one wrap per document)--> k_doc     document secret

Revoking a member deletes that member's ``S_tier`` blob at the DSP,
bumps the epoch ``e -> e+1`` and re-wraps ``C_tier`` under ``K_{e+1}``
-- exactly one wrap regardless of member count and document count
(tests assert this through :func:`repro.crypto.groupkey.wrap_call_count`).
Remaining members derive ``K_{e+1}`` from their ``S_tier`` and keep
reading; the revoked member's next key fetch fails with
:class:`~repro.errors.KeyNotGranted`.

Revocation is *soft*, exactly like the flat model's documented
semantics: a member whose terminal already resolved the tier keys
retains them (the paper's dissociation of rights from encryption --
durable exclusion pairs revocation with a policy update or a tier
re-key).  Be explicit about what the epoch bump does **not** buy:
``C_tier`` itself never rotates, so a revoked member holding a
:class:`ResolvedTierKeys` can unwrap the secrets of documents
published *after* the revocation too -- the bump only closes the DSP
fetch path (``resolve_tier_keys`` fails) for members without cached
keys.  Forward secrecy against a key-retaining member requires
rotating ``C_tier`` (a re-wrap per existing document), which this
hierarchy deliberately trades away to keep revocation at exactly one
wrap.

All feed-level blobs ride the existing ``wrapped_keys`` table, anchored
on a synthetic manifest document (:func:`feed_doc_id`), so no store
protocol or wire-codec change is needed and every topology (in-process,
durable, served) carries them for free.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.groupkey import unwrap_with_kek, wrap_with_kek
from repro.crypto.keys import derive_key, random_key
from repro.crypto.pki import SimulatedPKI
from repro.dsp.client import DSPClient
from repro.errors import KeyNotGranted

#: Synthetic document ids anchoring feed-level state at the DSP.
FEED_DOC_PREFIX = "feed::"


def feed_doc_id(feed: str) -> str:
    """The manifest document id anchoring ``feed``'s key blobs."""
    return f"{FEED_DOC_PREFIX}{feed}"


def tier_prefix(feed: str, tier: str) -> str:
    """The recipient namespace of one tier (also its group subject)."""
    return f"feed:{feed}:{tier}"


def member_recipient(feed: str, tier: str, member: str) -> str:
    """Recipient row holding one member's wrapped ``S_tier``."""
    return f"{tier_prefix(feed, tier)}:member:{member}"


def epoch_recipient(feed: str, tier: str) -> str:
    """Recipient row holding the tier's current epoch number."""
    return f"{tier_prefix(feed, tier)}:epoch"


def grant_recipient(feed: str, tier: str) -> str:
    """Recipient row holding ``C_tier`` wrapped under the epoch key."""
    return f"{tier_prefix(feed, tier)}:grant"


def _epoch_key(master: bytes, feed: str, tier: str, epoch: int) -> bytes:
    return derive_key(master, f"feed:{feed}:{tier}:epoch:{epoch}")


def _member_context(feed: str, tier: str) -> str:
    return f"feed:{feed}:{tier}:member"


@dataclass(slots=True)
class TierKeyring:
    """Owner-side key state of one tier.

    Held only by the publishing process (like a document's secret);
    nothing here is ever persisted -- a reopened community restores
    feeds as *sealed* and readers resolve keys from the DSP blobs.
    """

    feed: str
    tier: str
    master: bytes
    content: bytes
    epoch: int = 1

    @classmethod
    def create(cls, feed: str, tier: str) -> "TierKeyring":
        return cls(feed, tier, master=random_key(), content=random_key())

    def wrap_member(
        self, pki: SimulatedPKI, owner: str, member: str
    ) -> bytes:
        """The one PKI wrap a join costs: ``S_tier`` for ``member``."""
        return pki.wrap_for(
            owner, member, _member_context(self.feed, self.tier), self.master
        )

    def wrap_grant(self) -> bytes:
        """``C_tier`` under the *current* epoch key.

        This is the single blob a revocation re-wraps.
        """
        key = _epoch_key(self.master, self.feed, self.tier, self.epoch)
        context = f"feed:{self.feed}:{self.tier}:grant:{self.epoch}"
        return wrap_with_kek(key, context, self.content)

    def wrap_doc_secret(self, doc_id: str, secret: bytes) -> bytes:
        """One symmetric wrap of a document secret for the whole tier."""
        context = f"feed:{self.feed}:{self.tier}:doc:{doc_id}"
        return wrap_with_kek(self.content, context, secret)

    def bump_epoch(self) -> int:
        """Advance to the next epoch; returns the new epoch number."""
        self.epoch += 1
        return self.epoch

    def epoch_record(self) -> bytes:
        """The (plaintext) epoch number as stored at the DSP.

        The DSP already learns tier membership from recipient names;
        the epoch ordinal reveals nothing beyond 'a revocation
        happened', which key-row deletion reveals anyway.
        """
        return struct.pack(">Q", self.epoch)


def decode_epoch(record: bytes) -> int:
    """Invert :meth:`TierKeyring.epoch_record`."""
    (epoch,) = struct.unpack(">Q", record)
    return int(epoch)


@dataclass(frozen=True, slots=True)
class ResolvedTierKeys:
    """What a reader derives from the DSP's tier blobs."""

    epoch: int
    content: bytes


def resolve_tier_keys(
    dsp: DSPClient,
    pki: SimulatedPKI,
    feed: str,
    tier: str,
    owner: str,
    member: str,
) -> ResolvedTierKeys:
    """Reader-side walk down the hierarchy: blobs -> ``C_tier``.

    Three fixed-size DSP reads (member blob, epoch record, grant blob)
    and zero asymmetric operations beyond the one cached pairwise KEK
    -- the cost does not grow with membership, documents or cycles.
    Raises :class:`~repro.errors.KeyNotGranted` when the member's blob
    is absent (never joined, or revoked).
    """
    anchor = feed_doc_id(feed)
    wrapped_master = dsp.get_wrapped_key(
        anchor, member_recipient(feed, tier, member)
    )
    master = pki.unwrap_from(
        member, owner, _member_context(feed, tier), wrapped_master
    )
    epoch = decode_epoch(dsp.get_wrapped_key(anchor, epoch_recipient(feed, tier)))
    grant = dsp.get_wrapped_key(anchor, grant_recipient(feed, tier))
    key = _epoch_key(master, feed, tier, epoch)
    content = unwrap_with_kek(
        key, f"feed:{feed}:{tier}:grant:{epoch}", grant
    )
    return ResolvedTierKeys(epoch=epoch, content=content)


def resolve_doc_secret(
    dsp: DSPClient,
    keys: ResolvedTierKeys,
    feed: str,
    tier: str,
    doc_id: str,
) -> bytes:
    """Unwrap one feed document's secret with the tier content key."""
    try:
        wrapped = dsp.get_wrapped_key(doc_id, tier_prefix(feed, tier))
    except KeyNotGranted as exc:
        raise KeyNotGranted(
            f"document {doc_id!r} carries no grant for tier "
            f"{tier!r} of feed {feed!r}",
            doc_id=doc_id,
            subject=tier_prefix(feed, tier),
        ) from exc
    return unwrap_with_kek(
        keys.content, f"feed:{feed}:{tier}:doc:{doc_id}", wrapped
    )
