"""Tier templates: frozen rule sets a feed stamps onto every item.

A :class:`TierSpec` is the feed-level analogue of a CTI exporter's
per-partner policy file: what the tier may see (``allow``), what it
must never see (``deny``), which elements are sanitized away before
they ever reach a tier member (``drop``), and how many documents one
carousel cycle may carry (``quota``).

The spec compiles to ordinary ``<sign, subject, object>`` rules whose
subject is the tier's *group* (``feed:{feed}:{tier}``).  Every member
of a tier therefore shares one effective sub-policy: the compiled-
policy registry fingerprints them identically, the automata compile
once per tier, and the head-end preview needs one evaluation lane per
tier regardless of how many members subscribed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.rules import AccessRule, RuleSet
from repro.errors import PolicyError


def _as_tuple(value: "Iterable[str] | str") -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass(frozen=True, slots=True)
class TierSpec:
    """One named tier of a feed, as a frozen rule template.

    ``allow``/``deny`` are XPath expressions (``XP{[],*,//}``) granted
    or prohibited to the whole tier; ``drop`` entries are sanitization
    filters -- a bare tag name ``t`` compiles to a deny on ``//t``, an
    absolute path is used verbatim -- applied through the same card-
    enforced policy as everything else (sanitization *is* policy, not
    a bolt-on text pass).  ``quota`` caps how many feed documents one
    carousel cycle broadcasts to this tier (``None`` = unlimited).
    """

    name: str
    allow: tuple[str, ...] = ()
    deny: tuple[str, ...] = ()
    drop: tuple[str, ...] = ()
    quota: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "allow", _as_tuple(self.allow))
        object.__setattr__(self, "deny", _as_tuple(self.deny))
        object.__setattr__(self, "drop", _as_tuple(self.drop))
        if not self.name or ":" in self.name:
            raise PolicyError(
                f"tier name {self.name!r} must be non-empty and contain "
                "no ':' (it becomes part of the tier's group subject)"
            )
        if self.quota is not None and self.quota < 1:
            raise PolicyError(
                f"tier {self.name!r}: quota must be at least 1 document "
                "per cycle (None for unlimited)"
            )

    def group(self, feed: str) -> str:
        """The group subject every member of this tier carries."""
        return f"feed:{feed}:{self.name}"

    def rules_for(self, feed: str) -> list[AccessRule]:
        """This tier's rules, with deterministic feed-scoped ids.

        Ids are ``F:{feed}:{tier}:{n}`` so composing several tiers into
        one document policy never collides, and republishing yields the
        same ids (stable fingerprints, stable compiled-policy cache
        keys).
        """
        group = self.group(feed)
        rules: list[AccessRule] = []
        for xpath in self.allow:
            rules.append(
                AccessRule.parse(
                    "+", group, xpath, rule_id=f"F:{feed}:{self.name}:{len(rules)}"
                )
            )
        for xpath in self.deny:
            rules.append(
                AccessRule.parse(
                    "-", group, xpath, rule_id=f"F:{feed}:{self.name}:{len(rules)}"
                )
            )
        for entry in self.drop:
            xpath = entry if entry.startswith("/") else f"//{entry}"
            rules.append(
                AccessRule.parse(
                    "-", group, xpath, rule_id=f"F:{feed}:{self.name}:{len(rules)}"
                )
            )
        return rules


def compose_rules(feed: str, tiers: Sequence[TierSpec]) -> RuleSet:
    """The one document policy carrying every tier's template.

    Tier order is the declaration order, so the composed policy -- and
    therefore its fingerprint and every tier's effective sub-policy --
    is deterministic across republishes and process restarts.
    """
    names = [tier.name for tier in tiers]
    if len(set(names)) != len(names):
        raise PolicyError(f"feed {feed!r}: duplicate tier names in {names}")
    rules: list[AccessRule] = []
    for tier in tiers:
        rules.extend(tier.rules_for(feed))
    return RuleSet(rules)
