"""Tiered feeds: group-keyed dissemination that stays flat at scale.

A :class:`Feed` sits above the per-document ``Channel``/``Carousel``
layer: the publisher declares named **tiers** (public / partner /
internal) as frozen rule templates (:class:`TierSpec`), members
subscribe to a tier, and each tier is backed by a group-key hierarchy
(:mod:`repro.feeds.keys`) so a tier costs ONE wrapped key -- a
per-member wrap happens only at join, and revoking a member from a
tier is one re-wrap plus an epoch bump, never N re-grants.

Broadcast cost per carousel cycle is therefore O(tiers), not
O(members), and the head-end previews the whole audience in one
multi-subject pass (one evaluation lane per tier, since every member
of a tier shares the tier's group subject).

Late joiners catch up from a persisted carousel snapshot
(:mod:`repro.feeds.snapshot`, stored by ``SQLiteBackend``), validated
against the store's generation counter and the tier epoch so a
republish or a tier revocation can never serve a stale cycle.
"""

from __future__ import annotations

from repro.feeds.feed import Feed
from repro.feeds.keys import TierKeyring, feed_doc_id
from repro.feeds.snapshot import CycleSnapshot, decode_snapshot, encode_snapshot
from repro.feeds.subscriber import FeedSubscriberHandle
from repro.feeds.tiers import TierSpec, compose_rules

__all__ = [
    "CycleSnapshot",
    "Feed",
    "FeedSubscriberHandle",
    "TierKeyring",
    "TierSpec",
    "compose_rules",
    "decode_snapshot",
    "encode_snapshot",
    "feed_doc_id",
]
