"""Persisted carousel cycles for late-joiner catch-up.

A :class:`CycleSnapshot` is one tier's complete broadcast cycle -- the
exact ``(kind, index, payload)`` frames the channel carried -- plus the
stamps needed to prove it is still current: the tier epoch, the store
generation (and the store's per-process boot id) observed when it was
recorded, and each document's (container version, rules version) pair.

Validity follows the PR-5 invalidation contract: if the snapshot was
recorded by *this* process's store (boot ids match) and the store's
generation still equals the stamp, *nothing* at the DSP changed and
the snapshot is fresh with zero further reads.  The generation counter
restarts at 0 in every process, so the boot id is what keeps a
reopened process from trusting a coincidentally-equal counter; without
a boot match the stamps are re-checked piecewise -- a republish moves a container version, a
policy update moves a rules version, a tier revocation moves the epoch
-- and any mismatch makes the snapshot stale.  A live feed re-records
a stale snapshot from the store; a sealed (reopened) feed reports it,
so a late joiner can never be served a cycle from before a revocation
or republish.

Everything in a snapshot is ciphertext the broadcast channel already
carried in public; persisting it at the untrusted DSP leaks nothing
new.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import TamperDetected

_MAGIC = b"FSNAP2\n"
_KINDS = ("header", "chunk", "end")


@dataclass(frozen=True, slots=True)
class CycleSnapshot:
    """One recorded carousel cycle of one feed tier."""

    feed: str
    tier: str
    epoch: int
    generation: int
    #: The recording store's per-process boot id
    #: (:attr:`repro.dsp.store.DSPStore.boot`); the generation stamp is
    #: only meaningful against the same boot.
    boot: str
    #: ``(doc_id, container_version, rules_version)`` per document, in
    #: broadcast order.
    docs: tuple[tuple[str, int, int], ...]
    #: The cycle's frames, exactly as broadcast.
    frames: tuple[tuple[str, int, bytes], ...]


def encode_snapshot(snapshot: CycleSnapshot) -> bytes:
    """Serialize a snapshot to the backend's blob format."""
    parts: list[bytes] = [_MAGIC]
    for label in (snapshot.feed, snapshot.tier, snapshot.boot):
        raw = label.encode("utf-8")
        parts.append(struct.pack(">H", len(raw)) + raw)
    parts.append(struct.pack(">QQ", snapshot.epoch, snapshot.generation))
    parts.append(struct.pack(">H", len(snapshot.docs)))
    for doc_id, version, rules_version in snapshot.docs:
        raw = doc_id.encode("utf-8")
        parts.append(struct.pack(">H", len(raw)) + raw)
        parts.append(struct.pack(">QQ", version, rules_version))
    parts.append(struct.pack(">I", len(snapshot.frames)))
    for kind, index, payload in snapshot.frames:
        parts.append(
            struct.pack(">BII", _KINDS.index(kind), index, len(payload))
        )
        parts.append(payload)
    return b"".join(parts)


class _Reader:
    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise TamperDetected(
                "feed snapshot blob is truncated "
                f"(needed {end} bytes, have {len(self.data)})"
            )
        value = self.data[self.offset:end]
        self.offset = end
        return value

    def unpack(self, fmt: str) -> tuple[int, ...]:
        raw = self.take(struct.calcsize(fmt))
        return struct.unpack(fmt, raw)

    def label(self) -> str:
        (length,) = self.unpack(">H")
        return self.take(length).decode("utf-8")


def decode_snapshot(blob: bytes) -> CycleSnapshot:
    """Parse a backend blob; :class:`TamperDetected` on malformation.

    The snapshot lives at the untrusted DSP, so a malformed blob is
    treated exactly like any other tampered artifact -- a typed error,
    never an ``IndexError`` escaping from parsing.
    """
    reader = _Reader(blob)
    if reader.take(len(_MAGIC)) != _MAGIC:
        raise TamperDetected("feed snapshot blob has a bad magic prefix")
    feed = reader.label()
    tier = reader.label()
    boot = reader.label()
    epoch, generation = reader.unpack(">QQ")
    (doc_count,) = reader.unpack(">H")
    docs: list[tuple[str, int, int]] = []
    for _ in range(doc_count):
        doc_id = reader.label()
        version, rules_version = reader.unpack(">QQ")
        docs.append((doc_id, version, rules_version))
    (frame_count,) = reader.unpack(">I")
    frames: list[tuple[str, int, bytes]] = []
    for _ in range(frame_count):
        kind_code, index, length = reader.unpack(">BII")
        if kind_code >= len(_KINDS):
            raise TamperDetected(
                f"feed snapshot frame has unknown kind code {kind_code}"
            )
        frames.append((_KINDS[kind_code], index, bytes(reader.take(length))))
    if reader.offset != len(blob):
        raise TamperDetected(
            f"feed snapshot blob carries {len(blob) - reader.offset} "
            "trailing bytes"
        )
    return CycleSnapshot(
        feed=feed,
        tier=tier,
        epoch=epoch,
        generation=generation,
        boot=boot,
        docs=tuple(docs),
        frames=tuple(frames),
    )
