"""The library-wide error taxonomy.

Every failure a caller can meaningfully react to derives from
:class:`ReproError`, so application code written against the
:mod:`repro.community` facade needs exactly one ``except`` ladder:

.. code-block:: text

    ReproError
    ├── AccessDenied          the policy said no
    │   └── KeyNotGranted     no wrapped key / principal not enrolled
    ├── DocumentLocked        document secret absent from the card
    ├── TamperDetected        integrity, authentication or replay failure
    ├── PolicyError           bad or unknown policy / document state
    │   └── UnknownDocument   document id the store has never seen
    ├── TransportError        the session transport failed mid-flight
    └── ResourceExhausted     a secure-RAM or quota limit was hit

Layer-specific exceptions keep their historical names but now inherit
from these types (often *alongside* the builtin they used to be, e.g.
:class:`KeyNotGranted` is still a :class:`KeyError`), so existing
``except`` clauses keep working while new code catches the taxonomy.

Errors carry optional ``doc_id`` and ``subject`` attributes so a
handler can report *which* document or principal failed without
parsing the message.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AccessDenied",
    "CapacityReport",
    "DocumentLocked",
    "KeyNotGranted",
    "PolicyError",
    "ReproError",
    "ResourceExhausted",
    "TamperDetected",
    "TransportError",
    "UnknownDocument",
]


class ReproError(Exception):
    """Base class of every library-originated failure.

    ``doc_id`` and ``subject`` identify the document and principal the
    failure concerns, when the raising layer knows them.
    """

    def __init__(
        self,
        message: str,
        *,
        doc_id: str | None = None,
        subject: str | None = None,
    ) -> None:
        super().__init__(message)
        self.doc_id = doc_id
        self.subject = subject


class AccessDenied(ReproError):
    """The access-control policy refused the requested operation."""


class KeyNotGranted(AccessDenied, KeyError):
    """No key material was ever granted for this (document, principal).

    Raised when the DSP holds no wrapped key for a recipient, when a
    principal is not enrolled in the PKI, or when a key ring has no
    entry for a document.  Still a :class:`KeyError` for compatibility
    with callers of the original dict-backed lookups.

    ``str()`` renders the message (not :class:`KeyError`'s ``repr`` of
    the missing key), so handlers can show it to users directly.
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class DocumentLocked(ReproError):
    """The document secret is not present on the card for this session.

    The terminal never unlocked the document (or the key was revoked),
    so no session can be run until ``unlock``/``open`` succeeds.
    """


class TamperDetected(ReproError):
    """Cryptographic evidence of tampering, forgery or replay."""


class PolicyError(ReproError):
    """A policy or document-state precondition does not hold."""


class UnknownDocument(PolicyError, KeyError):
    """A document id the store has never seen.

    Still a :class:`KeyError` because the store historically was a bare
    dictionary and callers probe it with ``except KeyError``.
    """

    def __str__(self) -> str:
        return str(self.args[0]) if self.args else ""


class TransportError(ReproError):
    """The DSP/terminal/card transport failed mid-session."""


@dataclass(frozen=True, slots=True)
class CapacityReport:
    """Which capacity limit a server hit, and where it stood.

    The 429-style contract of the DSP's admission control: a rejected
    request names the exhausted dimension (``scope``), the configured
    ceiling (``limit``) and the load at rejection time (``current``),
    so a well-behaved client can back off instead of retrying blind.
    Scopes the reactor server emits: ``"connections"``,
    ``"client-inflight"``, ``"client-backlog"``, ``"server-inflight"``.
    """

    scope: str
    limit: int
    current: int


class ResourceExhausted(ReproError):
    """A modeled resource limit (secure RAM, quota) was exceeded.

    When the limit is a *serving capacity* (the DSP's admission
    control rather than the card's secure RAM), ``capacity`` carries
    the :class:`CapacityReport` describing which ceiling was hit; it
    survives the wire codec intact.
    """

    def __init__(
        self,
        message: str,
        *,
        doc_id: str | None = None,
        subject: str | None = None,
        capacity: CapacityReport | None = None,
    ) -> None:
        super().__init__(message, doc_id=doc_id, subject=subject)
        self.capacity = capacity
