"""Adversarial DSP behaviours for the security evaluation (E9).

Each function returns a *tampered copy* of a container, modelling what
a compromised store or channel could attempt.  Section 2.1: "the only
way to mislead the access control rule evaluator is to tamper the
input document, for example by substituting or modifying encrypted
blocks" -- the tests assert that the card detects every one of these.
"""

from __future__ import annotations

from dataclasses import replace

from repro.crypto.container import DocumentContainer
from repro.dsp.store import DSPStore


def install(store: DSPStore, container: DocumentContainer) -> None:
    """Substitute a (tampered) container under its stored document id.

    A compromised store swaps ciphertext while leaving the sealed rule
    records and wrapped keys exactly as they were -- so the overwrite
    explicitly *keeps* both, the attack the honest
    ``put_document`` default (clear on overwrite) would otherwise
    erase along with the evidence.
    """
    store.put_document(container, keep_rules=True, keep_keys=True)


def corrupt_chunk(container: DocumentContainer, index: int, bit: int = 0) -> DocumentContainer:
    """Flip one bit inside an encrypted chunk (modification attack)."""
    chunks = list(container.chunks)
    blob = bytearray(chunks[index])
    blob[bit // 8] ^= 1 << (bit % 8)
    chunks[index] = bytes(blob)
    return replace(container, chunks=tuple(chunks))


def swap_chunks(container: DocumentContainer, a: int, b: int) -> DocumentContainer:
    """Reorder two chunks (splicing attack)."""
    chunks = list(container.chunks)
    chunks[a], chunks[b] = chunks[b], chunks[a]
    return replace(container, chunks=tuple(chunks))


def substitute_chunk(
    container: DocumentContainer,
    index: int,
    other: DocumentContainer,
    other_index: int,
) -> DocumentContainer:
    """Replace a chunk with one from another document (substitution)."""
    chunks = list(container.chunks)
    chunks[index] = other.chunks[other_index]
    return replace(container, chunks=tuple(chunks))


def truncate(container: DocumentContainer, keep: int) -> DocumentContainer:
    """Drop the tail of the document, adjusting the claimed count.

    The header MAC covers the chunk count, so the card must reject the
    forged header; the structural end-of-document check catches naive
    truncation that keeps the original header.
    """
    header = replace(container.header, chunk_count=keep)
    return DocumentContainer(header=header, chunks=container.chunks[:keep])


def truncate_keeping_header(container: DocumentContainer, keep: int) -> DocumentContainer:
    """Drop the tail but present the original (valid) header."""
    return DocumentContainer(
        header=container.header, chunks=container.chunks[:keep]
    )


def replay(old: DocumentContainer) -> DocumentContainer:
    """Serve a stale but internally consistent version (replay attack).

    Detection relies on the card's monotonic version register, not on
    any MAC -- the old container is cryptographically valid.
    """
    return old
