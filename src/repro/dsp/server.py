"""The DSP's network front: ranged chunk service with cost accounting."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.core.multicast import multicast_view_texts
from repro.core.rules import RuleSet, Sign, Subject
from repro.crypto.container import DocumentHeader
from repro.dsp.store import DSPStore
from repro.dsp.wire import DocMeta
from repro.errors import KeyNotGranted
from repro.smartcard.card import encode_header
from repro.smartcard.resources import NetworkModel, SimClock
from repro.xmlstream.events import Event

# -- pure reads --------------------------------------------------------------
#
# The serving logic itself, free of accounting: DSPServer wraps these
# with its SimClock/counter charges for the simulated deployments, the
# reactor server (repro.dsp.reactor) serves them straight -- real
# traffic is measured in wall time, not simulated network seconds.


def fetch_header(store: DSPStore, doc_id: str) -> DocumentHeader:
    return store.get(doc_id).container.header


def fetch_chunk(store: DSPStore, doc_id: str, index: int) -> bytes:
    return store.get(doc_id).container.chunks[index]


def fetch_chunk_range(
    store: DSPStore, doc_id: str, start: int, count: int
) -> list[bytes]:
    """``count`` consecutive chunks, clipped to the document.

    Callers may over-ask near the end; asking entirely past the last
    chunk is still an ``IndexError``, and a degenerate range a
    ``ValueError`` -- the typed errors the wire codec carries.
    """
    if count < 1:
        raise ValueError("chunk range must cover at least one chunk")
    chunks = store.get(doc_id).container.chunks
    if not 0 <= start < len(chunks):
        raise IndexError(f"chunk range starts out of bounds: {start}")
    return list(chunks[start:start + count])


def fetch_rules(store: DSPStore, doc_id: str) -> tuple[int, list[bytes]]:
    stored = store.get(doc_id)
    return stored.rules_version, list(stored.rule_records)


def fetch_meta(store: DSPStore, doc_id: str, subject: str) -> DocMeta:
    """The cache-freshness probe: version vector plus grant bit.

    One tiny frame instead of a full header pull: the document and
    rules versions (the per-document validators), the store-wide
    ``(generation, boot)`` stamp, and whether ``subject``'s wrapped key
    is still present -- key-level revocation bumps neither version, so
    the grant bit is the only cheap way a cache can notice it.
    """
    stored = store.get(doc_id)
    return DocMeta(
        doc_version=stored.container.header.version,
        rules_version=stored.rules_version,
        generation=store.generation,
        boot=store.boot,
        has_key=subject in stored.wrapped_keys,
    )


def fetch_wrapped_key(store: DSPStore, doc_id: str, recipient: str) -> bytes:
    blob = store.get(doc_id).wrapped_keys.get(recipient)
    if blob is None:
        raise KeyNotGranted(
            f"document {doc_id!r} has no key wrapped for "
            f"recipient {recipient!r}",
            doc_id=doc_id,
            subject=recipient,
        )
    return blob


class DSPServer:
    """Serves encrypted headers, chunks, rules and wrapped keys.

    Every response is charged to the shared clock's ``network``
    component and counted in ``bytes_served`` -- benchmark E2 reads the
    transfer saving of the skip index from here.  The per-request
    overhead is charged once per *request*, so the ranged chunk API
    (:meth:`get_chunk_range`) amortizes it across a whole window;
    ``requests``/``served_ranges`` let benchmarks read round-trip
    counts directly (E13).
    """

    def __init__(
        self,
        store: DSPStore | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.store = store or DSPStore()
        self.network = network or NetworkModel()
        self.clock = clock or SimClock()
        self.bytes_served = 0
        self.requests = 0
        self.chunks_served = 0
        #: Every chunk request as ``(doc_id, start, count)`` -- single
        #: chunk fetches appear as ranges of count 1.
        self.served_ranges: list[tuple[str, int, int]] = []

    def _charge(self, nbytes: int) -> None:
        self.bytes_served += nbytes
        self.requests += 1
        self.clock.add("network", self.network.request_overhead_seconds)
        self.clock.add("network", self.network.transfer_seconds(nbytes))

    # -- document service ------------------------------------------------

    def get_header(self, doc_id: str) -> DocumentHeader:
        header = fetch_header(self.store, doc_id)
        self._charge(len(encode_header(header)))
        return header

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        blob = fetch_chunk(self.store, doc_id, index)
        self._charge(len(blob))
        self.chunks_served += 1
        self.served_ranges.append((doc_id, index, 1))
        return blob

    def get_chunk_range(
        self, doc_id: str, start: int, count: int
    ) -> list[bytes]:
        """Serve ``count`` consecutive chunks as ONE request.

        The request overhead is charged once for the whole range --
        that is the DSP half of the E13 batching win.  The range is
        clipped to the document, so callers may over-ask near the end;
        asking entirely past the last chunk is still an error.
        """
        blobs = fetch_chunk_range(self.store, doc_id, start, count)
        self._charge(sum(len(blob) for blob in blobs))
        self.chunks_served += len(blobs)
        self.served_ranges.append((doc_id, start, len(blobs)))
        return blobs

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        version, records = fetch_rules(self.store, doc_id)
        self._charge(sum(len(r) for r in records))
        return version, records

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        blob = fetch_wrapped_key(self.store, doc_id, recipient)
        self._charge(len(blob))
        return blob

    def get_meta(self, doc_id: str, subject: str) -> DocMeta:
        meta = fetch_meta(self.store, doc_id, subject)
        self._charge(meta.wire_size)
        return meta


class TrustedFilterService:
    """The *trusted-server* reference point (E6) at multicast scale.

    The paper's threat model rules this architecture out -- a DSP must
    never see plaintext -- but the latency-floor comparison of E6 keeps
    it around.  This service extends that baseline to dissemination:
    given the plaintext events and the policy, it computes the
    authorized views of N subscribers in ONE parse pass
    (:func:`~repro.core.multicast.multicast_views`) and charges each
    view's transfer to the owning :class:`DSPServer`'s network clock.

    A per-service :class:`~repro.core.compiled.PolicyRegistry` caches
    the compiled policies, so repeated broadcasts of new documents
    under an unchanged policy compile nothing.
    """

    def __init__(
        self,
        server: DSPServer,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.server = server
        self.registry = registry if registry is not None else PolicyRegistry()

    def multicast(
        self,
        events: Iterable[Event],
        rules: RuleSet,
        subjects: Sequence[Subject | str],
        default: Sign = Sign.DENY,
        mode: ViewMode = ViewMode.SKELETON,
    ) -> dict[str, str]:
        """Per-subject views of one document, one parse pass for all."""
        rendered = multicast_view_texts(
            events,
            rules,
            subjects,
            default=default,
            mode=mode,
            registry=self.registry,
        )
        for text in rendered.values():
            self.server._charge(len(text.encode("utf-8")))
        return rendered

    def invalidate_policy(self, rules: RuleSet) -> int:
        """Evict a superseded policy generation from the view cache."""
        return self.registry.invalidate(rules)
