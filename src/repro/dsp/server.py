"""The DSP's network front: ranged chunk service with cost accounting."""

from __future__ import annotations

from repro.crypto.container import DocumentHeader
from repro.dsp.store import DSPStore
from repro.smartcard.resources import NetworkModel, SimClock


class DSPServer:
    """Serves encrypted headers, chunks, rules and wrapped keys.

    Every response is charged to the shared clock's ``network``
    component and counted in ``bytes_served`` -- benchmark E2 reads the
    transfer saving of the skip index from here.
    """

    def __init__(
        self,
        store: DSPStore | None = None,
        network: NetworkModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.store = store or DSPStore()
        self.network = network or NetworkModel()
        self.clock = clock or SimClock()
        self.bytes_served = 0
        self.requests = 0

    def _charge(self, nbytes: int) -> None:
        self.bytes_served += nbytes
        self.requests += 1
        self.clock.add("network", self.network.request_overhead_seconds)
        self.clock.add("network", self.network.transfer_seconds(nbytes))

    # -- document service ------------------------------------------------

    def get_header(self, doc_id: str) -> DocumentHeader:
        header = self.store.get(doc_id).container.header
        self._charge(64)  # serialized header is small and near-constant
        return header

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        blob = self.store.get(doc_id).container.chunks[index]
        self._charge(len(blob))
        return blob

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        stored = self.store.get(doc_id)
        self._charge(sum(len(r) for r in stored.rule_records))
        return stored.rules_version, list(stored.rule_records)

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        blob = self.store.get(doc_id).wrapped_keys[recipient]
        self._charge(len(blob))
        return blob
