"""Storage backends behind the DSP's store.

The paper's DSP is an *untrusted, remote* third party; its disk is
therefore a seam, not an implementation detail.  :class:`StoreBackend`
is that seam: everything the DSP persists for a document -- the sealed
container, the sealed rule records with their version, and the wrapped
keys -- behind put/get operations the front
(:class:`~repro.dsp.store.DSPStore`) delegates to.

Two implementations ship:

* :class:`MemoryBackend` -- today's in-process dictionary, byte for
  byte the historical behavior (``get`` returns the *live* record, so
  in-place tamper injection keeps working);
* :class:`SQLiteBackend` -- a durable store (WAL journal, versioned
  schema) so a community survives process restarts: every document,
  rule version and wrapped key can be reopened intact from the file.

Republish semantics are explicit on this API: overwriting a container
**clears** the prior seal's rule records and wrapped keys unless the
caller opts into keeping them (``keep_rules`` / ``keep_keys``).  A
publisher re-sealing a document under the same secret passes
``keep_keys=True`` (the grants stay valid); a tamper injector
substituting ciphertext passes both (it wants the rest of the stored
state untouched).  Nothing is ever kept silently.
"""

from __future__ import annotations

import sqlite3
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, Sequence

from repro.crypto.container import DocumentContainer, DocumentHeader
from repro.errors import PolicyError, UnknownDocument

#: Bump when the SQLite layout changes; stored in the ``meta`` table so
#: a reopen against a newer/older file fails loudly instead of
#: misreading rows.
SCHEMA_VERSION = 1


@dataclass(slots=True)
class StoredDocument:
    """Everything the DSP holds for one document id.

    ``rule_records`` are individually sealed rule blobs (the card
    decrypts them one at a time); ``wrapped_keys`` maps recipients to
    the document secret wrapped for them -- opaque to the DSP.
    """

    container: DocumentContainer
    rule_records: list[bytes] = field(default_factory=list)
    rules_version: int = 0
    wrapped_keys: dict[str, bytes] = field(default_factory=dict)


class StoreBackend(Protocol):
    """What a DSP disk must provide (documents, rules, wrapped keys).

    Implementations must be safe to call from several threads -- the
    socket server in :mod:`repro.dsp.remote` dispatches one thread per
    connection.  ``get`` raises
    :class:`~repro.errors.UnknownDocument` for ids the store has never
    seen; whether the returned record is live (memory) or an assembled
    snapshot (SQLite) is backend-defined, so all mutation must go
    through the ``put_*``/``remove_*`` operations.
    """

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        """Store (or overwrite) a sealed container.

        Overwriting clears the prior seal's rule records and wrapped
        keys unless ``keep_rules``/``keep_keys`` explicitly retain
        them -- stale policy or grants never survive silently.
        """
        ...

    def get(self, doc_id: str) -> StoredDocument:
        """The stored record; raises ``UnknownDocument`` if absent."""
        ...

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        """Replace the document's sealed rule records wholesale."""
        ...

    def put_wrapped_key(
        self, doc_id: str, recipient: str, blob: bytes
    ) -> None:
        """Store the document secret wrapped for one recipient."""
        ...

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        """Drop a recipient's wrapped key; returns whether one existed."""
        ...

    def document_ids(self) -> list[str]:
        """Every stored document id, sorted."""
        ...

    def contains(self, doc_id: str) -> bool:
        """Whether the store holds this document id."""
        ...

    def close(self) -> None:
        """Release any durable resources (idempotent)."""
        ...


class MemoryBackend:
    """The historical dict-backed disk: volatile, zero-copy, live.

    ``get`` returns the live :class:`StoredDocument`, exactly as the
    pre-backend ``DSPStore`` did -- identity checks and in-place tamper
    injection on the container keep their historical behavior, and the
    in-process hot path adds no copy.
    """

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        doc_id = container.header.doc_id
        existing = self._documents.get(doc_id)
        if existing is None:
            self._documents[doc_id] = StoredDocument(container)
            return
        existing.container = container
        if not keep_rules:
            existing.rule_records = []
            existing.rules_version = 0
        if not keep_keys:
            existing.wrapped_keys = {}

    def get(self, doc_id: str) -> StoredDocument:
        stored = self._documents.get(doc_id)
        if stored is None:
            raise UnknownDocument(
                f"the store holds no document {doc_id!r}", doc_id=doc_id
            )
        return stored

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        stored = self.get(doc_id)
        stored.rule_records = list(records)
        stored.rules_version = version

    def put_wrapped_key(
        self, doc_id: str, recipient: str, blob: bytes
    ) -> None:
        self.get(doc_id).wrapped_keys[recipient] = blob

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        return self.get(doc_id).wrapped_keys.pop(recipient, None) is not None

    def document_ids(self) -> list[str]:
        return sorted(self._documents)

    def contains(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def close(self) -> None:  # nothing durable to release
        return None


_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS documents (
    doc_id TEXT PRIMARY KEY,
    version INTEGER NOT NULL,
    chunk_size INTEGER NOT NULL,
    chunk_count INTEGER NOT NULL,
    total_length INTEGER NOT NULL,
    tag_length INTEGER NOT NULL,
    tag BLOB NOT NULL,
    rules_version INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS chunks (
    doc_id TEXT NOT NULL,
    idx INTEGER NOT NULL,
    blob BLOB NOT NULL,
    PRIMARY KEY (doc_id, idx)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rule_records (
    doc_id TEXT NOT NULL,
    idx INTEGER NOT NULL,
    record BLOB NOT NULL,
    PRIMARY KEY (doc_id, idx)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS wrapped_keys (
    doc_id TEXT NOT NULL,
    recipient TEXT NOT NULL,
    blob BLOB NOT NULL,
    PRIMARY KEY (doc_id, recipient)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS feed_snapshots (
    feed TEXT NOT NULL,
    tier TEXT NOT NULL,
    epoch INTEGER NOT NULL,
    blob BLOB NOT NULL,
    PRIMARY KEY (feed, tier)
) WITHOUT ROWID;
"""


class SQLiteBackend:
    """A durable DSP disk in one SQLite file (WAL mode).

    Every write commits before returning, so a process crash after any
    ``put_*`` loses nothing already acknowledged; reopening the path in
    a fresh process sees every document, rule version and wrapped key
    intact.  All access is serialized on an internal lock, making one
    backend instance safe under the threaded socket server.

    Reads assemble a :class:`StoredDocument` snapshot per document and
    cache it until the next write to that id, so a pull session's
    per-chunk ``get`` calls do not re-read the file.

    Beyond the :class:`StoreBackend` surface the backend offers a tiny
    ``meta`` key/value table (:meth:`put_meta`/:meth:`get_meta`).  The
    community facade keeps its deployment manifest there -- member and
    owner names, which the DSP already learns from wrapped-key
    recipients and uploads, so nothing confidential is added.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._cache: dict[str, StoredDocument] = {}
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise PolicyError(
                    f"store file {self.path} has schema version {row[0]}, "
                    f"this build reads version {SCHEMA_VERSION}"
                )

    # -- StoreBackend ----------------------------------------------------

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        header = container.header
        doc_id = header.doc_id
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT rules_version FROM documents WHERE doc_id = ?",
                (doc_id,),
            ).fetchone()
            rules_version = int(row[0]) if row is not None and keep_rules else 0
            self._conn.execute(
                "INSERT OR REPLACE INTO documents "
                "(doc_id, version, chunk_size, chunk_count, total_length, "
                " tag_length, tag, rules_version) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    doc_id,
                    header.version,
                    header.chunk_size,
                    header.chunk_count,
                    header.total_length,
                    header.tag_length,
                    header.tag,
                    rules_version,
                ),
            )
            self._conn.execute(
                "DELETE FROM chunks WHERE doc_id = ?", (doc_id,)
            )
            self._conn.executemany(
                "INSERT INTO chunks (doc_id, idx, blob) VALUES (?, ?, ?)",
                [
                    (doc_id, index, blob)
                    for index, blob in enumerate(container.chunks)
                ],
            )
            if not keep_rules:
                self._conn.execute(
                    "DELETE FROM rule_records WHERE doc_id = ?", (doc_id,)
                )
            if not keep_keys:
                self._conn.execute(
                    "DELETE FROM wrapped_keys WHERE doc_id = ?", (doc_id,)
                )
            self._cache.pop(doc_id, None)

    def get(self, doc_id: str) -> StoredDocument:
        with self._lock:
            cached = self._cache.get(doc_id)
            if cached is not None:
                return cached
            row = self._conn.execute(
                "SELECT version, chunk_size, chunk_count, total_length, "
                "tag_length, tag, rules_version "
                "FROM documents WHERE doc_id = ?",
                (doc_id,),
            ).fetchone()
            if row is None:
                raise UnknownDocument(
                    f"the store holds no document {doc_id!r}", doc_id=doc_id
                )
            header = DocumentHeader(
                doc_id=doc_id,
                version=int(row[0]),
                chunk_size=int(row[1]),
                chunk_count=int(row[2]),
                total_length=int(row[3]),
                tag_length=int(row[4]),
                tag=bytes(row[5]),
            )
            chunks = tuple(
                bytes(blob)
                for (blob,) in self._conn.execute(
                    "SELECT blob FROM chunks WHERE doc_id = ? ORDER BY idx",
                    (doc_id,),
                )
            )
            records = [
                bytes(record)
                for (record,) in self._conn.execute(
                    "SELECT record FROM rule_records "
                    "WHERE doc_id = ? ORDER BY idx",
                    (doc_id,),
                )
            ]
            wrapped = {
                str(recipient): bytes(blob)
                for recipient, blob in self._conn.execute(
                    "SELECT recipient, blob FROM wrapped_keys "
                    "WHERE doc_id = ?",
                    (doc_id,),
                )
            }
            stored = StoredDocument(
                container=DocumentContainer(header=header, chunks=chunks),
                rule_records=records,
                rules_version=int(row[6]),
                wrapped_keys=wrapped,
            )
            self._cache[doc_id] = stored
            return stored

    def _require_document(self, doc_id: str) -> None:
        row = self._conn.execute(
            "SELECT 1 FROM documents WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if row is None:
            raise UnknownDocument(
                f"the store holds no document {doc_id!r}", doc_id=doc_id
            )

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        with self._lock, self._conn:
            self._require_document(doc_id)
            self._conn.execute(
                "DELETE FROM rule_records WHERE doc_id = ?", (doc_id,)
            )
            self._conn.executemany(
                "INSERT INTO rule_records (doc_id, idx, record) "
                "VALUES (?, ?, ?)",
                [(doc_id, index, record) for index, record in enumerate(records)],
            )
            self._conn.execute(
                "UPDATE documents SET rules_version = ? WHERE doc_id = ?",
                (version, doc_id),
            )
            self._cache.pop(doc_id, None)

    def put_wrapped_key(
        self, doc_id: str, recipient: str, blob: bytes
    ) -> None:
        with self._lock, self._conn:
            self._require_document(doc_id)
            self._conn.execute(
                "INSERT OR REPLACE INTO wrapped_keys (doc_id, recipient, blob) "
                "VALUES (?, ?, ?)",
                (doc_id, recipient, blob),
            )
            self._cache.pop(doc_id, None)

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        with self._lock, self._conn:
            self._require_document(doc_id)
            cursor = self._conn.execute(
                "DELETE FROM wrapped_keys WHERE doc_id = ? AND recipient = ?",
                (doc_id, recipient),
            )
            self._cache.pop(doc_id, None)
            return cursor.rowcount > 0

    def document_ids(self) -> list[str]:
        with self._lock:
            return [
                str(doc_id)
                for (doc_id,) in self._conn.execute(
                    "SELECT doc_id FROM documents ORDER BY doc_id"
                )
            ]

    def contains(self, doc_id: str) -> bool:
        with self._lock:
            return (
                self._conn.execute(
                    "SELECT 1 FROM documents WHERE doc_id = ?", (doc_id,)
                ).fetchone()
                is not None
            )

    def close(self) -> None:
        with self._lock:
            self._cache.clear()
            self._conn.close()

    # -- meta (beyond the protocol) --------------------------------------

    def put_meta(self, key: str, value: str) -> None:
        """Store one entry in the file's key/value side table."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value),
            )

    def get_meta(self, key: str) -> str | None:
        """Read one entry from the key/value side table."""
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = ?", (key,)
            ).fetchone()
            return str(row[0]) if row is not None else None

    # -- feed snapshots (beyond the protocol) ----------------------------

    def put_feed_snapshot(
        self, feed: str, tier: str, blob: bytes, *, epoch: int = 0
    ) -> None:
        """Persist one tier's latest carousel cycle for catch-up.

        Keyed on ``(feed, tier)`` -- a new cycle replaces the old one;
        the blob carries its own epoch/generation/version stamps (see
        :mod:`repro.feeds.snapshot`), and the ``epoch`` column mirrors
        the blob's stamp so operators can inspect currency with SQL.
        Everything stored is ciphertext the broadcast channel already
        carried in public.
        """
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO feed_snapshots "
                "(feed, tier, epoch, blob) VALUES (?, ?, ?, ?)",
                (feed, tier, epoch, blob),
            )

    def get_feed_snapshot(self, feed: str, tier: str) -> bytes | None:
        """The persisted cycle blob for one tier, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT blob FROM feed_snapshots WHERE feed = ? AND tier = ?",
                (feed, tier),
            ).fetchone()
            return bytes(row[0]) if row is not None else None

    def delete_feed_snapshot(self, feed: str, tier: str) -> bool:
        """Drop a tier's persisted cycle (returns whether one existed)."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM feed_snapshots WHERE feed = ? AND tier = ?",
                (feed, tier),
            )
            return cursor.rowcount > 0


class ShardedBackend:
    """N independent :class:`StoreBackend` shards keyed by document id.

    Every doc-keyed operation routes to ``shards[crc32(doc_id) % N]``
    (a *stable* hash -- Python's builtin ``hash`` is salted per
    process, which would scatter a reopened store), so concurrent
    pulls on different documents land on different backends and stop
    contending on one backend lock: N SQLite shards means N
    independent connections and N locks, and the event-loop server's
    workers touch disjoint shards in parallel.

    The composition satisfies the same :class:`StoreBackend` protocol,
    so :class:`~repro.dsp.store.DSPStore`, ``Community.serve`` and
    ``Community.open`` work unchanged -- build one with
    :meth:`memory` or :meth:`sqlite` (or hand in any mixed shard
    list) and pass it as ``Community(backend=...)``.

    A sharded store is byte-identical to its unsharded counterpart:
    routing only decides *where* a record lives, never what it holds,
    and ``document_ids`` merges the shard listings back into one
    sorted view.
    """

    def __init__(self, shards: Sequence[StoreBackend]) -> None:
        if not shards:
            raise ValueError("a sharded backend needs at least one shard")
        self.shards: tuple[StoreBackend, ...] = tuple(shards)

    @classmethod
    def memory(cls, shards: int = 4) -> "ShardedBackend":
        """``shards`` independent :class:`MemoryBackend` stores."""
        return cls([MemoryBackend() for _ in range(shards)])

    @classmethod
    def sqlite(cls, path: str | Path, shards: int = 4) -> "ShardedBackend":
        """``shards`` SQLite files ``<path>.shard0 .. <path>.shardN-1``.

        Reopening the same ``path`` with the same shard count restores
        the store intact; the shard count is part of the layout (the
        routing function depends on it), so reopen with the count you
        created it with.
        """
        base = Path(path)
        return cls(
            [
                SQLiteBackend(base.with_name(f"{base.name}.shard{index}"))
                for index in range(shards)
            ]
        )

    def shard_index(self, doc_id: str) -> int:
        """Which shard holds ``doc_id`` (stable across processes)."""
        return zlib.crc32(doc_id.encode("utf-8")) % len(self.shards)

    def _shard(self, doc_id: str) -> StoreBackend:
        return self.shards[self.shard_index(doc_id)]

    # -- StoreBackend ----------------------------------------------------

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        self._shard(container.header.doc_id).put_document(
            container, keep_rules=keep_rules, keep_keys=keep_keys
        )

    def get(self, doc_id: str) -> StoredDocument:
        return self._shard(doc_id).get(doc_id)

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        self._shard(doc_id).put_rules(doc_id, records, version)

    def put_wrapped_key(
        self, doc_id: str, recipient: str, blob: bytes
    ) -> None:
        self._shard(doc_id).put_wrapped_key(doc_id, recipient, blob)

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        return self._shard(doc_id).remove_wrapped_key(doc_id, recipient)

    def document_ids(self) -> list[str]:
        merged: list[str] = []
        for shard in self.shards:
            merged.extend(shard.document_ids())
        return sorted(merged)

    def contains(self, doc_id: str) -> bool:
        return self._shard(doc_id).contains(doc_id)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    # -- meta (beyond the protocol) --------------------------------------

    def put_meta(self, key: str, value: str) -> None:
        """Meta rides on shard 0 when that shard is durable."""
        shard = self.shards[0]
        if isinstance(shard, SQLiteBackend):
            shard.put_meta(key, value)
        else:
            raise PolicyError(
                "meta storage needs a durable shard 0 "
                "(ShardedBackend.sqlite)"
            )

    def get_meta(self, key: str) -> str | None:
        shard = self.shards[0]
        if isinstance(shard, SQLiteBackend):
            return shard.get_meta(key)
        return None

    # -- feed snapshots (beyond the protocol) ----------------------------

    def put_feed_snapshot(
        self, feed: str, tier: str, blob: bytes, *, epoch: int = 0
    ) -> None:
        """Feed snapshots ride on shard 0 when that shard is durable.

        Snapshots are feed-keyed, not document-keyed, so the crc32
        document routing does not apply; like the deployment manifest
        they live on the durable shard 0.  On a volatile shard 0
        (``ShardedBackend.memory``) this is a silent no-op, matching
        ``get``/``delete`` -- snapshots are a durability optimization,
        and a live feed rebuilds catch-up cycles from the stored
        corpus anyway.
        """
        shard = self.shards[0]
        if isinstance(shard, SQLiteBackend):
            shard.put_feed_snapshot(feed, tier, blob, epoch=epoch)

    def get_feed_snapshot(self, feed: str, tier: str) -> bytes | None:
        shard = self.shards[0]
        if isinstance(shard, SQLiteBackend):
            return shard.get_feed_snapshot(feed, tier)
        return None

    def delete_feed_snapshot(self, feed: str, tier: str) -> bool:
        shard = self.shards[0]
        if isinstance(shard, SQLiteBackend):
            return shard.delete_feed_snapshot(feed, tier)
        return False
