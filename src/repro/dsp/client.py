"""The client-side seam of the DSP service.

The terminal proxy, the pull terminal and the dissemination layers all
talk to a :class:`DSPClient` -- the six request types of the DSP wire
protocol plus a clock to charge transport time to -- never to a
concrete server.  Three things satisfy it:

* :class:`~repro.dsp.server.DSPServer` itself (the zero-copy
  in-process deployment: no codec, no copy, metrics and SimClock
  totals bit-identical to the historical direct wiring);
* :class:`LocalDSP`, an explicit pass-through handle over a server,
  for code that wants a swappable client object;
* :class:`~repro.dsp.remote.RemoteDSP`, the socket client speaking
  :mod:`repro.dsp.wire` to a served DSP in another process.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.crypto.container import DocumentHeader
from repro.dsp.server import DSPServer
from repro.dsp.wire import DocMeta
from repro.smartcard.resources import SimClock

__all__ = ["DSPClient", "LocalDSP"]


@runtime_checkable
class DSPClient(Protocol):
    """What a terminal needs from a DSP, wherever the DSP runs.

    The six methods mirror the wire protocol's request types and the
    matching :class:`~repro.dsp.server.DSPServer` methods exactly --
    same signatures, same return values, same typed errors
    (:class:`~repro.errors.UnknownDocument`,
    :class:`~repro.errors.KeyNotGranted`, ``IndexError`` /
    ``ValueError`` on bad ranges) -- so callers cannot tell a remote
    service from the in-process one.  ``clock`` is where the terminal
    stack charges its simulated transport time.
    """

    clock: SimClock

    def get_header(self, doc_id: str) -> DocumentHeader:
        """The authenticated container header."""
        ...

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        """One encrypted chunk."""
        ...

    def get_chunk_range(
        self, doc_id: str, start: int, count: int
    ) -> list[bytes]:
        """``count`` consecutive chunks as one request (clipped)."""
        ...

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        """The sealed rule records and their version."""
        ...

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        """The document secret wrapped for one recipient."""
        ...

    def get_meta(self, doc_id: str, subject: str) -> DocMeta:
        """The cache-freshness probe (versions, generation, grant bit)."""
        ...


class LocalDSP:
    """A zero-copy in-process :class:`DSPClient` over a ``DSPServer``.

    Pure delegation -- no codec, no copies, and the server's clock is
    shared, so sessions through this handle are bit-for-bit identical
    (metrics and SimClock totals) to sessions holding the server
    directly.
    """

    __slots__ = ("server", "clock")

    def __init__(self, server: DSPServer) -> None:
        self.server = server
        self.clock = server.clock

    def get_header(self, doc_id: str) -> DocumentHeader:
        return self.server.get_header(doc_id)

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        return self.server.get_chunk(doc_id, index)

    def get_chunk_range(
        self, doc_id: str, start: int, count: int
    ) -> list[bytes]:
        return self.server.get_chunk_range(doc_id, start, count)

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        return self.server.get_rules(doc_id)

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        return self.server.get_wrapped_key(doc_id, recipient)

    def get_meta(self, doc_id: str, subject: str) -> DocMeta:
        return self.server.get_meta(doc_id, subject)
