"""The DSP's disk front: a thin façade over a pluggable backend.

Historically ``DSPStore`` *was* the disk (a dictionary); it is now a
delegating front over a :class:`~repro.dsp.backends.StoreBackend`, so
the same server code runs against the volatile in-process
:class:`~repro.dsp.backends.MemoryBackend` (the default -- byte for
byte the historical behavior) or the durable
:class:`~repro.dsp.backends.SQLiteBackend`.
"""

from __future__ import annotations

import os

from repro.crypto.container import DocumentContainer
from repro.dsp.backends import MemoryBackend, StoreBackend, StoredDocument

__all__ = ["DSPStore", "StoredDocument"]


class DSPStore:
    """The DSP's dictionary of encrypted documents, backend-pluggable."""

    def __init__(self, backend: StoreBackend | None = None) -> None:
        self.backend: StoreBackend = (
            backend if backend is not None else MemoryBackend()
        )
        #: Bumped after every mutation -- a cheap cache-invalidation
        #: signal for read-mostly servers (the reactor's per-loop
        #: response cache keys on it).  Incremented *after* the backend
        #: write completes, so data observed under generation ``g`` is
        #: never newer than ``g`` says.
        self.generation = 0
        #: Random per-process nonce qualifying :attr:`generation`.  The
        #: counter restarts at 0 in every process, so a generation
        #: persisted by a previous process can coincidentally equal the
        #: current counter; anything caching against the generation
        #: across process boundaries (feed catch-up snapshots) must
        #: also match the boot id, else fall back to piecewise checks.
        self.boot = os.urandom(8).hex()

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        """Store (or overwrite) a sealed container.

        Overwriting a document id clears the prior seal's rule records
        and wrapped keys unless the caller explicitly keeps them:
        ``keep_keys=True`` retains the grants (a republish under the
        same document secret), ``keep_rules=True`` retains the sealed
        policy (e.g. a tampering store substituting only ciphertext).
        Nothing stale is ever kept silently.
        """
        self.backend.put_document(
            container, keep_rules=keep_rules, keep_keys=keep_keys
        )
        self.generation += 1

    def get(self, doc_id: str) -> StoredDocument:
        """The stored record; raises
        :class:`~repro.errors.UnknownDocument` if absent."""
        return self.backend.get(doc_id)

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        self.backend.put_rules(doc_id, list(records), version)
        self.generation += 1

    def put_wrapped_key(self, doc_id: str, recipient: str, blob: bytes) -> None:
        self.backend.put_wrapped_key(doc_id, recipient, blob)
        self.generation += 1

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        """Drop a recipient's wrapped key (key-level revocation).

        Returns whether a key was actually removed.  Note that a card
        that already unlocked the document keeps its provisioned copy;
        durable revocation also updates the access rules.
        """
        removed = self.backend.remove_wrapped_key(doc_id, recipient)
        if removed:
            self.generation += 1
        return removed

    def document_ids(self) -> list[str]:
        return self.backend.document_ids()

    def close(self) -> None:
        """Release the backend's durable resources (idempotent)."""
        self.backend.close()

    def __contains__(self, doc_id: str) -> bool:
        return self.backend.contains(doc_id)
