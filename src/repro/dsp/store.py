"""Persistent state of the untrusted store."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.container import DocumentContainer
from repro.errors import UnknownDocument


@dataclass(slots=True)
class StoredDocument:
    """Everything the DSP holds for one document id.

    ``rule_records`` are individually sealed rule blobs (the card
    decrypts them one at a time); ``wrapped_keys`` maps recipients to
    the document secret wrapped for them -- opaque to the DSP.
    """

    container: DocumentContainer
    rule_records: list[bytes] = field(default_factory=list)
    rules_version: int = 0
    wrapped_keys: dict[str, bytes] = field(default_factory=dict)


class DSPStore:
    """A dictionary of encrypted documents; the DSP's disk."""

    def __init__(self) -> None:
        self._documents: dict[str, StoredDocument] = {}

    def put_document(self, container: DocumentContainer) -> None:
        doc_id = container.header.doc_id
        existing = self._documents.get(doc_id)
        if existing is not None:
            existing.container = container
        else:
            self._documents[doc_id] = StoredDocument(container)

    def get(self, doc_id: str) -> StoredDocument:
        stored = self._documents.get(doc_id)
        if stored is None:
            raise UnknownDocument(
                f"the store holds no document {doc_id!r}", doc_id=doc_id
            )
        return stored

    def put_rules(
        self, doc_id: str, records: list[bytes], version: int
    ) -> None:
        stored = self.get(doc_id)
        stored.rule_records = list(records)
        stored.rules_version = version

    def put_wrapped_key(self, doc_id: str, recipient: str, blob: bytes) -> None:
        self.get(doc_id).wrapped_keys[recipient] = blob

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        """Drop a recipient's wrapped key (key-level revocation).

        Returns whether a key was actually removed.  Note that a card
        that already unlocked the document keeps its provisioned copy;
        durable revocation also updates the access rules.
        """
        return (
            self.get(doc_id).wrapped_keys.pop(recipient, None) is not None
        )

    def document_ids(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents
