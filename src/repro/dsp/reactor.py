"""The DSP's event-loop server: non-blocking, buffered, admission-controlled.

The threaded :class:`~repro.dsp.remote.DSPSocketServer` spends one OS
thread per connection and serializes every dispatch behind one lock --
fine for a handful of terminals, hopeless for the ROADMAP's "millions
of users".  :class:`ReactorDSPServer` is the production shape: one
non-blocking selector loop (or ``loops=N`` workers, connections
round-robined across them) with per-connection read/write buffering
over the same length-prefixed :mod:`repro.dsp.wire` codec, so

* a slow reader never blocks anyone -- its responses queue in *its*
  write buffer while the loop keeps serving everybody else;
* there is no dispatch lock -- each loop serves its connections
  sequentially, per-connection accounting lives in loop-owned
  :class:`~repro.dsp.remote.ConnectionStats` (single-writer, no
  locks), and server totals are aggregated on demand;
* read-mostly dissemination traffic is served from a per-loop response
  cache (raw request bytes -> framed response, invalidated wholesale
  when the store's mutation ``generation`` moves) -- single-writer
  like everything else the loop owns, which is exactly why it can
  exist without a lock -- and a pipelined batch of responses leaves in
  coalesced sends, one syscall per run of small frames;
* over-capacity traffic **fails fast** with a typed
  :class:`~repro.errors.ResourceExhausted` wire frame carrying a
  :class:`~repro.errors.CapacityReport` (scope, limit, current) --
  the 429-with-capacity-report contract -- instead of queueing into
  collapse or hanging silently.

The reactor serves *real* traffic measured in wall time: it reads
documents through the pure fetch helpers in :mod:`repro.dsp.server`
and does **not** drive the owning :class:`DSPServer`'s simulated
network clock or request counters -- those model the simulated
deployments; the reactor's own totals (:attr:`requests`,
:attr:`bytes_served`, :attr:`chunks_served`, rejection counters) are
the operational truth.

:class:`~repro.dsp.remote.RemoteDSP` speaks to either server
unchanged; ``community.serve(server="reactor")`` is the facade-level
switch (and the default).
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass
from types import TracebackType

from repro.dsp.remote import ConnectionStats
from repro.dsp.server import (
    DSPServer,
    fetch_chunk,
    fetch_chunk_range,
    fetch_header,
    fetch_meta,
    fetch_rules,
    fetch_wrapped_key,
)
from repro.dsp.store import DSPStore
from repro.dsp.wire import (
    MAX_FRAME,
    GetChunk,
    GetChunkRange,
    GetHeader,
    GetMeta,
    GetRules,
    GetWrappedKey,
    Request,
    WireError,
    decode_request,
    encode_error,
    encode_response,
    frame,
)
from repro.errors import CapacityReport, ResourceExhausted

__all__ = ["AdmissionPolicy", "ReactorDSPServer"]

_U32 = struct.Struct(">I")

#: One recv() per readable socket per loop turn.
_RECV_SIZE = 1 << 18

#: A connection whose write backlog exceeds ``client_backlog`` by this
#: factor is beyond help -- it is not reading even its rejection
#: frames -- and gets disconnected instead of buffered further.
_BACKLOG_HARD_FACTOR = 2

#: Coalesce up to this many bytes of small pending frames into one
#: ``send`` -- a pipelining client's batch of responses costs one
#: syscall, not one per frame.
_COALESCE_BYTES = 1 << 16

#: Per-loop response-cache bounds.  Dissemination traffic is
#: read-mostly and narrow (a fleet pulling the same few documents), so
#: the hot set is small; on overflow the oldest entries fall out FIFO.
_CACHE_MAX_ENTRIES = 4096
_CACHE_MAX_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Capacity ceilings the reactor enforces, 429-style.

    Every limit rejects with a typed
    :class:`~repro.errors.ResourceExhausted` frame whose
    :class:`~repro.errors.CapacityReport` names the exhausted scope and
    the numbers behind the decision -- never a silent hang:

    * ``max_connections`` -- concurrent connections across the server;
      connection number ``max+1`` receives one rejection frame and is
      closed.
    * ``client_inflight`` -- responses queued (accepted but not yet
      fully written) per connection; caps how far a client may
      pipeline ahead of its own reading.
    * ``client_backlog`` -- bytes of unflushed responses per
      connection; the slow-reader bound.  A connection still sending
      requests at ``2x`` this backlog is dropped outright.
    * ``server_inflight`` -- responses queued across *all*
      connections; the global memory bound.

    ``sndbuf`` caps the kernel send buffer (``SO_SNDBUF``) per
    connection.  The backlog limits above measure the *userspace*
    queue, and on loopback the kernel will happily autotune its own
    buffer to megabytes -- hiding a lagging client from admission
    control entirely.  Bounding it keeps the visible backlog an honest
    measure of how far behind the peer really is.  ``None`` leaves the
    kernel default.
    """

    max_connections: int = 512
    client_inflight: int = 32
    client_backlog: int = 8 * 1024 * 1024
    server_inflight: int = 4096
    sndbuf: int | None = None


class _Connection:
    """One buffered non-blocking connection, owned by exactly one loop."""

    __slots__ = (
        "sock",
        "stats",
        "inbuf",
        "pending",
        "head_sent",
        "pending_bytes",
        "last_activity",
        "wants_write",
    )

    def __init__(self, sock: socket.socket, stats: ConnectionStats) -> None:
        self.sock = sock
        self.stats = stats
        self.inbuf = bytearray()
        #: Whole outbound frames awaiting the socket; ``head_sent``
        #: bytes of the head frame are already on the wire.
        self.pending: deque[bytes] = deque()
        self.head_sent = 0
        self.pending_bytes = 0
        self.last_activity = time.monotonic()
        self.wants_write = False


class _LoopWorker(threading.Thread):
    """One selector loop: reads, dispatches, buffers writes, reaps idle."""

    def __init__(self, server: "ReactorDSPServer", index: int) -> None:
        super().__init__(name=f"dsp-reactor-{server.address[1]}-{index}", daemon=True)
        self.server = server
        self.index = index
        self.selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self.selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._inbox: deque[tuple[socket.socket, ConnectionStats]] = deque()
        self._inbox_lock = threading.Lock()
        self.conns: set[_Connection] = set()
        self.closing = False
        # Single-writer counters; other threads only read them.
        self.requests = 0
        self.bytes_served = 0
        self.chunks_served = 0
        self.rejected_requests = 0
        self.cache_hits = 0
        self.inflight = 0
        # The loop-local response cache: raw request body -> (framed
        # response, chunks it carries).  Single-writer like everything
        # else this loop owns, so it needs no locks -- the structural
        # payoff of the reactor shape.  Invalidated wholesale whenever
        # the store's generation moves.
        self._cache: dict[bytes, tuple[bytes, int]] = {}
        self._cache_bytes = 0
        self._cache_generation = -1

    # -- cross-thread entry points ----------------------------------------

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:
            pass

    def hand_off(self, sock: socket.socket, stats: ConnectionStats) -> None:
        with self._inbox_lock:
            self._inbox.append((sock, stats))
        self.wake()

    # -- loop body ---------------------------------------------------------

    def run(self) -> None:
        idle = self.server.idle_timeout
        timeout = None if idle is None else max(0.05, idle / 4)
        try:
            while True:
                for key, events in self.selector.select(timeout):
                    if key.data == "wake":
                        self._drain_wake()
                    elif key.data == "listener":
                        self.server._accept_ready()
                    else:
                        conn: _Connection = key.data
                        if events & selectors.EVENT_WRITE:
                            self._writable(conn)
                        if events & selectors.EVENT_READ:
                            self._readable(conn)
                if self.closing:
                    return
                if idle is not None:
                    self._reap_idle(idle)
        finally:
            for conn in list(self.conns):
                self._close_conn(conn)
            with self._inbox_lock:
                leftover = list(self._inbox)
                self._inbox.clear()
            for sock, stats in leftover:
                sock.close()
                stats.open = False
            self.selector.close()
            self._wake_r.close()
            self._wake_w.close()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        while True:
            with self._inbox_lock:
                if not self._inbox:
                    return
                sock, stats = self._inbox.popleft()
            self._adopt(sock, stats)

    def _adopt(self, sock: socket.socket, stats: ConnectionStats) -> None:
        if self.closing:
            sock.close()
            stats.open = False
            return
        conn = _Connection(sock, stats)
        self.conns.add(conn)
        self.selector.register(sock, selectors.EVENT_READ, conn)

    def _reap_idle(self, idle: float) -> None:
        now = time.monotonic()
        for conn in [c for c in self.conns if now - c.last_activity > idle]:
            self.server._reaped += 1
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        self.conns.discard(conn)
        self.inflight -= len(conn.pending)
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        conn.pending.clear()
        conn.pending_bytes = 0
        conn.stats.open = False

    # -- reading and dispatch ----------------------------------------------

    def _readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.last_activity = time.monotonic()
        conn.inbuf += data
        self._drain_frames(conn)

    def _drain_frames(self, conn: _Connection) -> bool:
        """Process every complete frame buffered on ``conn``.

        Returns ``False`` if the connection was closed (protocol
        violation or hard backlog overflow).
        """
        buf = conn.inbuf
        offset = 0
        try:
            while True:
                if len(buf) - offset < 4:
                    break
                (length,) = _U32.unpack_from(buf, offset)
                if length > MAX_FRAME:
                    # A hostile length prefix: drop the connection;
                    # nothing sensible can follow it on the stream.
                    self._close_conn(conn)
                    return False
                if len(buf) - offset < 4 + length:
                    break
                body = bytes(buf[offset + 4:offset + 4 + length])
                offset += 4 + length
                if not self._serve_frame(conn, body):
                    self._close_conn(conn)
                    return False
                if conn not in self.conns:
                    # A write error closed the connection mid-batch;
                    # the remaining buffered frames died with it.
                    return False
            # One flush per batch: a pipelined burst of responses
            # leaves in coalesced sends, and anything the kernel
            # refuses stays queued under EVENT_WRITE.
            if conn.pending:
                self._writable(conn)
        finally:
            if offset:
                del buf[:offset]
        return True

    def _serve_frame(self, conn: _Connection, body: bytes) -> bool:
        stats = conn.stats
        stats.requests += 1
        stats.bytes_in += 4 + len(body)
        self.requests += 1
        generation = self.server.store.generation
        if generation != self._cache_generation:
            self._cache.clear()
            self._cache_bytes = 0
            self._cache_generation = generation
        cached = self._cache.get(body)
        if cached is None:
            try:
                request = decode_request(body)
            except WireError as exc:
                stats.errors += 1
                self._queue(conn, frame(encode_error(exc)))
                return True
        rejection = self._admit(conn)
        if rejection is not None:
            self.rejected_requests += 1
            stats.errors += 1
            if conn.pending_bytes >= (
                self.server.admission.client_backlog * _BACKLOG_HARD_FACTOR
            ):
                return False  # not even reading its rejections: drop it
            self._queue(conn, frame(encode_error(rejection)))
            return True
        if cached is not None:
            # The fast path: a request these exact bytes already
            # answered under this store generation -- no decode, no
            # fetch, no encode, no copy.
            framed, chunks = cached
            self.cache_hits += 1
            self.chunks_served += chunks
            self._queue(conn, framed)
        else:
            chunks = 0
            try:
                value = self._execute(request)
                response = encode_response(request, value)
                if isinstance(request, GetChunk):
                    chunks = 1
                elif isinstance(request, GetChunkRange):
                    assert isinstance(value, list)
                    chunks = len(value)
                self.chunks_served += chunks
                framed = frame(response)
                self._cache_put(body, framed, chunks)
            except Exception as exc:  # typed errors travel; nothing escapes
                stats.errors += 1
                framed = frame(encode_error(exc))
            self._queue(conn, framed)
        # Flush early once a batch's responses pass the coalesce
        # threshold; the per-batch flush in ``_drain_frames`` handles
        # the tail.  In-flight counts therefore measure genuine
        # backpressure plus at most one batch still being assembled.
        if conn.pending_bytes >= _COALESCE_BYTES:
            self._writable(conn)
        return True

    def _cache_put(self, body: bytes, framed: bytes, chunks: int) -> None:
        if len(framed) > _CACHE_MAX_BYTES // 8:
            return  # one giant response must not own the cache
        self._cache[body] = (framed, chunks)
        self._cache_bytes += len(framed)
        while (
            len(self._cache) > _CACHE_MAX_ENTRIES
            or self._cache_bytes > _CACHE_MAX_BYTES
        ):
            oldest, (evicted, _) = next(iter(self._cache.items()))
            del self._cache[oldest]
            self._cache_bytes -= len(evicted)

    def _admit(self, conn: _Connection) -> ResourceExhausted | None:
        policy = self.server.admission
        if len(conn.pending) >= policy.client_inflight:
            return ResourceExhausted(
                "client has too many responses in flight",
                capacity=CapacityReport(
                    "client-inflight", policy.client_inflight, len(conn.pending)
                ),
            )
        if conn.pending_bytes >= policy.client_backlog:
            return ResourceExhausted(
                "client is reading too slowly for its request rate",
                capacity=CapacityReport(
                    "client-backlog", policy.client_backlog, conn.pending_bytes
                ),
            )
        total = self.server._inflight_total()
        if total >= policy.server_inflight:
            return ResourceExhausted(
                "server is at capacity",
                capacity=CapacityReport(
                    "server-inflight", policy.server_inflight, total
                ),
            )
        return None

    def _execute(self, request: Request) -> object:
        store = self.server.store
        if isinstance(request, GetHeader):
            return fetch_header(store, request.doc_id)
        if isinstance(request, GetChunk):
            return fetch_chunk(store, request.doc_id, request.index)
        if isinstance(request, GetChunkRange):
            return fetch_chunk_range(
                store, request.doc_id, request.start, request.count
            )
        if isinstance(request, GetRules):
            return fetch_rules(store, request.doc_id)
        if isinstance(request, GetMeta):
            # Safe to response-cache like any other success: the
            # generation rides *inside* the payload and the per-loop
            # cache is dropped wholesale whenever the generation moves.
            return fetch_meta(store, request.doc_id, request.subject)
        return fetch_wrapped_key(store, request.doc_id, request.recipient)

    # -- writing ------------------------------------------------------------

    def _queue(self, conn: _Connection, framed: bytes) -> None:
        conn.pending.append(framed)
        conn.pending_bytes += len(framed)
        conn.stats.bytes_out += len(framed)
        self.bytes_served += len(framed)
        self.inflight += 1

    def _writable(self, conn: _Connection) -> None:
        try:
            while conn.pending:
                head = conn.pending[0]
                headroom = len(head) - conn.head_sent
                if len(conn.pending) == 1 or headroom >= _COALESCE_BYTES:
                    payload: bytes | memoryview = memoryview(head)[
                        conn.head_sent:
                    ]
                else:
                    # Join a run of small frames so a pipelined batch
                    # goes out in one syscall.
                    parts: list[bytes | memoryview] = [
                        memoryview(head)[conn.head_sent:]
                    ]
                    size = headroom
                    for nxt in list(conn.pending)[1:]:
                        if size >= _COALESCE_BYTES:
                            break
                        parts.append(nxt)
                        size += len(nxt)
                    payload = b"".join(parts)
                sent = conn.sock.send(payload)
                if sent == 0:
                    break
                conn.pending_bytes -= sent
                conn.last_activity = time.monotonic()
                while sent:
                    head = conn.pending[0]
                    headroom = len(head) - conn.head_sent
                    if sent >= headroom:
                        conn.pending.popleft()
                        conn.head_sent = 0
                        self.inflight -= 1
                        sent -= headroom
                    else:
                        conn.head_sent += sent
                        sent = 0
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            self._close_conn(conn)
            return
        wants_write = bool(conn.pending)
        if wants_write != conn.wants_write:
            conn.wants_write = wants_write
            events = selectors.EVENT_READ
            if wants_write:
                events |= selectors.EVENT_WRITE
            try:
                self.selector.modify(conn.sock, events, conn)
            except (KeyError, ValueError):
                pass


class ReactorDSPServer:
    """Serves one DSP over TCP from ``loops`` selector event loops.

    Same wire protocol, same :attr:`address` /
    :attr:`connections` / ``close()`` surface as the threaded
    :class:`~repro.dsp.remote.DSPSocketServer`, so
    :class:`~repro.dsp.remote.RemoteDSP` and ``Community.attach`` work
    against either.  Differences that matter under load:

    * connections are multiplexed, not threaded -- hundreds of clients
      cost ``loops`` threads total, and a reader that stops draining
      its socket only grows *its own* write buffer;
    * :class:`AdmissionPolicy` limits are enforced per request with
      typed rejection frames;
    * ``idle_timeout`` reaps connections with no traffic in either
      direction (the read-idle deadline the threaded server enforces
      with a socket timeout).
    """

    def __init__(
        self,
        dsp: DSPServer,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
        *,
        loops: int = 1,
        admission: AdmissionPolicy | None = None,
        idle_timeout: float | None = None,
    ) -> None:
        if loops < 1:
            raise ValueError("a reactor needs at least one loop")
        self.dsp = dsp
        self.store: DSPStore = dsp.store
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.idle_timeout = idle_timeout
        self._listener = socket.create_server(
            (host, port), backlog=backlog
        )
        self._listener.setblocking(False)
        bound = self._listener.getsockname()
        self.address: tuple[str, int] = (str(bound[0]), int(bound[1]))
        #: Accept-ordered stats for every connection ever admitted;
        #: appended only by loop 0, mutated only by the owning loop.
        self.connections: list[ConnectionStats] = []
        self.rejected_connections = 0
        self._reaped = 0
        self._closed = False
        self._next_loop = 0
        self._loops = [_LoopWorker(self, index) for index in range(loops)]
        self._loops[0].selector.register(
            self._listener, selectors.EVENT_READ, "listener"
        )
        for worker in self._loops:
            worker.start()

    # -- accept path (runs on loop 0) --------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                if self.admission.sndbuf is not None:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_SNDBUF,
                        self.admission.sndbuf,
                    )
            except OSError:
                pass
            open_now = self._open_connections()
            if open_now >= self.admission.max_connections:
                self._reject_connection(sock, open_now)
                continue
            stats = ConnectionStats(peer=f"{peer[0]}:{peer[1]}")
            self.connections.append(stats)
            worker = self._loops[self._next_loop]
            self._next_loop = (self._next_loop + 1) % len(self._loops)
            if worker is self._loops[0]:
                worker._adopt(sock, stats)
            else:
                worker.hand_off(sock, stats)

    def _reject_connection(self, sock: socket.socket, current: int) -> None:
        """One typed rejection frame, best effort, then the door."""
        self.rejected_connections += 1
        rejection = ResourceExhausted(
            "server connection capacity reached",
            capacity=CapacityReport(
                "connections", self.admission.max_connections, current
            ),
        )
        try:
            sock.send(frame(encode_error(rejection)))
        except OSError:
            pass
        sock.close()

    def _open_connections(self) -> int:
        total = 0
        for worker in self._loops:
            total += len(worker.conns) + len(worker._inbox)
        return total

    def _inflight_total(self) -> int:
        return sum(worker.inflight for worker in self._loops)

    # -- aggregated accounting ----------------------------------------------

    @property
    def requests(self) -> int:
        """Frames received across every loop (including rejected ones)."""
        return sum(worker.requests for worker in self._loops)

    @property
    def bytes_served(self) -> int:
        return sum(worker.bytes_served for worker in self._loops)

    @property
    def chunks_served(self) -> int:
        return sum(worker.chunks_served for worker in self._loops)

    @property
    def rejected_requests(self) -> int:
        """Requests refused by admission control with a typed frame."""
        return sum(worker.rejected_requests for worker in self._loops)

    @property
    def cache_hits(self) -> int:
        """Requests served straight from a loop's response cache."""
        return sum(worker.cache_hits for worker in self._loops)

    @property
    def reaped_connections(self) -> int:
        """Connections closed by the idle-timeout reaper."""
        return self._reaped

    @property
    def cache_entries(self) -> int:
        """Entries across every loop's response cache."""
        return sum(len(worker._cache) for worker in self._loops)

    def validate_caches(self) -> list[str]:
        """Audit every loop's response cache; returns problem strings.

        An empty list means every cached entry is a *complete*,
        well-framed success response whose key decodes back to a
        request of the matching opcode.  The cache is filled before a
        response ever touches a socket and holds immutable ``bytes``,
        so no client-side event -- mid-frame disconnect during a
        coalesced write run included -- may ever tear an entry; the
        chaos suite forces exactly those disconnects and asserts this
        stays empty.  Snapshots loop-owned state without locks, so run
        it on a quiesced or steady server.
        """
        problems: list[str] = []
        for worker in self._loops:
            label = f"loop {worker.index}"
            for body, (framed, chunks) in list(worker._cache.items()):
                if len(framed) < 5:
                    problems.append(
                        f"{label}: entry smaller than a frame header "
                        f"({len(framed)} B)"
                    )
                    continue
                (length,) = _U32.unpack_from(framed, 0)
                if length != len(framed) - 4:
                    problems.append(
                        f"{label}: torn entry -- prefix says {length} B, "
                        f"{len(framed) - 4} B stored"
                    )
                    continue
                op = framed[4]
                if op == 0x7F or not op & 0x80:
                    problems.append(
                        f"{label}: non-success opcode 0x{op:02x} cached"
                    )
                    continue
                try:
                    decode_request(body)
                except WireError:
                    problems.append(
                        f"{label}: cache key is not a decodable request"
                    )
                    continue
                if (op & 0x7F) != body[0]:
                    problems.append(
                        f"{label}: response opcode 0x{op & 0x7F:02x} does "
                        f"not answer request opcode 0x{body[0]:02x}"
                    )
                    continue
                if chunks < 0:
                    problems.append(f"{label}: negative chunk count")
        return problems

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the loops and tear down every connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._listener.close()
        for worker in self._loops:
            worker.closing = True
            worker.wake()
        for worker in self._loops:
            worker.join(timeout=5)

    def __enter__(self) -> "ReactorDSPServer":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
