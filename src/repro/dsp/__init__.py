"""The untrusted Database Service Provider (DSP).

"a DSP which hosts encrypted XML documents shared by users as well as
encrypted access rules.  Both are encrypted using secret keys exchanged
between users thanks to a public key infrastructure" (Section 3).

The DSP sees only ciphertext; it can serve chunks by index (pull) or
push them (dissemination).  :mod:`repro.dsp.tamper` implements the
adversarial behaviours -- substitution, modification, reordering,
truncation, version replay -- used by the security tests and E9.
"""

from repro.dsp.server import DSPServer, TrustedFilterService
from repro.dsp.store import DSPStore, StoredDocument

__all__ = ["DSPServer", "DSPStore", "StoredDocument", "TrustedFilterService"]
