"""The untrusted Database Service Provider (DSP).

"a DSP which hosts encrypted XML documents shared by users as well as
encrypted access rules.  Both are encrypted using secret keys exchanged
between users thanks to a public key infrastructure" (Section 3).

The DSP sees only ciphertext; it can serve chunks by index (pull) or
push them (dissemination).  The layer is organized around three seams:

* **storage** -- :class:`DSPStore` fronts a pluggable
  :class:`~repro.dsp.backends.StoreBackend`
  (:class:`~repro.dsp.backends.MemoryBackend` in-process,
  :class:`~repro.dsp.backends.SQLiteBackend` durable);
* **service** -- :class:`DSPServer` answers the five request types
  (header, chunk, chunk range, rules, wrapped key) with network-cost
  accounting;
* **wire** -- :mod:`repro.dsp.wire` serializes those requests and
  responses (typed errors included), :class:`ReactorDSPServer` (the
  event-loop production server with admission control) or the
  threaded :class:`DSPSocketServer` (the comparison baseline) serves
  them over TCP and :class:`RemoteDSP` consumes them; terminals only
  ever see the :class:`~repro.dsp.client.DSPClient` protocol.

:mod:`repro.dsp.tamper` implements the adversarial behaviours --
substitution, modification, reordering, truncation, version replay --
used by the security tests and E9.
"""

from repro.dsp.backends import (
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    StoreBackend,
    StoredDocument,
)
from repro.dsp.client import DSPClient, LocalDSP
from repro.dsp.reactor import AdmissionPolicy, ReactorDSPServer
from repro.dsp.remote import (
    ConnectionStats,
    DSPSocketServer,
    GenerationChanged,
    RemoteDSP,
    RetryPolicy,
)
from repro.dsp.server import DSPServer, TrustedFilterService
from repro.dsp.store import DSPStore

__all__ = [
    "AdmissionPolicy",
    "ConnectionStats",
    "DSPClient",
    "DSPServer",
    "DSPSocketServer",
    "DSPStore",
    "GenerationChanged",
    "LocalDSP",
    "MemoryBackend",
    "ReactorDSPServer",
    "RemoteDSP",
    "RetryPolicy",
    "ShardedBackend",
    "SQLiteBackend",
    "StoreBackend",
    "StoredDocument",
    "TrustedFilterService",
]
