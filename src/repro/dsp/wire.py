"""The DSP wire protocol: a length-prefixed binary codec.

Serializes the six DSP request types (header, chunk, chunk range,
rules, wrapped key, meta) and their responses -- including the typed errors
(:class:`~repro.errors.UnknownDocument`,
:class:`~repro.errors.KeyNotGranted`, out-of-range, bad request) -- so
a :class:`~repro.dsp.remote.RemoteDSP` raises exactly what the
in-process :class:`~repro.dsp.server.DSPServer` raises.

Framing: every message travels as ``[u32 length][body]`` (big endian);
the body starts with one opcode byte.  Requests use opcodes 1..6;
responses echo the request opcode with the high bit set (``0x80 |
op``); error responses use opcode ``0x7F`` regardless of the request.
Strings are ``[u16 length][utf-8]``; blobs are ``[u32 length][raw]``.
Document headers ride the same encoding the card's ``PUT_HEADER`` APDU
uses (:func:`repro.smartcard.card.encode_header`), so the proxy can
forward them without re-serialization.

Malformed input raises :class:`WireError` (a ``ValueError``) -- a
hostile or corrupted peer can never raise anything else out of the
decoder.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

from repro.crypto.container import DocumentHeader
from repro.errors import (
    CapacityReport,
    KeyNotGranted,
    ResourceExhausted,
    TransportError,
    UnknownDocument,
)
from repro.smartcard.card import decode_header, encode_header

__all__ = [
    "DocMeta",
    "GetChunk",
    "GetChunkRange",
    "GetHeader",
    "GetMeta",
    "GetRules",
    "GetWrappedKey",
    "MAX_FRAME",
    "Request",
    "WireError",
    "decode_request",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_response",
    "frame",
]

#: Upper bound on one frame body; anything larger is treated as a
#: protocol violation rather than a buffer to allocate.
MAX_FRAME = 1 << 26  # 64 MiB

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

OP_HEADER = 0x01
OP_CHUNK = 0x02
OP_CHUNK_RANGE = 0x03
OP_RULES = 0x04
OP_WRAPPED_KEY = 0x05
OP_META = 0x06
OP_ERROR = 0x7F
_OK = 0x80

ERR_UNKNOWN_DOCUMENT = 0x01
ERR_KEY_NOT_GRANTED = 0x02
ERR_OUT_OF_RANGE = 0x03
ERR_BAD_REQUEST = 0x04
ERR_SERVER = 0x05
ERR_RESOURCE_EXHAUSTED = 0x06


class WireError(ValueError):
    """A frame violated the protocol (truncated, oversized, unknown op)."""


# -- request types -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class GetHeader:
    doc_id: str


@dataclass(frozen=True, slots=True)
class GetChunk:
    doc_id: str
    index: int


@dataclass(frozen=True, slots=True)
class GetChunkRange:
    doc_id: str
    start: int
    count: int


@dataclass(frozen=True, slots=True)
class GetRules:
    doc_id: str


@dataclass(frozen=True, slots=True)
class GetWrappedKey:
    doc_id: str
    recipient: str


@dataclass(frozen=True, slots=True)
class GetMeta:
    """The freshness probe: everything a view cache needs, one frame.

    ``subject`` scopes the ``has_key`` bit -- key-level revocation
    bumps the store generation but neither the document nor the rules
    version, so a cache validating piecewise must also learn whether
    this subject's wrapped key still exists.
    """

    doc_id: str
    subject: str


@dataclass(frozen=True, slots=True)
class DocMeta:
    """The :class:`GetMeta` response: version vector plus grant bit.

    ``doc_version``/``rules_version`` are the authoritative per-document
    validators; ``(generation, boot)`` is the store-wide fast path (a
    match means *nothing* at the store changed).  ``has_key`` reports
    whether the probing subject's wrapped key is still on the shelf.
    """

    doc_version: int
    rules_version: int
    generation: int
    boot: str
    has_key: bool

    @property
    def wire_size(self) -> int:
        """Size in bytes of the encoded success response body."""
        return 1 + 8 * 3 + 2 + len(self.boot.encode("utf-8")) + 1


Request = Union[
    GetHeader, GetChunk, GetChunkRange, GetRules, GetWrappedKey, GetMeta
]

_REQUEST_OPS: dict[type[object], int] = {
    GetHeader: OP_HEADER,
    GetChunk: OP_CHUNK,
    GetChunkRange: OP_CHUNK_RANGE,
    GetRules: OP_RULES,
    GetWrappedKey: OP_WRAPPED_KEY,
    GetMeta: OP_META,
}


# -- primitive fields --------------------------------------------------------


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireError("string field exceeds 65535 bytes")
    return _U16.pack(len(raw)) + raw


def _pack_bytes(value: bytes) -> bytes:
    return _U32.pack(len(value)) + value


class _Reader:
    """A bounds-checked cursor over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if count < 0 or end > len(self.data):
            raise WireError("truncated frame")
        value = self.data[self.pos:end]
        self.pos = end
        return value

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        value: int = _U16.unpack(self.take(2))[0]
        return value

    def u32(self) -> int:
        value: int = _U32.unpack(self.take(4))[0]
        return value

    def u64(self) -> int:
        value: int = _U64.unpack(self.take(8))[0]
        return value

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("string field is not valid UTF-8") from exc

    def blob(self) -> bytes:
        length = self.u32()
        if length > MAX_FRAME:
            raise WireError("blob length exceeds frame bound")
        return self.take(length)

    def finish(self) -> None:
        if self.pos != len(self.data):
            raise WireError("trailing bytes after message")


def frame(body: bytes) -> bytes:
    """Wrap one message body in its ``[u32 length]`` prefix."""
    if len(body) > MAX_FRAME:
        raise WireError("frame exceeds protocol bound")
    return _U32.pack(len(body)) + body


# -- requests ----------------------------------------------------------------


def encode_request(request: Request) -> bytes:
    """One request as a frame body (no length prefix)."""
    op = _REQUEST_OPS[type(request)]
    body = bytes([op]) + _pack_str(request.doc_id)
    if isinstance(request, GetChunk):
        body += _U32.pack(request.index)
    elif isinstance(request, GetChunkRange):
        body += _U32.pack(request.start) + _U32.pack(request.count)
    elif isinstance(request, GetWrappedKey):
        body += _pack_str(request.recipient)
    elif isinstance(request, GetMeta):
        body += _pack_str(request.subject)
    return body


def decode_request(body: bytes) -> Request:
    """Parse a frame body into a request; raises :class:`WireError`."""
    reader = _Reader(body)
    op = reader.u8()
    doc_id = reader.string()
    request: Request
    if op == OP_HEADER:
        request = GetHeader(doc_id)
    elif op == OP_CHUNK:
        request = GetChunk(doc_id, reader.u32())
    elif op == OP_CHUNK_RANGE:
        request = GetChunkRange(doc_id, reader.u32(), reader.u32())
    elif op == OP_RULES:
        request = GetRules(doc_id)
    elif op == OP_WRAPPED_KEY:
        request = GetWrappedKey(doc_id, reader.string())
    elif op == OP_META:
        request = GetMeta(doc_id, reader.string())
    else:
        raise WireError(f"unknown request opcode {op:#04x}")
    reader.finish()
    return request


# -- responses ---------------------------------------------------------------


def encode_response(request: Request, value: object) -> bytes:
    """The success response to ``request`` as a frame body.

    ``value`` is whatever the matching ``DSPServer`` method returned:
    a :class:`DocumentHeader`, a chunk blob, a list of chunk blobs, a
    ``(version, records)`` pair, or a wrapped-key blob.
    """
    op = _OK | _REQUEST_OPS[type(request)]
    head = bytes([op])
    if isinstance(request, GetHeader):
        assert isinstance(value, DocumentHeader)
        return head + _pack_bytes(encode_header(value))
    if isinstance(request, (GetChunk, GetWrappedKey)):
        assert isinstance(value, bytes)
        return head + _pack_bytes(value)
    if isinstance(request, GetChunkRange):
        assert isinstance(value, list)
        body = head + _U16.pack(len(value))
        for blob in value:
            body += _pack_bytes(blob)
        return body
    if isinstance(request, GetMeta):
        assert isinstance(value, DocMeta)
        return (
            head
            + _U64.pack(value.doc_version)
            + _U64.pack(value.rules_version)
            + _U64.pack(value.generation)
            + _pack_str(value.boot)
            + bytes([1 if value.has_key else 0])
        )
    assert isinstance(value, tuple)
    version, records = value
    body = head + _U64.pack(version) + _U16.pack(len(records))
    for record in records:
        body += _pack_bytes(record)
    return body


def encode_error(exc: BaseException) -> bytes:
    """Any dispatch failure as an error frame body.

    The typed store errors keep their identity across the wire; bounds
    and argument errors map to their builtin types; anything else
    degrades to a generic server error (surfaced client-side as
    :class:`~repro.errors.TransportError`).

    :class:`~repro.errors.ResourceExhausted` -- the admission-control
    rejection -- additionally carries its
    :class:`~repro.errors.CapacityReport` (scope, limit, current), so
    a rejected client learns *which* ceiling it hit and where the
    server stood, the 429-with-capacity-report contract.
    """
    doc_id = getattr(exc, "doc_id", None) or ""
    subject = getattr(exc, "subject", None) or ""
    if isinstance(exc, UnknownDocument):
        code = ERR_UNKNOWN_DOCUMENT
    elif isinstance(exc, KeyNotGranted):
        code = ERR_KEY_NOT_GRANTED
    elif isinstance(exc, ResourceExhausted):
        report = exc.capacity or CapacityReport("", 0, 0)
        return (
            bytes([OP_ERROR, ERR_RESOURCE_EXHAUSTED])
            + _pack_str(str(exc))
            + _pack_str(doc_id)
            + _pack_str(subject)
            + _pack_str(report.scope)
            + _U32.pack(report.limit)
            + _U32.pack(report.current)
        )
    elif isinstance(exc, IndexError):
        code = ERR_OUT_OF_RANGE
    elif isinstance(exc, ValueError):
        code = ERR_BAD_REQUEST
    else:
        code = ERR_SERVER
    return (
        bytes([OP_ERROR, code])
        + _pack_str(str(exc))
        + _pack_str(doc_id)
        + _pack_str(subject)
    )


def _raise_error(reader: _Reader) -> None:
    code = reader.u8()
    message = reader.string()
    doc_id = reader.string() or None
    subject = reader.string() or None
    if code == ERR_RESOURCE_EXHAUSTED:
        scope = reader.string()
        limit = reader.u32()
        current = reader.u32()
        reader.finish()
        raise ResourceExhausted(
            message,
            doc_id=doc_id,
            subject=subject,
            capacity=CapacityReport(scope, limit, current) if scope else None,
        )
    reader.finish()
    if code == ERR_UNKNOWN_DOCUMENT:
        raise UnknownDocument(message, doc_id=doc_id)
    if code == ERR_KEY_NOT_GRANTED:
        raise KeyNotGranted(message, doc_id=doc_id, subject=subject)
    if code == ERR_OUT_OF_RANGE:
        raise IndexError(message)
    if code == ERR_BAD_REQUEST:
        raise ValueError(message)
    if code == ERR_SERVER:
        raise TransportError(message, doc_id=doc_id, subject=subject)
    raise WireError(f"unknown error code {code:#04x}")


def decode_response(request: Request, body: bytes) -> object:
    """Parse the response to ``request``; re-raises wire-carried errors.

    Returns the same Python value the matching in-process
    ``DSPServer`` method would have returned, so a remote client is a
    drop-in for the local one.
    """
    reader = _Reader(body)
    op = reader.u8()
    if op == OP_ERROR:
        _raise_error(reader)
    if op != (_OK | _REQUEST_OPS[type(request)]):
        raise WireError(
            f"response opcode {op:#04x} does not answer "
            f"{type(request).__name__}"
        )
    value: object
    if isinstance(request, GetHeader):
        try:
            value = decode_header(reader.blob())
        except WireError:
            raise
        except (ValueError, IndexError, struct.error) as exc:
            raise WireError(f"malformed header payload: {exc}") from exc
    elif isinstance(request, (GetChunk, GetWrappedKey)):
        value = reader.blob()
    elif isinstance(request, GetChunkRange):
        value = [reader.blob() for __ in range(reader.u16())]
    elif isinstance(request, GetMeta):
        value = DocMeta(
            doc_version=reader.u64(),
            rules_version=reader.u64(),
            generation=reader.u64(),
            boot=reader.string(),
            has_key=reader.u8() != 0,
        )
    else:
        version = reader.u64()
        value = (version, [reader.blob() for __ in range(reader.u16())])
    reader.finish()
    return value
