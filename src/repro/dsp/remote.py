"""The DSP as a real network service.

:class:`DSPSocketServer` fronts one in-process
:class:`~repro.dsp.server.DSPServer` with a threaded TCP listener
speaking the :mod:`repro.dsp.wire` codec -- one thread per connection,
dispatch serialized on the server so its accounting (``requests``,
``bytes_served``, the SimClock) stays coherent, and per-connection
accounting so an operator can see who pulled what.

:class:`RemoteDSP` is the matching :class:`~repro.dsp.client.DSPClient`:
it connects, sends one frame per request and decodes the response,
re-raising the server's typed errors.  Many terminals in separate
processes can each hold one and pull from the same durable DSP
concurrently.

Typical wiring (see ``Community.serve`` / ``Community.attach`` for the
facade-level version)::

    # process A -- owns the store
    server = DSPSocketServer(dsp)          # 127.0.0.1, ephemeral port
    print(server.address)

    # process B..N -- readers
    with RemoteDSP.connect(address) as dsp:
        terminal = Terminal("reader", dsp, pki)
        ...
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Callable, Protocol

from repro.crypto.container import DocumentHeader
from repro.dsp.server import DSPServer
from repro.dsp.wire import (
    MAX_FRAME,
    DocMeta,
    GetChunk,
    GetChunkRange,
    GetHeader,
    GetMeta,
    GetRules,
    GetWrappedKey,
    Request,
    WireError,
    decode_request,
    decode_response,
    encode_error,
    encode_request,
    encode_response,
    frame,
)
from repro.errors import ResourceExhausted, TransportError
from repro.smartcard.resources import SimClock

__all__ = [
    "ConnectionStats",
    "DSPSocketServer",
    "GenerationChanged",
    "RemoteDSP",
    "RetryPolicy",
    "SocketLike",
]

_U32 = struct.Struct(">I")


class SocketLike(Protocol):
    """The slice of the socket surface the DSP client actually uses.

    ``socket.socket`` satisfies it structurally; so does a chaos
    wrapper (``repro.chaos.faults.FaultySocket``) injected through
    ``RemoteDSP.connect(..., socket_wrapper=...)``.
    """

    def sendall(self, data: bytes, /) -> None: ...

    def recv(self, bufsize: int, /) -> bytes: ...

    def settimeout(self, value: float | None, /) -> None: ...

    def close(self) -> None: ...


def _recv_exact(sock: SocketLike, count: int) -> bytes | None:
    """``count`` bytes from the socket, or ``None`` on a clean EOF.

    A connection that dies mid-message raises
    :class:`~repro.errors.TransportError`; only an EOF on a message
    boundary reads as an orderly close.
    """
    parts: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == count:
                return None
            raise TransportError("DSP connection closed mid-frame")
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


def read_frame(sock: SocketLike) -> bytes | None:
    """One length-prefixed frame body, or ``None`` on orderly EOF."""
    prefix = _recv_exact(sock, 4)
    if prefix is None:
        return None
    length: int = _U32.unpack(prefix)[0]
    if length > MAX_FRAME:
        raise WireError(f"peer announced an oversized frame ({length} B)")
    body = _recv_exact(sock, length)
    if body is None:
        raise TransportError("DSP connection closed mid-frame")
    return body


def write_frame(sock: SocketLike, body: bytes) -> None:
    sock.sendall(frame(body))


class GenerationChanged(TransportError):
    """A retried pull crossed a republish: the document moved versions.

    Raised (instead of silently resuming) when a reconnect-and-resume
    discovers the stored document's version is no longer the one the
    in-flight pull started under.  Splicing chunks from two versions
    would be caught by the card's chunk MACs anyway -- this surfaces
    the situation *before* tainted bytes reach the card, so the caller
    can simply restart the pull against the new version.  Never
    retried.
    """


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter for ``RemoteDSP``.

    ``attempts`` caps total tries per request (first try included).
    The ``n``-th retry sleeps ``backoff * multiplier**n``, shrunk by up
    to ``jitter`` (a 0..1 fraction) so a fleet of readers retrying the
    same hiccup does not stampede in phase; ``seed`` makes the jitter
    deterministic for tests.  ``deadline`` bounds the *whole* request
    -- connect, retries and socket waits included -- and overruns
    surface as :class:`~repro.errors.TransportError`, never a silent
    hang.

    What retries: transport failures (the client reconnects first) and
    :class:`~repro.errors.ResourceExhausted` rejection frames (the
    admission-control 429 -- backoff only, the connection is fine).
    What never retries: every other typed error
    (``UnknownDocument``, ``KeyNotGranted``, ...) -- those are
    answers, not failures -- and :class:`GenerationChanged`.
    """

    attempts: int = 4
    backoff: float = 0.02
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline: float | None = 10.0
    seed: int | None = None

    def delay(self, retry_index: int) -> float:
        """Sleep before the ``retry_index``-th retry (zero-based)."""
        base = self.backoff * (self.multiplier ** retry_index)
        if self.jitter <= 0:
            return base
        if self.seed is None:
            fraction = random.random()
        else:
            fraction = random.Random(f"retry|{self.seed}|{retry_index}").random()
        return base * (1.0 - self.jitter * fraction)


@dataclass(slots=True)
class ConnectionStats:
    """Per-connection accounting on the served side."""

    peer: str
    requests: int = 0
    errors: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    open: bool = True


class DSPSocketServer:
    """Serves one DSP over TCP, one thread per connection.

    Binding ``port=0`` picks an ephemeral port; :attr:`address` is the
    bound ``(host, port)`` to hand to clients.  Dispatch into the
    underlying :class:`DSPServer` is serialized on one lock so its
    request/byte/clock accounting stays exactly as coherent as in the
    single-process deployment.  A context manager: ``close`` stops the
    listener and tears down every live connection.
    """

    def __init__(
        self,
        dsp: DSPServer,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
        *,
        idle_timeout: float | None = None,
    ) -> None:
        self.dsp = dsp
        #: Seconds a connection may sit with no inbound traffic before
        #: its thread reaps it -- an abandoned socket no longer pins a
        #: thread forever.  ``None`` keeps the historical wait-forever.
        self.idle_timeout = idle_timeout
        self.reaped_connections = 0
        self._dispatch_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._listener = socket.create_server((host, port), backlog=backlog)
        bound = self._listener.getsockname()
        self.address: tuple[str, int] = (str(bound[0]), int(bound[1]))
        self.connections: list[ConnectionStats] = []
        self._conn_socks: list[socket.socket] = []
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"dsp-server-{self.address[1]}",
            daemon=True,
        )
        self._accept_thread.start()

    # -- service loop -----------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            stats = ConnectionStats(peer=f"{peer[0]}:{peer[1]}")
            with self._state_lock:
                if self._closed:
                    conn.close()
                    return
                self.connections.append(stats)
                self._conn_socks.append(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn, stats),
                name=f"dsp-conn-{stats.peer}",
                daemon=True,
            ).start()

    def _serve_connection(
        self, conn: socket.socket, stats: ConnectionStats
    ) -> None:
        if self.idle_timeout is not None:
            conn.settimeout(self.idle_timeout)
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            while True:
                try:
                    body = read_frame(conn)
                except TimeoutError:
                    # Idle (or mid-frame stalled) past the deadline:
                    # reap the connection instead of pinning the
                    # thread forever.
                    self.reaped_connections += 1
                    return
                except (TransportError, WireError, OSError):
                    return
                if body is None:
                    return
                stats.requests += 1
                stats.bytes_in += 4 + len(body)
                response = self._dispatch(body, stats)
                stats.bytes_out += 4 + len(response)
                try:
                    write_frame(conn, response)
                except OSError:
                    return
        finally:
            stats.open = False
            conn.close()

    def _dispatch(self, body: bytes, stats: ConnectionStats) -> bytes:
        try:
            request = decode_request(body)
        except WireError as exc:
            stats.errors += 1
            return encode_error(exc)
        try:
            with self._dispatch_lock:
                value = self._execute(request)
            return encode_response(request, value)
        except Exception as exc:  # typed errors travel; nothing escapes
            stats.errors += 1
            return encode_error(exc)

    def _execute(self, request: Request) -> object:
        dsp = self.dsp
        if isinstance(request, GetHeader):
            return dsp.get_header(request.doc_id)
        if isinstance(request, GetChunk):
            return dsp.get_chunk(request.doc_id, request.index)
        if isinstance(request, GetChunkRange):
            return dsp.get_chunk_range(
                request.doc_id, request.start, request.count
            )
        if isinstance(request, GetRules):
            return dsp.get_rules(request.doc_id)
        if isinstance(request, GetMeta):
            return dsp.get_meta(request.doc_id, request.subject)
        return dsp.get_wrapped_key(request.doc_id, request.recipient)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop accepting and tear down live connections (idempotent)."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            socks = list(self._conn_socks)
        try:
            # close() alone does not wake a thread blocked in accept();
            # shutdown() does.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        self._accept_thread.join(timeout=5)

    def __enter__(self) -> "DSPSocketServer":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class RemoteDSP:
    """A :class:`~repro.dsp.client.DSPClient` over one TCP connection.

    One frame out, one frame in, per request; a lock serializes
    requests so one handle may be shared, though the intended shape is
    one ``RemoteDSP`` per terminal process.  Wire-carried typed errors
    re-raise exactly as the in-process server would have raised them.
    The ``clock`` is this client's own
    :class:`~repro.smartcard.resources.SimClock`: the *served* DSP
    charges its network model on its side, while the terminal charges
    card/link time locally.

    Without a :class:`RetryPolicy` the handle keeps its historical
    fail-fast shape: the first transport failure poisons it for good.
    With one (``RemoteDSP.connect(..., retry=RetryPolicy())``) it
    self-heals: transport failures reconnect and retry with
    exponential backoff + jitter, admission-control
    :class:`~repro.errors.ResourceExhausted` rejections back off on
    the live connection, and a per-request ``deadline`` bounds the
    whole affair as a :class:`~repro.errors.TransportError`.  Resumed
    chunk pulls are guarded by the header's version: if the document
    was republished while the pull was down, the retry raises
    :class:`GenerationChanged` rather than splice two versions.
    """

    def __init__(
        self,
        sock: SocketLike,
        clock: SimClock | None = None,
        *,
        retry: RetryPolicy | None = None,
        address: tuple[str, int] | None = None,
        timeout: float | None = None,
        socket_wrapper: "Callable[[socket.socket], SocketLike] | None" = None,
    ) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._broken: str | None = None
        self.retry = retry
        self._address = address
        self._timeout = timeout
        self._wrap = socket_wrapper
        #: Document versions observed via ``get_header`` on this handle
        #: -- the reconnect-and-resume guard's memory.
        self._doc_versions: dict[str, int] = {}
        self.clock = clock if clock is not None else SimClock()
        self.requests = 0
        self.bytes_received = 0
        self.retries = 0
        self.reconnects = 0

    @classmethod
    def connect(
        cls,
        address: tuple[str, int],
        timeout: float | None = 10.0,
        clock: SimClock | None = None,
        *,
        retry: RetryPolicy | None = None,
        socket_wrapper: "Callable[[socket.socket], SocketLike] | None" = None,
    ) -> "RemoteDSP":
        """Open a connection to a served DSP.

        ``retry`` turns on the resilience layer (see the class doc).
        ``socket_wrapper`` interposes on every socket the handle ever
        opens -- the initial connection *and* each reconnect -- which
        is how the chaos engine injects transport faults under a
        self-healing client.
        """
        sock = cls._open(address, timeout, socket_wrapper)
        return cls(
            sock,
            clock=clock,
            retry=retry,
            address=address,
            timeout=timeout,
            socket_wrapper=socket_wrapper,
        )

    @staticmethod
    def _open(
        address: tuple[str, int],
        timeout: float | None,
        wrap: "Callable[[socket.socket], SocketLike] | None",
    ) -> SocketLike:
        try:
            sock = socket.create_connection(address, timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot reach DSP at {address[0]}:{address[1]}: {exc}"
            ) from exc
        sock.settimeout(timeout)
        return sock if wrap is None else wrap(sock)

    def _poison(self, reason: str) -> None:
        """Mark the connection unusable and drop the socket.

        After a timeout or mid-frame failure the stream may still hold
        a stale response; reading it would silently answer the *next*
        request with the previous payload, so the handle refuses all
        further use instead.  With a retry policy, ``_call`` reconnects
        a fresh socket before the next attempt.
        """
        self._broken = reason
        self._sock.close()

    def _reconnect(self, request: Request) -> None:
        """Replace the poisoned socket and re-validate the pull's world."""
        if self._address is None:
            raise TransportError(
                f"DSP connection is unusable ({self._broken}) and this "
                "handle has no address to reconnect to"
            )
        fresh = self._open(self._address, self._timeout, self._wrap)
        with self._lock:
            self._sock.close()
            self._sock = fresh
            self._broken = None
        self.reconnects += 1
        self._guard_generation(request)

    def _guard_generation(self, request: Request) -> None:
        """Refuse to resume a chunk pull across a republish.

        Chunk MACs bind ``(doc_id, version, index)``, so a splice of
        two versions would die at the card as ``TamperDetected``; this
        check turns it into an actionable :class:`GenerationChanged`
        before any tainted byte is fetched.
        """
        if not isinstance(request, (GetChunk, GetChunkRange)):
            return
        known = self._doc_versions.get(request.doc_id)
        if known is None:
            return
        header = self._exchange(GetHeader(request.doc_id))
        assert isinstance(header, DocumentHeader)
        if header.version != known:
            raise GenerationChanged(
                f"document {request.doc_id!r} moved from version {known} "
                f"to {header.version} while the pull was interrupted; "
                "restart the pull against the new version",
                doc_id=request.doc_id,
            )

    def _exchange(
        self, request: Request, deadline: float | None = None
    ) -> object:
        with self._lock:
            if self._broken is not None:
                raise TransportError(
                    f"DSP connection is unusable ({self._broken}); "
                    "reconnect with RemoteDSP.connect"
                )
            if deadline is not None:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TransportError(
                        "request deadline exhausted before the request "
                        "could be sent"
                    )
                limit = (
                    budget
                    if self._timeout is None
                    else min(self._timeout, budget)
                )
                try:
                    self._sock.settimeout(max(0.001, limit))
                except OSError:
                    pass
            try:
                write_frame(self._sock, encode_request(request))
                body = read_frame(self._sock)
            except (OSError, TransportError, WireError) as exc:
                self._poison(str(exc))
                raise TransportError(
                    f"DSP connection failed: {exc}"
                ) from exc
            self.requests += 1
            if body is None:
                self._poison("server closed the connection")
                raise TransportError("DSP closed the connection")
            self.bytes_received += len(body)
            try:
                value = decode_response(request, body)
            except WireError as exc:
                # An undecodable response means the stream can no
                # longer be trusted to be frame-aligned.
                self._poison(f"undecodable response: {exc}")
                raise TransportError(
                    f"DSP sent an undecodable response: {exc}"
                ) from exc
        if isinstance(request, GetHeader) and isinstance(value, DocumentHeader):
            self._doc_versions[request.doc_id] = value.version
        return value

    def _call(self, request: Request) -> object:
        policy = self.retry
        if policy is None:
            return self._exchange(request)
        deadline = (
            None
            if policy.deadline is None
            else time.monotonic() + policy.deadline
        )
        attempt = 0
        while True:
            try:
                if self._broken is not None:
                    self._reconnect(request)
                return self._exchange(request, deadline)
            except GenerationChanged:
                raise
            except (TransportError, ResourceExhausted) as exc:
                attempt += 1
                if attempt >= policy.attempts:
                    raise
                delay = policy.delay(attempt - 1)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TransportError(
                            f"deadline of {policy.deadline:g}s exceeded "
                            f"after {attempt} attempts: {exc}"
                        ) from exc
                    delay = min(delay, remaining)
                if delay > 0:
                    time.sleep(delay)
                self.retries += 1

    # -- DSPClient --------------------------------------------------------

    def get_header(self, doc_id: str) -> DocumentHeader:
        value = self._call(GetHeader(doc_id))
        assert isinstance(value, DocumentHeader)
        return value

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        value = self._call(GetChunk(doc_id, index))
        assert isinstance(value, bytes)
        return value

    def get_chunk_range(
        self, doc_id: str, start: int, count: int
    ) -> list[bytes]:
        value = self._call(GetChunkRange(doc_id, start, count))
        assert isinstance(value, list)
        return value

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        value = self._call(GetRules(doc_id))
        assert isinstance(value, tuple)
        return value

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        value = self._call(GetWrappedKey(doc_id, recipient))
        assert isinstance(value, bytes)
        return value

    def get_meta(self, doc_id: str, subject: str) -> DocMeta:
        value = self._call(GetMeta(doc_id, subject))
        assert isinstance(value, DocMeta)
        return value

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "RemoteDSP":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
