"""Tag dictionary: structure compression via tag ids.

"For ensuring compactness, we compress the document structure using a
dictionary of tags [XGRIND] and encode the set of tags thanks to a bit
array referring to the tag dictionary." (Section 2.3)

The dictionary is built at encryption time by the document owner and
shipped in the (authenticated) stream header, so the card can map tag
ids back to names and evaluate node tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.skipindex.varint import decode_varint, encode_varint


class TagDictionary:
    """A bidirectional tag-name <-> tag-id mapping.

    Ids are assigned in first-seen order, which keeps encoding
    deterministic for a given document.
    """

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: list[str] = []
        self._ids: dict[str, int] = {}
        # id-set -> name-set memo: sibling subtrees repeat the same tag
        # sets, so the streaming decoder resolves each distinct set once.
        self._sets: dict[frozenset[int], frozenset[str]] = {}
        for name in names:
            self.intern(name)

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def intern(self, name: str) -> int:
        """Return the id of ``name``, assigning one if new."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        tag_id = len(self._names)
        self._names.append(name)
        self._ids[name] = tag_id
        self._sets.clear()  # ids shifted into existence; drop stale memo
        return tag_id

    def id_of(self, name: str) -> int:
        """Id of a known tag (KeyError if absent)."""
        return self._ids[name]

    def name_of(self, tag_id: int) -> str:
        """Name of a known id (IndexError if out of range)."""
        return self._names[tag_id]

    def ids_to_names(self, ids: Iterable[int]) -> frozenset[str]:
        if isinstance(ids, frozenset):
            cached = self._sets.get(ids)
            if cached is None:
                cached = frozenset(self._names[i] for i in ids)
                self._sets[ids] = cached
            return cached
        return frozenset(self._names[i] for i in ids)

    # -- serialization ---------------------------------------------------

    def encode(self) -> bytes:
        """Serialize for the stream header."""
        out = bytearray(encode_varint(len(self._names)))
        for name in self._names:
            raw = name.encode("utf-8")
            out.extend(encode_varint(len(raw)))
            out.extend(raw)
        return bytes(out)

    @classmethod
    def decode(
        cls, data: "bytes | bytearray", offset: int = 0
    ) -> tuple["TagDictionary", int]:
        """Deserialize; return ``(dictionary, next_offset)``."""
        count, offset = decode_varint(data, offset)
        names: list[str] = []
        for _ in range(count):
            length, offset = decode_varint(data, offset)
            if offset + length > len(data):
                raise ValueError("truncated tag dictionary")
            names.append(data[offset:offset + length].decode("utf-8"))
            offset += length
        return cls(names), offset
