"""Unsigned LEB128 variable-length integers and width-bounded integers.

Varints encode the unbounded quantities of the stream format (tag ids,
text lengths, root subtree size).  Width-bounded integers implement the
paper's "recursive compression of the subtree size": a child subtree
can never be larger than its parent's content, so it is stored in just
enough bytes for the parent's size, typically one.
"""

from __future__ import annotations


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as LEB128."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: "bytes | bytearray | memoryview", offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 integer; return ``(value, next_offset)``.

    ``data`` may be any byte-indexable buffer (the streaming decoder
    passes its live buffer instead of copying it).  The single-byte
    case -- the overwhelming majority of the stream's tag ids, lengths
    and attribute counts -- returns before any loop state is set up.
    """
    size = len(data)
    if offset >= size:
        raise ValueError("truncated varint")
    byte = data[offset]
    if byte < 0x80:
        return byte, offset + 1
    result = byte & 0x7F
    shift = 7
    position = offset + 1
    while True:
        if position >= size:
            raise ValueError("truncated varint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def varint_size(value: int) -> int:
    """Encoded size of ``value`` in bytes."""
    size = 1
    while value > 0x7F:
        value >>= 7
        size += 1
    return size


def width_for_bound(bound: int) -> int:
    """Bytes needed to store any integer in ``[0, bound]``."""
    width = 1
    while bound > 0xFF:
        bound >>= 8
        width += 1
    return width


def encode_bounded(value: int, bound: int) -> bytes:
    """Encode ``value`` in the fixed width implied by ``bound``."""
    if not 0 <= value <= bound:
        raise ValueError(f"value {value} outside [0, {bound}]")
    return value.to_bytes(width_for_bound(bound), "little")


def decode_bounded(data: bytes, offset: int, bound: int) -> tuple[int, int]:
    """Decode a width-bounded integer; return ``(value, next_offset)``."""
    width = width_for_bound(bound)
    if offset + width > len(data):
        raise ValueError("truncated bounded integer")
    value = int.from_bytes(data[offset:offset + width], "little")
    return value, offset + width
