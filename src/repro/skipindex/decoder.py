"""Streaming decoder for the SXS format, with subtree skipping.

This is the card-side component: it consumes decrypted plaintext bytes
*incrementally* (the card never holds more than the current chunk),
yields one decoded item at a time, and supports jumping over a subtree
-- the caller reads the skip metadata exposed on :class:`DecodedOpen`,
decides, and calls :meth:`SXSDecoder.skip_open_subtree`, after which
the decoder discards buffered bytes in the region, synthesizes the
matching close, and reports the absolute ``resume_offset`` so the proxy
can stop transferring the skipped chunks at all.

The buffer is consumed through a read cursor with amortized compaction
(no ``del buffer[:n]`` per token) and tokens are decoded directly off
the live buffer -- the seed copied the entire buffered region once per
OPEN token.  Varint runs decode in one batched pass per token, and the
sorted support of a parent's tag set is computed once per parent
rather than once per child bitmap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.skipindex.bitset import decode_relative, ids_from_bitmap
from repro.skipindex.encoder import IndexMode, MAGIC, OP_CLOSE, OP_OPEN, OP_TEXT
from repro.skipindex.tagdict import TagDictionary
from repro.skipindex.varint import decode_varint, width_for_bound
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent


class SXSFormatError(ValueError):
    """Raised on malformed SXS input."""


class DecodedOpen:
    """An element open with its skip metadata.

    ``tags_inside`` is the set of tag *names* occurring strictly inside
    the subtree (``None`` when the stream carries no index);
    ``resume_offset`` is the absolute offset just past the subtree
    (``None`` without an index).

    The ``Decoded*`` wrappers are plain slotted classes, not frozen
    dataclasses: one is born per stream item on the card's hottest
    loop, and ``object.__setattr__``-based frozen init costs more than
    the rest of the dispatch.
    """

    __slots__ = ("event", "tags_inside", "content_size", "resume_offset")

    def __init__(
        self,
        event: OpenEvent,
        tags_inside: frozenset[str] | None,
        content_size: int | None,
        resume_offset: int | None,
    ) -> None:
        self.event = event
        self.tags_inside = tags_inside
        self.content_size = content_size
        self.resume_offset = resume_offset


class DecodedText:
    __slots__ = ("event",)

    def __init__(self, event: ValueEvent) -> None:
        self.event = event


class DecodedClose:
    __slots__ = ("event", "synthetic")

    def __init__(self, event: CloseEvent, synthetic: bool = False) -> None:
        self.event = event
        self.synthetic = synthetic  # True when produced by a skip


DecodedItem = DecodedOpen | DecodedText | DecodedClose


class _OpenFrame:
    __slots__ = (
        "tag",
        "tags_inside",
        "content_size",
        "content_start",
        "support",
        "child_width",
    )

    def __init__(
        self,
        tag: str,
        tags_inside: frozenset[int] | None,
        content_size: int | None,
        content_start: int,
    ) -> None:
        self.tag = tag
        self.tags_inside = tags_inside
        self.content_size = content_size
        self.content_start = content_start
        #: Sorted ``tags_inside`` (computed on first child, reused by
        #: every sibling's relative bitmap).
        self.support: tuple[int, ...] | None = None
        #: Byte width of child size fields (derived from content_size
        #: once per parent instead of once per child).
        self.child_width: int | None = None


@dataclass(frozen=True, slots=True)
class FrameSnapshot:
    """Decoder context of one open element (for skip-and-refetch)."""

    tag: str
    tags_inside: frozenset[int]
    content_size: int
    content_start: int


#: Consumed-prefix length above which the buffer is compacted (when the
#: prefix also dominates the buffer, keeping compaction amortized O(1)).
_COMPACT_THRESHOLD = 1024


class SXSDecoder:
    """Incremental SXS reader (see module docstring).

    Bytes are supplied with :meth:`push` (with an absolute offset when
    resuming after a skip); items are pulled with :meth:`next_item`,
    which returns ``None`` when more bytes are needed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._base = 0  # absolute offset of _buffer[0]
        self._pos = 0  # read cursor into _buffer
        self._mode: IndexMode | None = None
        self.dictionary: TagDictionary | None = None
        self._stack: list[_OpenFrame] = []
        self._pending_close: list[str] = []
        self._skip_target: int | None = None
        self._document_done = False
        self.bytes_decoded = 0
        # Per-tag event memos: events are immutable value objects, so
        # every </patient> can be the same CloseEvent instance (ditto
        # attribute-less opens).  The tag universe is the dictionary's.
        self._close_events: dict[str, CloseEvent] = {}
        self._plain_opens: dict[str, OpenEvent] = {}

    def _close_event(self, tag: str) -> CloseEvent:
        event = self._close_events.get(tag)
        if event is None:
            event = self._close_events[tag] = CloseEvent(tag)
        return event

    # -- input ----------------------------------------------------------

    @property
    def position(self) -> int:
        """Absolute offset of the next byte to decode."""
        return self._base + self._pos

    def push(self, data: bytes, offset: int | None = None) -> None:
        """Append plaintext bytes.

        ``offset`` is the absolute position of ``data[0]``; it defaults
        to the current end of the buffer.  After a skip, pushed data may
        begin before the resume offset (chunk alignment) -- the overlap
        is discarded.
        """
        end = self._base + len(self._buffer)
        if offset is None:
            offset = end
        if self._skip_target is not None and offset <= self._skip_target:
            # Resuming after a skip: drop bytes before the target.
            drop = self._skip_target - offset
            if drop >= len(data):
                return
            data = data[drop:]
            offset = self._skip_target
            if self._pos == len(self._buffer):
                self._buffer.clear()
                self._pos = 0
                self._base = offset
            self._skip_target = None
        elif offset != end:
            raise SXSFormatError(
                f"non-contiguous push: expected offset {end}, got {offset}"
            )
        self._buffer.extend(data)

    def _advance(self, count: int) -> None:
        """Move the cursor past ``count`` decoded bytes."""
        position = self._pos + count
        self._pos = position
        self.bytes_decoded += count
        if position >= _COMPACT_THRESHOLD and position * 2 >= len(self._buffer):
            del self._buffer[:position]
            self._base += position
            self._pos = 0

    # -- header -----------------------------------------------------------

    def _try_parse_header(self) -> bool:
        if self.dictionary is not None:
            return True
        if len(self._buffer) - self._pos < len(MAGIC) + 1:
            return False
        start = self._pos
        buffer = self._buffer
        if buffer[start:start + len(MAGIC)] != MAGIC:
            raise SXSFormatError("bad magic")
        try:
            mode = IndexMode(buffer[start + len(MAGIC)])
        except ValueError as exc:
            raise SXSFormatError("unknown index mode") from exc
        try:
            # Decoded in place off the live bytearray -- the seed copied
            # the whole buffered stream here once per session.
            dictionary, offset = TagDictionary.decode(
                buffer, start + len(MAGIC) + 1
            )
        except ValueError:
            return False  # need more bytes
        self._mode = mode
        self.dictionary = dictionary
        self._advance(offset - start)
        return True

    # -- item decoding -------------------------------------------------------

    def next_item(self) -> DecodedItem | None:
        """Decode and return the next item, or ``None`` if starved."""
        if self._pending_close:
            tag = self._pending_close.pop()
            return DecodedClose(self._close_event(tag), synthetic=True)
        if self._skip_target is not None:
            return None  # waiting for post-skip bytes
        if not self._try_parse_header():
            return None
        if self._document_done:
            return None
        item = self._try_decode_token()
        return item

    def _try_decode_token(self) -> DecodedItem | None:
        buffer = self._buffer
        start = self._pos
        if start >= len(buffer):
            return None
        opcode = buffer[start]
        if opcode == OP_CLOSE:
            if not self._stack:
                raise SXSFormatError("unbalanced CLOSE token")
            frame = self._stack.pop()
            self._advance(1)
            if not self._stack:
                self._document_done = True
            return DecodedClose(self._close_event(frame.tag))
        if opcode == OP_TEXT:
            try:
                length, after = decode_varint(buffer, start + 1)
            except ValueError:
                return None
            if len(buffer) < after + length:
                return None
            # Decode straight off the buffer via an unnamed temporary
            # view -- it is released before _advance may compact (a
            # live exported view would make the bytearray resize raise
            # BufferError).
            text = str(memoryview(buffer)[after:after + length], "utf-8")
            self._advance(after - start + length)
            return DecodedText(ValueEvent(text))
        if opcode == OP_OPEN:
            return self._try_decode_open()
        raise SXSFormatError(f"unknown opcode {opcode:#x}")

    def _try_decode_open(self) -> DecodedOpen | None:
        assert self.dictionary is not None and self._mode is not None
        buffer = self._buffer
        start = self._pos
        size = len(buffer)
        try:
            # Batched field decode off the live buffer: the one-byte
            # varint case (nearly every tag id and length) is inlined.
            position = start + 1
            if position >= size:
                return None
            byte = buffer[position]
            if byte < 0x80:
                tag_id, offset = byte, position + 1
            else:
                tag_id, offset = decode_varint(buffer, position)
            if offset >= size:
                return None
            byte = buffer[offset]
            if byte < 0x80:
                n_attrs, offset = byte, offset + 1
            else:
                n_attrs, offset = decode_varint(buffer, offset)
            attributes: list[tuple[str, str]] = []
            for _ in range(n_attrs):
                name_len, offset = decode_varint(buffer, offset)
                if offset + name_len > size:
                    return None
                name = str(memoryview(buffer)[offset:offset + name_len], "utf-8")
                offset += name_len
                value_len, offset = decode_varint(buffer, offset)
                if offset + value_len > size:
                    return None
                value = str(memoryview(buffer)[offset:offset + value_len], "utf-8")
                offset += value_len
                attributes.append((name, value))
            tags_inside_ids: frozenset[int] | None = None
            content_size: int | None = None
            if self._mode is IndexMode.FLAT:
                content_size, offset = decode_varint(buffer, offset)
                width = (len(self.dictionary) + 7) // 8
                if offset + width > size:
                    return None
                tags_inside_ids = ids_from_bitmap(
                    buffer[offset:offset + width], len(self.dictionary)
                )
                offset += width
            elif self._mode is IndexMode.RECURSIVE:
                if not self._stack:
                    content_size, offset = decode_varint(buffer, offset)
                    width = (len(self.dictionary) + 7) // 8
                    if offset + width > size:
                        return None
                    tags_inside_ids = ids_from_bitmap(
                        buffer[offset:offset + width], len(self.dictionary)
                    )
                    offset += width
                else:
                    parent = self._stack[-1]
                    assert parent.content_size is not None
                    assert parent.tags_inside is not None
                    width = parent.child_width
                    if width is None:
                        width = width_for_bound(parent.content_size)
                        parent.child_width = width
                    if offset + width > size:
                        return None
                    if width == 1:
                        content_size = buffer[offset]
                        offset += 1
                    else:
                        content_size = int.from_bytes(
                            buffer[offset:offset + width], "little"
                        )
                        offset += width
                    if parent.support is None:
                        parent.support = tuple(sorted(parent.tags_inside))
                    tags_inside_ids, offset = decode_relative(
                        buffer, offset, parent.tags_inside, parent.support
                    )
        except ValueError:
            return None  # starved mid-token
        try:
            tag = self.dictionary.name_of(tag_id)
        except IndexError as exc:
            raise SXSFormatError(f"unknown tag id {tag_id}") from exc
        self._advance(offset - start)
        content_start = self._base + self._pos
        frame = _OpenFrame(tag, tags_inside_ids, content_size, content_start)
        self._stack.append(frame)
        tags_inside = (
            self.dictionary.ids_to_names(tags_inside_ids)
            if tags_inside_ids is not None
            else None
        )
        resume = (
            content_start + content_size
            if content_size is not None
            else None
        )
        if attributes:
            open_event = OpenEvent(tag, tuple(attributes))
        else:
            open_event = self._plain_opens.get(tag)
            if open_event is None:
                open_event = self._plain_opens[tag] = OpenEvent(tag)
        return DecodedOpen(open_event, tags_inside, content_size, resume)

    # -- skipping ----------------------------------------------------------

    def skip_open_subtree(self) -> int:
        """Skip the content of the most recently opened element.

        Must be called right after :meth:`next_item` returned the
        corresponding :class:`DecodedOpen` (before pulling more items).
        Returns the absolute resume offset; the next :meth:`next_item`
        yields the synthetic close.
        """
        if not self._stack:
            raise RuntimeError("no open element to skip")
        frame = self._stack.pop()
        if frame.content_size is None:
            raise RuntimeError("stream carries no skip index")
        if self._base + self._pos != frame.content_start:
            raise RuntimeError("content already consumed; too late to skip")
        resume = frame.content_start + frame.content_size
        buffered_end = self._base + len(self._buffer)
        if resume <= buffered_end:
            skipped = resume - (self._base + self._pos)
            self._advance(skipped)
            self.bytes_decoded -= skipped  # skipped bytes are not decoded
        else:
            # Bytes in the buffer were never counted as decoded; just
            # drop them and wait for the resume offset.
            self._buffer.clear()
            self._pos = 0
            self._base = resume
            self._skip_target = resume
        self._pending_close.append(frame.tag)
        if not self._stack:
            self._document_done = True
        return resume

    def snapshot_top_frame(self) -> FrameSnapshot:
        """Context of the innermost open element (for refetch seeding)."""
        if not self._stack:
            raise RuntimeError("no open element")
        frame = self._stack[-1]
        if frame.content_size is None or frame.tags_inside is None:
            raise RuntimeError("stream carries no skip index")
        return FrameSnapshot(
            tag=frame.tag,
            tags_inside=frame.tags_inside,
            content_size=frame.content_size,
            content_start=frame.content_start,
        )

    @classmethod
    def for_region(
        cls,
        dictionary: TagDictionary,
        mode: IndexMode,
        tag: str,
        tags_inside_ids: frozenset[int],
        content_size: int,
        content_start: int,
    ) -> "SXSDecoder":
        """A decoder seeded to read one subtree's content region.

        Used by the refetch pass: recursive bitmaps and bounded sizes
        need the parent context, which the snapshot provides.  The
        region ends at the element's own close (``document_done``).
        """
        decoder = cls()
        decoder._mode = mode
        decoder.dictionary = dictionary
        decoder._stack.append(
            _OpenFrame(tag, tags_inside_ids, content_size, content_start)
        )
        decoder._base = content_start
        decoder._skip_target = content_start  # trims pre-region chunk bytes
        return decoder

    @property
    def mode(self) -> IndexMode | None:
        return self._mode

    @property
    def next_needed_offset(self) -> int:
        """Absolute offset of the first byte the decoder still needs."""
        if self._skip_target is not None:
            return self._skip_target
        return self._base + len(self._buffer)

    @property
    def document_done(self) -> bool:
        return self._document_done

    @property
    def depth(self) -> int:
        return len(self._stack)


def decode_document(data: bytes) -> list[Event]:
    """Decode a complete SXS byte string back into events."""
    decoder = SXSDecoder()
    decoder.push(data)
    events: list[Event] = []
    while (item := decoder.next_item()) is not None:
        events.append(item.event)
    if not decoder.document_done:
        raise SXSFormatError("truncated document")
    return events
