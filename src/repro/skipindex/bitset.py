"""Tag-set bit arrays with parent-relative (recursive) compression.

A subtree's tag set is a subset of its parent subtree's tag set, so it
can be encoded using only ``popcount(parent)`` bits -- bit *i* of the
child array refers to the *i*-th set position of the parent array.
Applied at every level this is the paper's "recursive compression" of
the tag bit arrays: deep, narrow subtrees cost close to zero bits even
when the document dictionary is large.
"""

from __future__ import annotations


def bitmap_from_ids(ids: frozenset[int] | set[int], universe: int) -> bytes:
    """Pack tag ids into a little-endian bit array of ``universe`` bits."""
    out = bytearray((universe + 7) // 8)
    for tag_id in ids:
        if not 0 <= tag_id < universe:
            raise ValueError(f"tag id {tag_id} outside universe {universe}")
        out[tag_id // 8] |= 1 << (tag_id % 8)
    return bytes(out)


def ids_from_bitmap(bitmap: "bytes | bytearray | memoryview", universe: int) -> frozenset[int]:
    """Unpack a bit array into the set of tag ids.

    Runs over the bitmap as one integer, peeling set bits -- cost is
    proportional to the population count, not the universe size.
    """
    value = int.from_bytes(bitmap, "little")
    if universe % 8:
        value &= (1 << universe) - 1
    ids = []
    while value:
        low = value & -value
        ids.append(low.bit_length() - 1)
        value ^= low
    return frozenset(ids)


def relative_width(parent_ids: frozenset[int]) -> int:
    """Encoded size in bytes of a child tag set under ``parent_ids``."""
    return (len(parent_ids) + 7) // 8


def encode_relative(child_ids: frozenset[int], parent_ids: frozenset[int]) -> bytes:
    """Encode ``child_ids`` on the support of ``parent_ids``.

    Requires ``child_ids <= parent_ids`` -- guaranteed by construction
    because a subtree's tags are a subset of its parent subtree's tags.
    """
    if not child_ids <= parent_ids:
        raise ValueError("child tag set is not a subset of the parent's")
    support = sorted(parent_ids)
    positions = {tag_id: index for index, tag_id in enumerate(support)}
    out = bytearray(relative_width(parent_ids))
    for tag_id in child_ids:
        position = positions[tag_id]
        out[position // 8] |= 1 << (position % 8)
    return bytes(out)


def decode_relative(
    data: "bytes | bytearray | memoryview",
    offset: int,
    parent_ids: frozenset[int],
    support: "tuple[int, ...] | None" = None,
) -> tuple[frozenset[int], int]:
    """Decode a parent-relative tag set; return ``(ids, next_offset)``.

    ``support`` is the sorted parent id list; callers decoding many
    children of one parent (the streaming decoder) pass it precomputed
    so the sort is paid once per parent, not once per child.
    """
    width = relative_width(parent_ids)
    if offset + width > len(data):
        raise ValueError("truncated relative bitmap")
    if support is None:
        support = tuple(sorted(parent_ids))
    value = int.from_bytes(data[offset:offset + width], "little")
    # Stray padding bits beyond the support are ignored (as the
    # bit-by-bit decoder did).
    value &= (1 << len(support)) - 1
    ids = []
    while value:
        low = value & -value
        ids.append(support[low.bit_length() - 1])
        value ^= low
    return frozenset(ids), offset + width
