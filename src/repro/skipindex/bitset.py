"""Tag-set bit arrays with parent-relative (recursive) compression.

A subtree's tag set is a subset of its parent subtree's tag set, so it
can be encoded using only ``popcount(parent)`` bits -- bit *i* of the
child array refers to the *i*-th set position of the parent array.
Applied at every level this is the paper's "recursive compression" of
the tag bit arrays: deep, narrow subtrees cost close to zero bits even
when the document dictionary is large.
"""

from __future__ import annotations


def bitmap_from_ids(ids: frozenset[int] | set[int], universe: int) -> bytes:
    """Pack tag ids into a little-endian bit array of ``universe`` bits."""
    out = bytearray((universe + 7) // 8)
    for tag_id in ids:
        if not 0 <= tag_id < universe:
            raise ValueError(f"tag id {tag_id} outside universe {universe}")
        out[tag_id // 8] |= 1 << (tag_id % 8)
    return bytes(out)


def ids_from_bitmap(bitmap: bytes, universe: int) -> frozenset[int]:
    """Unpack a bit array into the set of tag ids."""
    ids = set()
    for tag_id in range(universe):
        if bitmap[tag_id // 8] & (1 << (tag_id % 8)):
            ids.add(tag_id)
    return frozenset(ids)


def relative_width(parent_ids: frozenset[int]) -> int:
    """Encoded size in bytes of a child tag set under ``parent_ids``."""
    return (len(parent_ids) + 7) // 8


def encode_relative(child_ids: frozenset[int], parent_ids: frozenset[int]) -> bytes:
    """Encode ``child_ids`` on the support of ``parent_ids``.

    Requires ``child_ids <= parent_ids`` -- guaranteed by construction
    because a subtree's tags are a subset of its parent subtree's tags.
    """
    if not child_ids <= parent_ids:
        raise ValueError("child tag set is not a subset of the parent's")
    support = sorted(parent_ids)
    positions = {tag_id: index for index, tag_id in enumerate(support)}
    out = bytearray(relative_width(parent_ids))
    for tag_id in child_ids:
        position = positions[tag_id]
        out[position // 8] |= 1 << (position % 8)
    return bytes(out)


def decode_relative(
    data: bytes, offset: int, parent_ids: frozenset[int]
) -> tuple[frozenset[int], int]:
    """Decode a parent-relative tag set; return ``(ids, next_offset)``."""
    width = relative_width(parent_ids)
    if offset + width > len(data):
        raise ValueError("truncated relative bitmap")
    support = sorted(parent_ids)
    ids = set()
    for index, tag_id in enumerate(support):
        if data[offset + index // 8] & (1 << (index % 8)):
            ids.add(tag_id)
    return frozenset(ids), offset + width
