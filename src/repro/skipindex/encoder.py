"""Encoder for the SXS (Skip-indexed XML Stream) format.

The document owner runs this at publication time: the XML document is
tokenized (tag dictionary), and each element is annotated with the two
pieces of skip metadata of Section 2.3 -- "the set of element tags that
appear in each subtree (to check whether an access rule automaton is
likely to reach its final state) as well as the subtree size (to make
the skip actually possible)".

Wire format::

    header := magic "SXS1" | flags(1) | tag dictionary
    body   := token*
    token  := OPEN  0x01 varint(tag_id) varint(n_attrs) attr* meta?
            | TEXT  0x02 varint(len) utf8-bytes
            | CLOSE 0x03
    attr   := varint(len) utf8-name varint(len) utf8-value
    meta   := size bitmap          (present unless IndexMode.NONE)

``size`` counts the bytes of the element's *content region*: everything
after the meta up to and including the matching CLOSE opcode, so that
``resume_offset = content_start + size`` lands just past the subtree.

In ``RECURSIVE`` mode the bitmap is parent-relative
(:mod:`repro.skipindex.bitset`) and the size of a non-root element is
stored width-bounded by its parent's content size
(:mod:`repro.skipindex.varint`); widths and sizes are mutually
dependent, so the encoder iterates to the least fixpoint -- both sides
compute widths as the same pure function of the decoded sizes, keeping
the format self-describing.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.skipindex.bitset import bitmap_from_ids, encode_relative, relative_width
from repro.skipindex.tagdict import TagDictionary
from repro.skipindex.varint import (
    encode_bounded,
    encode_varint,
    varint_size,
    width_for_bound,
)
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent

MAGIC = b"SXS1"

OP_OPEN = 0x01
OP_TEXT = 0x02
OP_CLOSE = 0x03


class IndexMode(enum.Enum):
    """Which skip metadata is embedded (E4 ablates the three)."""

    NONE = 0
    FLAT = 1
    RECURSIVE = 2


class _Text:
    __slots__ = ("data",)

    def __init__(self, text: str) -> None:
        self.data = text.encode("utf-8")


class _Node:
    __slots__ = (
        "tag_id",
        "attributes",
        "children",
        "tags_inside",
        "content_size",
        "size_width",
    )

    def __init__(self, tag_id: int, attributes: tuple[tuple[str, str], ...]) -> None:
        self.tag_id = tag_id
        self.attributes = attributes
        self.children: list[_Node | _Text] = []
        self.tags_inside: frozenset[int] = frozenset()
        self.content_size = 0
        self.size_width = 1  # bytes used by this node's own size field


def _build_tree(
    events: Iterable[Event], dictionary: TagDictionary
) -> _Node:
    root: _Node | None = None
    stack: list[_Node] = []
    for event in events:
        if isinstance(event, OpenEvent):
            node = _Node(dictionary.intern(event.tag), event.attributes)
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise ValueError("multiple root elements")
            stack.append(node)
        elif isinstance(event, ValueEvent):
            if not stack:
                raise ValueError("text outside the root element")
            stack[-1].children.append(_Text(event.text))
        elif isinstance(event, CloseEvent):
            stack.pop()
    if root is None or stack:
        raise ValueError("incomplete event stream")
    return root


def _compute_tag_sets(node: _Node) -> frozenset[int]:
    inside: set[int] = set()
    for child in node.children:
        if isinstance(child, _Node):
            inside.add(child.tag_id)
            inside.update(_compute_tag_sets(child))
    node.tags_inside = frozenset(inside)
    return node.tags_inside


def _open_header_size(node: _Node) -> int:
    """Bytes of an OPEN token before its meta."""
    size = 1 + varint_size(node.tag_id) + varint_size(len(node.attributes))
    for name, value in node.attributes:
        raw_name = name.encode("utf-8")
        raw_value = value.encode("utf-8")
        size += varint_size(len(raw_name)) + len(raw_name)
        size += varint_size(len(raw_value)) + len(raw_value)
    return size


def _child_meta_size(child: _Node, parent: _Node | None, mode: IndexMode, universe: int) -> int:
    if mode is IndexMode.NONE:
        return 0
    if mode is IndexMode.FLAT:
        return varint_size(child.content_size) + (universe + 7) // 8
    # RECURSIVE
    if parent is None:
        size_bytes = varint_size(child.content_size)
        bitmap_bytes = (universe + 7) // 8
    else:
        size_bytes = child.size_width
        bitmap_bytes = relative_width(parent.tags_inside)
    return size_bytes + bitmap_bytes


def _compute_sizes(node: _Node, parent: _Node | None, mode: IndexMode, universe: int) -> None:
    """One bottom-up pass computing content sizes with current widths."""
    total = 0
    for child in node.children:
        if isinstance(child, _Node):
            _compute_sizes(child, node, mode, universe)
            total += (
                _open_header_size(child)
                + _child_meta_size(child, node, mode, universe)
                + child.content_size
            )
        else:
            total += 1 + varint_size(len(child.data)) + len(child.data)
    total += 1  # the CLOSE opcode of this node
    node.content_size = total


def _update_widths(node: _Node) -> bool:
    """Grow child size-field widths to match this node's content size."""
    changed = False
    width = width_for_bound(node.content_size)
    for child in node.children:
        if isinstance(child, _Node):
            if width > child.size_width:
                child.size_width = width
                changed = True
            if _update_widths(child):
                changed = True
    return changed


def _serialize(
    node: _Node,
    parent: _Node | None,
    mode: IndexMode,
    universe: int,
    out: bytearray,
) -> None:
    out.append(OP_OPEN)
    out.extend(encode_varint(node.tag_id))
    out.extend(encode_varint(len(node.attributes)))
    for name, value in node.attributes:
        raw_name = name.encode("utf-8")
        raw_value = value.encode("utf-8")
        out.extend(encode_varint(len(raw_name)))
        out.extend(raw_name)
        out.extend(encode_varint(len(raw_value)))
        out.extend(raw_value)
    if mode is IndexMode.FLAT:
        out.extend(encode_varint(node.content_size))
        out.extend(bitmap_from_ids(node.tags_inside, universe))
    elif mode is IndexMode.RECURSIVE:
        if parent is None:
            out.extend(encode_varint(node.content_size))
            out.extend(bitmap_from_ids(node.tags_inside, universe))
        else:
            bound = (1 << (8 * node.size_width)) - 1
            out.extend(encode_bounded(node.content_size, bound))
            out.extend(encode_relative(node.tags_inside, parent.tags_inside))
    for child in node.children:
        if isinstance(child, _Node):
            _serialize(child, node, mode, universe, out)
        else:
            out.append(OP_TEXT)
            out.extend(encode_varint(len(child.data)))
            out.extend(child.data)
    out.append(OP_CLOSE)


def encode_document(
    events: Iterable[Event],
    mode: IndexMode = IndexMode.RECURSIVE,
    dictionary: TagDictionary | None = None,
) -> bytes:
    """Encode an event stream into SXS bytes.

    A pre-built ``dictionary`` may be supplied (e.g. shared across the
    documents of a collection); missing tags are interned into it.
    """
    if dictionary is None:
        dictionary = TagDictionary()
    root = _build_tree(events, dictionary)
    universe = len(dictionary)
    _compute_tag_sets(root)
    if mode is not IndexMode.NONE:
        _compute_sizes(root, None, mode, universe)
        if mode is IndexMode.RECURSIVE:
            # Iterate widths/sizes to their least fixpoint (see module
            # docstring); widths are monotone and bounded, so this
            # terminates quickly (2-3 rounds in practice).
            for _ in range(16):
                changed = _update_widths(root)
                _compute_sizes(root, None, mode, universe)
                if not changed:
                    break
            else:  # pragma: no cover - defensive
                raise RuntimeError("size-width fixpoint did not converge")
    out = bytearray(MAGIC)
    out.append(mode.value)
    out.extend(dictionary.encode())
    _serialize(root, None, mode, universe, out)
    return bytes(out)


def encoded_size(events: Iterable[Event], mode: IndexMode) -> int:
    """Size in bytes of the document under the given index mode (E4)."""
    return len(encode_document(list(events), mode))
