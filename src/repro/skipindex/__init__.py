"""The skip index (Section 2.3 of the paper).

A compact structural index embedded in the document stream itself: for
every element, the set of tags occurring in its subtree (a bit array
over a tag dictionary) and the encoded size of the subtree.  The index
lets the Secure Operating Environment *skip* subtrees in which no
access-rule or query automaton can reach a final state, saving both
transfer and decryption -- "the two limiting factors of the target
architecture".

Three encodings are provided (experiment E4 ablates them):

* ``IndexMode.NONE``      -- no index; the whole document streams.
* ``IndexMode.FLAT``      -- one full-width bitmap per element.
* ``IndexMode.RECURSIVE`` -- the paper's scheme: each bitmap is encoded
  on the support of its parent's bitmap and subtree sizes are
  width-bounded by the parent size, i.e. "recursive compression on
  both the set of tags bit array and the subtree size".
"""

from repro.skipindex.encoder import IndexMode, encode_document, encoded_size
from repro.skipindex.decoder import (
    DecodedClose,
    DecodedOpen,
    DecodedText,
    SXSDecoder,
    SXSFormatError,
    decode_document,
)
from repro.skipindex.tagdict import TagDictionary

__all__ = [
    "DecodedClose",
    "DecodedOpen",
    "DecodedText",
    "IndexMode",
    "SXSDecoder",
    "SXSFormatError",
    "TagDictionary",
    "decode_document",
    "encode_document",
    "encoded_size",
]
