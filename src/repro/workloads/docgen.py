"""Seeded synthetic XML document generators.

Every generator is deterministic in its ``seed`` so benchmark rows are
reproducible run to run.  Sizes scale linearly with the count
parameters, letting the harness sweep document size (E1) without
changing shape.
"""

from __future__ import annotations

import random

from repro.xmlstream.tree import Element

_FIRST_NAMES = [
    "Alice", "Bruno", "Carla", "Deng", "Elsa", "Farid", "Greta", "Hugo",
    "Ines", "Jonas", "Karim", "Lena", "Marco", "Nadia", "Omar", "Paula",
]
_DIAGNOSES = [
    "influenza", "fracture", "hypertension", "diabetes", "migraine",
    "asthma", "allergy", "bronchitis",
]
_DRUGS = [
    "paracetamol", "ibuprofen", "amoxicillin", "insulin", "salbutamol",
    "atorvastatin",
]
_WARDS = ["cardiology", "orthopedics", "pediatrics", "oncology"]
_CATEGORIES = ["news", "sports", "cartoons", "documentary", "movies"]
_RATINGS = ["G", "PG", "PG13", "R"]


def hospital(
    n_patients: int = 20,
    episodes_per_patient: int = 3,
    seed: int = 7,
) -> Element:
    """Deep, regular medical records with sensitive branches.

    Structure: ``hospital/ward/patient/{name,ssn,episode*,billing}``;
    episodes carry diagnosis and prescriptions, roughly one patient in
    four has a ``psychiatric`` episode branch -- the classic "doctor
    sees everything except psychiatric records" target.
    """
    rng = random.Random(seed)
    root = Element("hospital")
    wards = {name: root.child("ward", name=name) for name in _WARDS}
    for index in range(n_patients):
        ward = wards[_WARDS[index % len(_WARDS)]]
        patient = ward.child("patient", id=f"p{index}")
        name = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        patient.child("name", name)
        patient.child("ssn", f"{rng.randrange(10**8):08d}")
        for episode_index in range(episodes_per_patient):
            episode = patient.child("episode", date=f"2005-0{1 + episode_index % 9}-11")
            diagnosis = rng.choice(_DIAGNOSES)
            episode.child("diagnosis", diagnosis)
            episode.child(
                "notes",
                f"Patient presented with {diagnosis}; clinical examination "
                f"unremarkable, follow-up scheduled in {rng.randrange(2, 9)} "
                f"weeks, case reference {rng.randrange(10**6):06d}.",
            )
            prescription = episode.child("prescription")
            prescription.child("drug", rng.choice(_DRUGS))
            prescription.child("dose", f"{rng.randrange(1, 4)}/day")
            if index % 4 == 0 and episode_index == 0:
                psychiatric = episode.child("psychiatric")
                psychiatric.child(
                    "evaluation",
                    "Confidential psychiatric evaluation notes, restricted "
                    "to the treating specialist under hospital policy.",
                )
        billing = patient.child("billing")
        billing.child("amount", str(rng.randrange(50, 900)))
        billing.child("insurance", f"INS-{rng.randrange(1000):04d}")
    return root


def bibliography(n_entries: int = 50, seed: int = 11) -> Element:
    """Shallow, bushy publication records (SIGMOD-record shaped)."""
    rng = random.Random(seed)
    root = Element("bibliography")
    for index in range(n_entries):
        entry = root.child("article", key=f"a{index}")
        entry.child("title", f"On the {rng.choice(['safety', 'cost', 'power'])} "
                             f"of {rng.choice(['streams', 'cards', 'indexes'])} {index}")
        authors = entry.child("authors")
        for __ in range(rng.randrange(1, 4)):
            authors.child("author", rng.choice(_FIRST_NAMES))
        entry.child("year", str(rng.randrange(1995, 2006)))
        entry.child("pages", f"{rng.randrange(1, 500)}-{rng.randrange(500, 900)}")
        if rng.random() < 0.3:
            review = entry.child("review")
            review.child("score", str(rng.randrange(1, 6)))
            review.child("comment", "internal referee notes")
    return root


def agenda(
    n_members: int = 6,
    events_per_member: int = 8,
    seed: int = 13,
) -> Element:
    """The collaborative-community dataset (demo application 1).

    Each member owns events; some are flagged private, some reference
    other members as participants -- the sharing policies evolve over
    time, which is experiment E8's scenario.
    """
    rng = random.Random(seed)
    root = Element("agenda")
    members = [_FIRST_NAMES[i % len(_FIRST_NAMES)].lower() for i in range(n_members)]
    for member in members:
        section = root.child("member", name=member)
        section.child("owner", member)
        for event_index in range(events_per_member):
            event = section.child("event", id=f"{member}-{event_index}")
            event.child("title", f"meeting {event_index}")
            event.child("date", f"2005-06-{1 + event_index % 27:02d}")
            event.child("time", f"{8 + event_index % 10}:00")
            participants = event.child("participants")
            for other in rng.sample(members, k=min(2, len(members))):
                participants.child("participant", other)
            if rng.random() < 0.25:
                private = event.child("private")
                private.child("notes", "personal notes")
    return root


def video_catalog(
    n_videos: int = 30,
    seed: int = 17,
    payload: int = 120,
    flat: bool = False,
) -> Element:
    """The multimedia-stream dataset (demo application 2).

    By default segments are grouped under one section element per
    category (``/stream/news/segment``, ...) -- the shape broadcasters
    use and the one that gives the skip index *coarse* regions: a
    subscriber without the ``sports`` tier skips the whole ``sports``
    section in one jump (experiments E2, E7).  ``flat=True`` keeps the
    historical flat shape (segments directly under the root), used to
    contrast fine- vs coarse-grained skipping.

    Every segment carries rating/category metadata (parental-control
    rules use value predicates on them) and an opaque payload standing
    in for ``payload`` bytes of media data.
    """
    rng = random.Random(seed)
    root = Element("stream", {"channel": "demo"})
    sections: dict[str, Element] = {}

    def section_for(category: str) -> Element:
        if flat:
            return root
        node = sections.get(category)
        if node is None:
            node = root.child(category)
            sections[category] = node
        return node

    for index in range(n_videos):
        category = _CATEGORIES[index % len(_CATEGORIES)]
        segment = section_for(category).child("segment", id=f"s{index}")
        meta = segment.child("meta")
        meta.child("title", f"program {index}")
        meta.child("rating", _RATINGS[index % len(_RATINGS)])
        meta.child("category", category)
        data = segment.child("payload")
        data.add_text(
            "".join(rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ") for _ in range(payload))
        )
    return root


def nested(depth: int = 8, fanout: int = 2, seed: int = 19) -> Element:
    """A parametric tree for depth/RAM sweeps (E5).

    Tags cycle through a fixed alphabet so descendant rules stay busy
    at every level.
    """
    rng = random.Random(seed)
    tags = ["n0", "n1", "n2", "n3"]

    def build(node: Element, level: int) -> None:
        if level >= depth:
            node.add_text(str(rng.randrange(100)))
            return
        for index in range(fanout):
            child = node.child(tags[(level + index) % len(tags)])
            build(child, level + 1)

    root = Element("root")
    build(root, 0)
    return root
