"""Synthetic workloads standing in for the demo's datasets.

The original demonstrator used real collaborative and multimedia data
we do not have; these seeded generators produce documents with the
same structural shapes (see DESIGN.md, substitution table):

* :func:`hospital`      -- deep, regular medical records (the paper's
  recurring motivating example, with sensitive branches);
* :func:`bibliography`  -- shallow, bushy publication records;
* :func:`agenda`        -- the collaborative-community application;
* :func:`video_catalog` -- the multimedia-dissemination application;
* :func:`nested`        -- parametric depth/fan-out sweeps (E5).

:mod:`repro.workloads.rulegen` provides matching access-control
profiles, :mod:`repro.workloads.querygen` matching query mixes.
"""

from repro.workloads.docgen import (
    agenda,
    bibliography,
    hospital,
    nested,
    video_catalog,
)
from repro.workloads.rulegen import (
    agenda_rules,
    hospital_rules,
    parental_rules,
    synthetic_rules,
)
from repro.workloads.querygen import hospital_queries, random_query

__all__ = [
    "agenda",
    "agenda_rules",
    "bibliography",
    "hospital",
    "hospital_queries",
    "hospital_rules",
    "nested",
    "parental_rules",
    "random_query",
    "synthetic_rules",
    "video_catalog",
]
