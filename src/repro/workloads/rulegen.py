"""Access-control profiles matching the synthetic datasets.

The hospital profile mirrors the motivating examples of the paper and
its companion ([2]): role-specific, value-dependent, exception-ridden
policies that no static encryption scheme can follow cheaply.
"""

from __future__ import annotations

import random

from repro.core.rules import AccessRule, RuleSet


def hospital_rules() -> RuleSet:
    """Roles over the hospital dataset.

    * doctor      -- everything except psychiatric branches and billing;
    * nurse       -- prescriptions only (plus names to administer them);
    * accountant  -- billing and names only;
    * researcher  -- diagnoses but never names or ssn (anonymized view).
    """
    rules = [
        ("+", "doctor", "/hospital"),
        ("-", "doctor", "//psychiatric"),
        ("-", "doctor", "//billing"),
        ("+", "nurse", "//patient/name"),
        ("+", "nurse", "//prescription"),
        ("+", "accountant", "//patient/name"),
        ("+", "accountant", "//billing"),
        ("+", "researcher", "//episode"),
        ("-", "researcher", "//psychiatric"),
        ("+", "researcher", "//ward"),
        ("-", "researcher", "//patient/name"),
        ("-", "researcher", "//patient/ssn"),
        ("-", "researcher", "//billing"),
    ]
    return RuleSet(
        AccessRule.parse(sign, subject, path, rule_id=f"H{i}")
        for i, (sign, subject, path) in enumerate(rules)
    )


def agenda_rules(members: list[str]) -> RuleSet:
    """Initial community policy: everyone sees events, private parts
    stay with their owner."""
    rules: list[AccessRule] = []
    counter = 0
    for member in members:
        rules.append(
            AccessRule.parse("+", member, "/agenda", rule_id=f"A{counter}")
        )
        counter += 1
        rules.append(
            AccessRule.parse("-", member, "//private", rule_id=f"A{counter}")
        )
        counter += 1
        rules.append(
            AccessRule.parse(
                "+",
                member,
                f'//member[owner = "{member}"]//private/notes',
                rule_id=f"A{counter}",
            )
        )
        counter += 1
    return RuleSet(rules)


def owner_private_rules(members: list[str]) -> RuleSet:
    """Variant used by E8's churn: private parts gated per owner section."""
    rules: list[AccessRule] = []
    counter = 0
    for member in members:
        rules.append(
            AccessRule.parse("+", member, "/agenda", rule_id=f"B{counter}")
        )
        counter += 1
        rules.append(
            AccessRule.parse("-", member, "//private", rule_id=f"B{counter}")
        )
        counter += 1
    return RuleSet(rules)


def parental_rules(child: str = "kid", max_rating: str = "PG") -> RuleSet:
    """Parental control over the video stream (demo application 2).

    The child sees every segment whose rating is acceptable; ratings
    order G < PG < PG13 < R.  Parents adjust ``max_rating`` at will --
    with client-side evaluation this is a one-record policy update.
    """
    order = ["G", "PG", "PG13", "R"]
    allowed = order[: order.index(max_rating) + 1]
    # The deny sits on the segment; permits target the segment's
    # children so that Most-Specific-Object overrides the propagated
    # prohibition (a permit on the segment itself would lose to the
    # denial under Denial-Takes-Precedence).
    rules = [AccessRule.parse("-", child, "//segment", rule_id="P0"),
             AccessRule.parse("+", child, "/stream", rule_id="P1")]
    for index, rating in enumerate(allowed):
        rules.append(
            AccessRule.parse(
                "+",
                child,
                f'//segment[meta/rating = "{rating}"]/*',
                rule_id=f"P{index + 2}",
            )
        )
    return RuleSet(rules)


def subscription_rules(subscriber: str, categories: list[str]) -> RuleSet:
    """Category-based subscription tiers for the sectioned stream.

    Rules are purely structural (``/stream/news``), so the skip index
    can rule whole sections out by their tag bitmaps -- a subscriber
    without the sports tier never transfers nor decrypts the sports
    section (experiments E2, E7).
    """
    rules = []
    for index, category in enumerate(categories):
        rules.append(
            AccessRule.parse(
                "+",
                subscriber,
                f"/stream/{category}",
                rule_id=f"S{index}",
            )
        )
    return RuleSet(rules)


def synthetic_rules(
    count: int,
    subject: str = "u",
    tags: list[str] | None = None,
    seed: int = 23,
    negative_fraction: float = 0.25,
) -> RuleSet:
    """Random rule sets over a tag alphabet, for rule-count sweeps (E3)."""
    rng = random.Random(seed)
    tags = tags or ["ward", "patient", "episode", "diagnosis", "prescription",
                    "billing", "name", "drug"]
    rules: list[AccessRule] = []
    for index in range(count):
        sign = "-" if rng.random() < negative_fraction else "+"
        steps = rng.randrange(1, 4)
        parts = []
        for __ in range(steps):
            axis = "//" if rng.random() < 0.6 else "/"
            tag = rng.choice(tags + ["*"])
            parts.append(f"{axis}{tag}")
        path = "".join(parts)
        if not path.startswith("/"):
            path = "/" + path
        if rng.random() < 0.3:
            predicate_tag = rng.choice(tags)
            path += f"[{predicate_tag}]"
        rules.append(
            AccessRule.parse(sign, subject, path, rule_id=f"X{index}")
        )
    return RuleSet(rules)
