"""Query mixes for the pull scenario."""

from __future__ import annotations

import random

HOSPITAL_QUERIES = [
    "//diagnosis",
    "//patient/name",
    "//prescription/drug",
    "//episode[diagnosis = \"influenza\"]",
    "//ward//billing",
    "//patient[name = \"Alice\"]",
]


def hospital_queries() -> list[str]:
    """The fixed query mix used by the pull benchmarks."""
    return list(HOSPITAL_QUERIES)


def random_query(tags: list[str], seed: int = 31, max_steps: int = 3) -> str:
    """A random query in the fragment over the given tag alphabet."""
    rng = random.Random(seed)
    steps = []
    for __ in range(rng.randrange(1, max_steps + 1)):
        axis = "//" if rng.random() < 0.6 else "/"
        steps.append(f"{axis}{rng.choice(tags)}")
    query = "".join(steps)
    return query if query.startswith("/") else "/" + query
