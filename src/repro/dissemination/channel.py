"""An unsecured broadcast channel with a bandwidth model."""

from __future__ import annotations

from typing import Callable

from repro.smartcard.resources import SimClock


class BroadcastChannel:
    """Delivers frames from one publisher to every subscriber.

    The channel is *unsecured*: anything on it is ciphertext, and the
    tamper tests inject corrupted frames here.  Broadcast time is
    charged once regardless of the number of subscribers.
    """

    def __init__(
        self,
        bandwidth_bytes_per_second: float = 512 * 1024.0,
        clock: SimClock | None = None,
    ) -> None:
        self.bandwidth = bandwidth_bytes_per_second
        self.clock = clock or SimClock()
        self._listeners: list[Callable[[str, int, bytes], None]] = []
        self.bytes_broadcast = 0
        self.frames_broadcast = 0
        self._tamper: Callable[[str, int, bytes], bytes] | None = None

    def subscribe(self, listener: Callable[[str, int, bytes], None]) -> None:
        """Register a subscriber callback ``(kind, index, payload)``."""
        self._listeners.append(listener)

    def set_tamper(
        self, tamper: Callable[[str, int, bytes], bytes] | None
    ) -> None:
        """Install an in-channel adversary (None removes it)."""
        self._tamper = tamper

    def broadcast(self, kind: str, index: int, payload: bytes) -> None:
        """Push one frame to all subscribers."""
        self.bytes_broadcast += len(payload)
        self.frames_broadcast += 1
        self.clock.add("broadcast", len(payload) / self.bandwidth)
        if self._tamper is not None:
            payload = self._tamper(kind, index, payload)
        for listener in self._listeners:
            listener(kind, index, payload)
