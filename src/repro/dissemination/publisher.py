"""Publisher side of the push scenario."""

from __future__ import annotations

from repro.crypto.container import DocumentContainer
from repro.dissemination.channel import BroadcastChannel
from repro.smartcard.card import encode_header


class StreamPublisher:
    """Broadcasts a sealed document over a channel, chunk by chunk.

    In the demo this is the multimedia-stream head-end: the container
    is produced once (by :class:`repro.terminal.api.Publisher`) and
    then pushed; subscribers' rights differ, the broadcast does not.
    """

    def __init__(self, channel: BroadcastChannel) -> None:
        self.channel = channel

    def broadcast_document(self, container: DocumentContainer) -> None:
        """Send the header followed by every chunk, in order."""
        self.channel.broadcast(
            "header", 0, encode_header(container.header)
        )
        for index, blob in enumerate(container.chunks):
            self.channel.broadcast("chunk", index, blob)
        self.channel.broadcast("end", 0, b"")
