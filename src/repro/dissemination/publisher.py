"""Publisher side of the push scenario.

Besides broadcasting sealed chunks, the head-end (which holds the
plaintext and the policy *before* sealing) can preflight the whole
audience in one parse pass via
:func:`preview_subscriber_views` -- the shared-pass amortization that
makes wide dissemination scale.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.core.multicast import multicast_view_texts
from repro.core.rules import RuleSet, Sign, Subject
from repro.crypto.container import DocumentContainer
from repro.dissemination.channel import BroadcastChannel
from repro.smartcard.card import encode_header
from repro.xmlstream.events import Event


def preview_subscriber_views(
    events: Iterable[Event],
    rules: RuleSet,
    subscribers: Sequence[Subject | str],
    default: Sign = Sign.DENY,
    mode: ViewMode = ViewMode.SKELETON,
    registry: PolicyRegistry | None = None,
) -> dict[str, str]:
    """What each subscriber's card will emit, computed in ONE pass.

    The head-end holds the plaintext and the policy before sealing, so
    it can preflight the whole audience: one
    :class:`~repro.core.multicast.MultiSubjectEvaluator` pass over the
    document yields every subscriber's authorized view -- N views for
    the price of one parse, instead of N independent evaluations.
    Used to validate a policy change against the subscriber base
    before re-broadcasting.
    """
    return multicast_view_texts(
        events, rules, subscribers, default=default, mode=mode, registry=registry
    )


class StreamPublisher:
    """Broadcasts a sealed document over a channel, chunk by chunk.

    In the demo this is the multimedia-stream head-end: the container
    is produced once (by :class:`repro.terminal.api.Publisher`) and
    then pushed; subscribers' rights differ, the broadcast does not.

    The publisher owns a :class:`~repro.core.compiled.PolicyRegistry`
    so repeated preflights (one per policy revision) reuse compiled
    automata across revisions that share sub-policies.
    """

    def __init__(
        self,
        channel: BroadcastChannel,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.channel = channel
        self.registry = registry if registry is not None else PolicyRegistry()

    def broadcast_document(self, container: DocumentContainer) -> None:
        """Send the header followed by every chunk, in order."""
        self.channel.broadcast(
            "header", 0, encode_header(container.header)
        )
        for index, blob in enumerate(container.chunks):
            self.channel.broadcast("chunk", index, blob)
        self.channel.broadcast("end", 0, b"")

    def preview_views(
        self,
        events: Iterable[Event],
        rules: RuleSet,
        subscribers: Sequence[Subject | str],
        default: Sign = Sign.DENY,
        mode: ViewMode = ViewMode.SKELETON,
    ) -> dict[str, str]:
        """Shared-pass policy preflight over this publisher's registry."""
        return preview_subscriber_views(
            events,
            rules,
            subscribers,
            default=default,
            mode=mode,
            registry=self.registry,
        )
