"""Selective data dissemination (the paper's push scenario).

"our approach can support push-based scenarios (e.g., selective data
dissemination) in a very similar way" (Section 2) -- and the second
demo application is "the selective dissemination of multimedia streams
through unsecured channels" (Section 3).

A publisher broadcasts one encrypted chunk stream over an unsecured
channel; every subscriber's card filters it against the subscriber's
own access rules.  There is no backchannel, so skipping cannot save
*broadcast* bandwidth -- but a subscriber's terminal still drops the
chunks its card does not need, saving the card link and decryption
time, which is what makes real-time rates reachable (E7).
"""

from repro.dissemination.carousel import BroadcastCarousel, LateJoiningSubscriber
from repro.dissemination.channel import BroadcastChannel
from repro.dissemination.publisher import StreamPublisher, preview_subscriber_views
from repro.dissemination.subscriber import Subscriber

__all__ = [
    "BroadcastCarousel",
    "BroadcastChannel",
    "LateJoiningSubscriber",
    "StreamPublisher",
    "Subscriber",
    "preview_subscriber_views",
]
