"""Broadcast carousel: cyclic re-transmission for late joiners.

Classic data-dissemination systems repeat the stream in cycles so that
receivers may tune in at any moment.  Our chunks are independently
decryptable and positionally authenticated, which makes the carousel
almost free: a subscriber who joins mid-cycle simply waits for the
next ``header`` frame and starts there -- no state from the missed
cycle is needed, and the skip index keeps working because chunk
offsets are absolute.

The carousel also demonstrates a subtle interaction with replay
protection: repeated cycles of the *same* version are accepted (the
version register checks ``<``, not ``<=``), while an attacker
injecting an older version's frames between cycles is still rejected.
"""

from __future__ import annotations

from repro.crypto.container import DocumentContainer
from repro.dissemination.channel import BroadcastChannel
from repro.dissemination.publisher import StreamPublisher
from repro.dissemination.subscriber import Subscriber


class BroadcastCarousel:
    """Repeats a container over a channel for a number of cycles."""

    def __init__(self, channel: BroadcastChannel) -> None:
        self.channel = channel
        self._publisher = StreamPublisher(channel)
        self.cycles_sent = 0

    def run(self, container: DocumentContainer, cycles: int = 2) -> None:
        """Broadcast ``cycles`` complete repetitions of the document."""
        if cycles < 1:
            raise ValueError("at least one cycle")
        for __ in range(cycles):
            self._publisher.broadcast_document(container)
            self.cycles_sent += 1


class LateJoiningSubscriber:
    """Wraps a subscriber so it only engages from the next cycle start.

    Frames arriving before the first ``header`` (the tail of the cycle
    already in progress when the user tuned in) are counted and
    discarded; once a header arrives, the inner subscriber runs a
    normal session.  After its document completes, further cycles are
    ignored (the view is already complete).
    """

    def __init__(self, subscriber: Subscriber) -> None:
        self.subscriber = subscriber
        self.joined = False
        self.frames_missed = 0

    def on_frame(self, kind: str, index: int, payload: bytes) -> None:
        if self.subscriber.state.document_done:
            return  # got a full cycle already
        if not self.joined:
            if kind != "header":
                self.frames_missed += 1
                return
            self.joined = True
        if kind == "end" and not self.subscriber.state.document_done:
            # Mid-join: the end of a cycle we started cleanly belongs
            # to us; the end of the partial first cycle never reaches
            # here because joining waits for a header.
            pass
        self.subscriber.on_frame(kind, index, payload)

    @property
    def view(self) -> str:
        return self.subscriber.view

    @property
    def ok(self) -> bool:
        return self.subscriber.ok
