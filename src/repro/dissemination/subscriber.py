"""Subscriber side of the push scenario.

Each subscriber owns a card with its own rules; the terminal-side
shim decides, per broadcast chunk, whether the card still needs it --
if the card's skip directive already jumped past the chunk, it is
dropped *before* the 2 KB/s card link, which is where the skip index
pays off in push mode.

There is no backchannel, so pending subtrees must use the BUFFER
strategy (REFETCH would require asking the publisher to re-send).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.errors import ResourceExhausted, TamperDetected, TransportError
from repro.smartcard.apdu import (
    CommandAPDU,
    Instruction,
    ResponseAPDU,
    StatusWord,
    transmit_chunk_batch,
)
from repro.smartcard.card import SmartCard, decode_header, encode_groups
from repro.smartcard.resources import LinkModel, SessionMetrics, SimClock
from repro.terminal.transfer import TransferPolicy


@dataclass(slots=True)
class SubscriberState:
    """Progress of one subscriber through the broadcast."""

    next_needed_offset: int = 0
    document_done: bool = False
    failed: str | None = None
    failed_sw: int | None = None
    output: bytearray = field(default_factory=bytearray)


class Subscriber:
    """One community member listening to the broadcast."""

    def __init__(
        self,
        name: str,
        card: SmartCard,
        rules_version: int,
        rule_records: list[bytes],
        link: LinkModel | None = None,
        clock: SimClock | None = None,
        view_mode: ViewMode = ViewMode.SKELETON,
        registry: PolicyRegistry | None = None,
        transfer: TransferPolicy | None = None,
        groups: frozenset[str] = frozenset(),
    ) -> None:
        self.name = name
        #: Roles the subscriber holds; rules written for any of them
        #: apply.  Same-tier subscribers sharing a group (and a
        #: registry) therefore share ONE compiled policy -- their
        #: effective sub-policies fingerprint identically.
        self.groups = groups
        self.card = card
        if registry is not None:
            # A fleet of simulated subscribers may share one compiled-
            # policy cache: subscribers on the same tier carry the same
            # rules, and carousel cycles repeat the same session, so
            # the automata are compiled once for the whole fleet.
            card.use_registry(registry)
        self.link = link or LinkModel()
        self.clock = clock or SimClock()
        self.metrics = SessionMetrics()
        self.metrics.clock = self.clock
        self._rules_version = rules_version
        self._rule_records = rule_records
        self._view_mode = view_mode
        #: There is no DSP in push mode, so only the APDU half of the
        #: policy applies: up to ``apdu_batch`` broadcast chunks ride
        #: one PUT_CHUNK_BATCH exchange (one resume offset, one drain).
        self.transfer = transfer or TransferPolicy()
        self.state = SubscriberState()
        self._chunk_size = 0
        self._ended = False
        self._pending_batch: list[tuple[int, bytes]] = []

    # -- card link ------------------------------------------------------------

    def _transmit(self, command: CommandAPDU) -> ResponseAPDU:
        response = self.card.process(command)
        nbytes = command.wire_size + response.wire_size
        self.metrics.apdu_count += 1
        self.metrics.bytes_to_card += command.wire_size
        self.metrics.bytes_from_card += response.wire_size
        self.clock.add(f"link:{self.name}", self.link.apdu_overhead_seconds)
        self.clock.add(f"link:{self.name}", self.link.transfer_seconds(nbytes))
        return response

    def _drain(self, last: ResponseAPDU) -> None:
        response = last
        while (response.sw & 0xFF00) == 0x6100:
            response = self._transmit(CommandAPDU(Instruction.GET_OUTPUT))
            self.state.output.extend(response.data)
            self.metrics.output_bytes += len(response.data)

    # -- broadcast listener -------------------------------------------------------

    def on_frame(self, kind: str, index: int, payload: bytes) -> None:
        """Channel callback; drops frames the card no longer needs."""
        if self.state.failed is not None:
            return
        if self.state.document_done and self._ended:
            # A completed session ignores further carousel cycles.
            return
        if kind == "header":
            self._on_header(payload)
        elif kind == "chunk":
            self._on_chunk(index, payload)
        elif kind == "end":
            self._on_end()

    def _fail(self, context: str, response: ResponseAPDU) -> None:
        self.state.failed = f"{context}: {response.sw:#06x}"
        self.state.failed_sw = response.sw

    def _on_header(self, payload: bytes) -> None:
        header = decode_header(payload)
        self._chunk_size = header.chunk_size
        response = self._transmit(
            CommandAPDU(Instruction.SELECT, data=b"repro.applet")
        )
        doc = header.doc_id.encode("utf-8")
        subject = self.name.encode("utf-8")
        begin = bytes([0, len(doc)]) + doc + bytes([len(subject)]) + subject
        begin += encode_groups(self.groups)
        if self._view_mode is ViewMode.PRUNE:
            begin = bytes([0x04]) + begin[1:]
        response = self._transmit(
            CommandAPDU(Instruction.BEGIN_SESSION, data=begin)
        )
        if not response.ok:
            self._fail("begin", response)
            return
        response = self._transmit(
            CommandAPDU(Instruction.PUT_HEADER, data=payload)
        )
        if not response.ok:
            self._fail("header", response)
            return
        for rule_index, record in enumerate(self._rule_records):
            data = struct.pack(">Q", self._rules_version) + record
            response = self._transmit(
                CommandAPDU(
                    Instruction.PUT_RULES,
                    p1=rule_index >> 8,
                    p2=rule_index & 0xFF,
                    data=data,
                )
            )
            if not response.ok:
                self._fail(f"rule {rule_index}", response)
                return

    def _on_chunk(self, index: int, payload: bytes) -> None:
        if self.state.failed or self.state.document_done:
            return
        chunk_end = (index + 1) * self._chunk_size
        if chunk_end <= self.state.next_needed_offset:
            # The card already skipped past this chunk: drop it at the
            # terminal, before the card link.  (With batching the resume
            # offset is only as fresh as the last flush; frames it could
            # not rule out are dropped undecrypted on the card instead.)
            self.metrics.chunks_skipped += 1
            return
        if self.transfer.apdu_batch == 1:
            self.metrics.chunks_sent += 1
            response = self._transmit(
                CommandAPDU(
                    Instruction.PUT_CHUNK,
                    p1=index >> 8,
                    p2=index & 0xFF,
                    data=payload,
                )
            )
            if not response.ok:
                self._fail(f"chunk {index}", response)
                return
            next_offset, done = struct.unpack(">QB", response.data[:9])
            self.state.next_needed_offset = next_offset
            self._drain(response)
            if done:
                self.state.document_done = True
            return
        self._pending_batch.append((index, payload))
        if len(self._pending_batch) >= self.transfer.apdu_batch:
            self._flush_batch()

    def _flush_batch(self) -> None:
        """Push the accumulated frames through one batch exchange."""
        if not self._pending_batch or self.state.failed:
            self._pending_batch.clear()
            return
        batch = self._pending_batch
        self._pending_batch = []
        first, last = batch[0][0], batch[-1][0]
        outcome = transmit_chunk_batch(
            self._transmit, batch, self.link.max_command_payload
        )
        if not outcome.completed:
            self._fail(f"chunk batch {first}..{last}", outcome.response)
            return
        self.metrics.chunks_sent += len(batch) - outcome.dropped
        self.metrics.chunks_wasted += outcome.dropped
        self.metrics.bytes_wasted += outcome.dropped_bytes
        self.state.next_needed_offset = outcome.next_offset
        self.state.output.extend(outcome.piggyback)
        self.metrics.output_bytes += len(outcome.piggyback)
        self._drain(outcome.response)
        if outcome.done:
            self.state.document_done = True

    def _on_end(self) -> None:
        if self.state.failed:
            return
        self._flush_batch()
        if self.state.failed:
            # Keep the flush's specific card-error diagnostic rather
            # than misreporting it as a truncated broadcast.
            return
        if not self.state.document_done:
            self.state.failed = "stream ended before document completed"
            return
        response = self._transmit(CommandAPDU(Instruction.END_DOCUMENT))
        if not response.ok:
            self._fail("end", response)
            return
        self._drain(response)
        self._ended = True
        self._finalize_metrics()

    def _finalize_metrics(self) -> None:
        soe = self.card.soe
        self.metrics.ram_high_water = soe.memory.high_water
        self.metrics.card_cycles = soe.cycles_used
        self.metrics.bytes_decrypted = self.card.applet.bytes_decrypted
        self.metrics.bytes_skipped = self.card.applet.bytes_skipped
        self.metrics.max_pending_bytes = self.card.applet.max_pending_bytes

    # -- results --------------------------------------------------------------------

    @property
    def view(self) -> str:
        """The authorized view received so far."""
        return self.state.output.decode("utf-8")

    @property
    def ok(self) -> bool:
        return self.state.failed is None and self.state.document_done

    def require_ok(self) -> None:
        """Raise the typed error behind a failed or truncated session.

        Push mode reports card refusals as recorded status words (there
        is no exception channel across a broadcast); this converts the
        record into the :mod:`repro.errors` taxonomy for callers that
        want one ``except`` ladder across pull and push.
        """
        if self.ok:
            return
        detail = self.state.failed or "stream ended before document completed"
        message = f"subscriber {self.name!r}: {detail}"
        if self.state.failed_sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED:
            raise TamperDetected(message, subject=self.name)
        if self.state.failed_sw == StatusWord.MEMORY_FAILURE:
            raise ResourceExhausted(message, subject=self.name)
        raise TransportError(message, subject=self.name)
