"""One-call experiment runner.

Every benchmark builds a fresh full stack for each measured point, so
no state leaks between rows; the simulated clock makes the numbers
deterministic across runs and machines.  Scenarios are constructed
through the :class:`repro.community.Community` facade -- the same
wiring applications use -- which composes exactly the legacy stack
(PKI, DSP, publisher, terminal, card), so every metric is bit-for-bit
what the hand-wired path produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.community import Community
from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.core.rules import RuleSet
from repro.skipindex.encoder import IndexMode
from repro.smartcard.applet import PendingStrategy
from repro.smartcard.resources import SessionMetrics
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.events import Event


@dataclass(slots=True)
class PullSetup:
    """Parameters of one measured pull session."""

    events: list[Event]
    rules: RuleSet
    subject: str
    query: str | None = None
    index_mode: IndexMode = IndexMode.RECURSIVE
    strategy: PendingStrategy = PendingStrategy.BUFFER
    view_mode: ViewMode = ViewMode.SKELETON
    chunk_size: int = 96
    ram_quota: int | None = 1024
    strict_memory: bool = False
    doc_id: str = "bench-doc"
    owner: str = "owner"
    #: Optional compiled-policy cache shared across sessions; sweeps
    #: that re-run the same policy point pay compilation only once.
    registry: PolicyRegistry | None = None
    #: Chunk transport plan (prefetch window / APDU batch); ``None``
    #: is the sequential window=1, batch=1 path.
    transfer: TransferPolicy | None = None


@dataclass(slots=True)
class PullOutcome:
    """The result and all measurements of one session."""

    xml: str
    fragments: list[tuple[int, str]]
    metrics: SessionMetrics
    container_bytes: int = 0
    plaintext_bytes: int = 0


def run_pull_session(setup: PullSetup) -> PullOutcome:
    """Publish + query through a fresh facade stack; view and metrics."""
    community = Community(registry=setup.registry)
    owner = community.enroll(setup.owner)
    subject = community.enroll(
        setup.subject,
        ram_quota=setup.ram_quota,
        strict_memory=setup.strict_memory,
    )
    document = owner.publish(
        setup.events,
        setup.rules,
        [subject],
        doc_id=setup.doc_id,
        index_mode=setup.index_mode,
        chunk_size=setup.chunk_size,
    )
    with subject.open(document, transfer=setup.transfer) as session:
        stream = session.query(
            setup.query,
            strategy=setup.strategy,
            view_mode=setup.view_mode,
        )
        result = stream.result()
        metrics = stream.metrics
    container = document.container
    return PullOutcome(
        xml=result.xml,
        fragments=result.fragments,
        metrics=metrics,
        container_bytes=container.stored_size,
        plaintext_bytes=container.header.total_length,
    )


# -- reporting ---------------------------------------------------------------


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned table (also returned as a string)."""
    materialized = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    text = "\n".join(lines)
    print(text)
    return text


def print_series(title: str, pairs: Iterable[tuple]) -> str:
    """Render an x/y series as a two-column table."""
    return print_table(title, ["x", "y"], [list(p) for p in pairs])
