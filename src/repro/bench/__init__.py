"""Benchmark harness utilities: session runners and table printing."""

from repro.bench.harness import (
    PullSetup,
    PullOutcome,
    print_series,
    print_table,
    run_pull_session,
)

__all__ = [
    "PullOutcome",
    "PullSetup",
    "print_series",
    "print_table",
    "run_pull_session",
]
