"""End-to-end session wiring: one user's terminal with its card.

A :class:`Terminal` owns a smart card, a proxy to a DSP and the user's
PKI identity.  ``unlock_document`` pulls the wrapped document secret
from the DSP, unwraps it with the user's key pair and provisions the
card over the (simulated) secure channel -- after that, ``query`` runs
entire pull sessions through the card.
"""

from __future__ import annotations

import warnings

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.crypto.pki import SimulatedPKI
from repro.dsp.client import DSPClient
from repro.errors import DocumentLocked
from repro.smartcard.applet import PendingStrategy
from repro.smartcard.card import SmartCard
from repro.smartcard.resources import LinkModel, SessionMetrics
from repro.smartcard.soe import SecureOperatingEnvironment
from repro.terminal.api import AuthorizedResult
from repro.terminal.proxy import CardProxy
from repro.terminal.transfer import TransferPolicy


class Terminal:
    """A user terminal hosting a smart card (Figure 3).

    .. deprecated:: 1.2
        Hand-wiring a ``Terminal`` is the legacy path; enroll a member
        in a :class:`repro.community.Community` and use
        ``member.open(document)`` sessions instead.  The shim stays
        because the facade itself composes it.
    """

    def __init__(
        self,
        user: str,
        dsp: DSPClient,
        pki: SimulatedPKI,
        card: SmartCard | None = None,
        link: LinkModel | None = None,
        ram_quota: int | None = 1024,
        strict_memory: bool = True,
        registry: PolicyRegistry | None = None,
        transfer: TransferPolicy | None = None,
        _warn: bool = True,
    ) -> None:
        if _warn:
            warnings.warn(
                "constructing Terminal directly is deprecated; use "
                "repro.community.Community.enroll(...).open(...)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.user = user
        self.dsp = dsp
        self.pki = pki
        self.clock = dsp.clock
        if card is None:
            soe = SecureOperatingEnvironment(
                ram_quota=ram_quota,
                strict_memory=strict_memory,
                clock=self.clock,
            )
            card = SmartCard(soe, registry=registry)
        elif registry is not None:
            # Repeated sessions on an existing card share the given
            # compiled-policy cache instead of the card's private one.
            card.use_registry(registry)
        self.card = card
        self.proxy = CardProxy(
            card, dsp, link=link, clock=self.clock, transfer=transfer
        )
        self._unlocked: set[str] = set()

    def unlock_document(self, doc_id: str, owner: str) -> None:
        """Fetch + unwrap the document secret, provision the card."""
        if doc_id in self._unlocked:
            return
        wrapped = self.dsp.get_wrapped_key(doc_id, self.user)
        secret = self.pki.unwrap_secret(self.user, owner, wrapped)
        self.proxy.provision_key(doc_id, secret)
        self._unlocked.add(doc_id)

    def query(
        self,
        doc_id: str,
        query: str | None = None,
        owner: str | None = None,
        subject: str | None = None,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
        groups: frozenset[str] = frozenset(),
    ) -> tuple[AuthorizedResult, SessionMetrics]:
        """Run one pull session; returns the view and its metrics.

        ``groups`` carries the user's roles -- rules written for any of
        them apply alongside rules written for the user by name.

        Raises :class:`~repro.errors.DocumentLocked` when the document
        was never unlocked on this terminal's card and no ``owner`` is
        given to unlock it now.
        """
        if owner is not None:
            self.unlock_document(doc_id, owner)
        elif doc_id not in self.card.soe.keyring:
            raise DocumentLocked(
                f"document {doc_id!r} was never unlocked on "
                f"{self.user!r}'s card; pass owner= or call "
                "unlock_document first",
                doc_id=doc_id,
                subject=self.user,
            )
        outcome = self.proxy.query(
            doc_id,
            subject or self.user,
            query=query,
            strategy=strategy,
            view_mode=view_mode,
            groups=groups,
        )
        result = AuthorizedResult(xml=outcome.xml, fragments=outcome.fragments)
        return result, outcome.metrics
