"""The terminal-side proxy: XML API above, APDUs and DSP calls below.

The proxy owns the *mechanics* of a session: fetching encrypted chunks
from the DSP, framing them into APDUs, honouring the card's skip
directives (it simply does not fetch or transmit skipped chunks -- that
is where the bandwidth saving of the skip index materializes), draining
the card's authorized output, and replaying byte ranges for granted
refetches.  It never sees a decryption key: everything through here is
ciphertext or already-authorized output.

Chunk movement is planned by a
:class:`~repro.terminal.transfer.TransferPolicy`: the proxy keeps a
speculative prefetch window of ``window`` chunks ahead of the card's
cursor (one ranged DSP request per window refill) and packs up to
``apdu_batch`` chunks into one ``PUT_CHUNK_BATCH`` exchange, so the
card answers with one resume offset and one output drain per batch.
Speculation interacts with the skip index: when a skip directive lands
mid-window, prefetched chunks past the resume offset are discarded
before the card link and charged to ``SessionMetrics.bytes_wasted``
(chunks already inside the in-flight batch are dropped undecrypted on
the card and charged the same way).  ``window=1, apdu_batch=1`` is the
paper's original sequential transport, byte for byte.
"""

from __future__ import annotations

import codecs
import struct
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.delivery import ViewMode
from repro.errors import ResourceExhausted, TamperDetected, TransportError
from repro.smartcard.apdu import (
    BatchOutcome,
    CommandAPDU,
    Instruction,
    ResponseAPDU,
    StatusWord,
    transmit_chunk_batch,
)
from repro.smartcard.applet import PendingStrategy
from repro.smartcard.card import SmartCard, encode_groups, encode_header
from repro.smartcard.resources import LinkModel, SessionMetrics, SimClock
from repro.dsp.client import DSPClient
from repro.terminal.transfer import TransferPolicy

_FLAG_HAS_QUERY = 0x01
_FLAG_REFETCH = 0x02
_FLAG_PRUNE = 0x04


class ProxyError(TransportError):
    """A session failed (card refused, integrity violation, ...)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class CardTampered(ProxyError, TamperDetected):
    """The card reported tamper evidence (``0x6982``) mid-session."""


class CardOutOfResources(ProxyError, ResourceExhausted):
    """The card ran out of secure RAM (``0x6581``) mid-session."""


def _proxy_error(message: str, status: int) -> ProxyError:
    """The taxonomy-precise ProxyError for a card status word."""
    if status == StatusWord.SECURITY_STATUS_NOT_SATISFIED:
        return CardTampered(message, status=status)
    if status == StatusWord.MEMORY_FAILURE:
        return CardOutOfResources(message, status=status)
    return ProxyError(message, status=status)


@dataclass(slots=True)
class ViewPiece:
    """One incremental slice of an authorized view.

    ``kind`` is ``"view"`` for in-order slices of the main pass and
    ``"fragment"`` for a refetched pending subtree.  ``position`` keys
    document order: for fragments it is the subtree's absolute
    plaintext offset; for main-view slices it is the running character
    offset inside the view.  ``entry_id`` is set on fragments only.
    """

    kind: str
    text: str
    position: int
    entry_id: int | None = None


@dataclass(slots=True)
class QueryOutcome:
    """Result of one pull session through the card."""

    xml: str
    fragments: list[tuple[int, str]] = field(default_factory=list)
    metrics: SessionMetrics = field(default_factory=SessionMetrics)
    #: The container and rules versions this view was pulled under --
    #: the validators a view cache stores alongside the entry.  The
    #: proxy fills them as soon as the header and rules arrive;
    #: ``None`` only on outcomes constructed outside a pull.
    doc_version: "int | None" = None
    rules_version: "int | None" = None


class CardProxy:
    """Drives one smart card against one DSP."""

    def __init__(
        self,
        card: SmartCard,
        dsp: DSPClient,
        link: LinkModel | None = None,
        clock: SimClock | None = None,
        transfer: TransferPolicy | None = None,
    ) -> None:
        self.card = card
        self.dsp = dsp
        self.link = link or LinkModel()
        self.clock = clock or dsp.clock
        self.transfer = transfer or TransferPolicy()
        self._selected = False

    # -- link ------------------------------------------------------------

    def _transmit(
        self, command: CommandAPDU, metrics: SessionMetrics, context: str
    ) -> ResponseAPDU:
        """Send one APDU over the 2 KB/s link and account for it."""
        response = self.card.process(command)
        nbytes = command.wire_size + response.wire_size
        metrics.apdu_count += 1
        metrics.bytes_to_card += command.wire_size
        metrics.bytes_from_card += response.wire_size
        self.clock.add("link", self.link.apdu_overhead_seconds)
        self.clock.add("link", self.link.transfer_seconds(nbytes))
        if not response.ok:
            raise _proxy_error(
                f"card error {response.sw:#06x} during {context}",
                response.sw,
            )
        return response

    def select(self, metrics: SessionMetrics | None = None) -> None:
        metrics = metrics or SessionMetrics()
        self._transmit(
            CommandAPDU(Instruction.SELECT, data=b"repro.applet"),
            metrics,
            "select",
        )
        self._selected = True

    def provision_key(self, doc_id: str, secret: bytes) -> None:
        """Install a document secret over the (simulated) secure channel."""
        metrics = SessionMetrics()
        if not self._selected:
            self.select(metrics)
        doc = doc_id.encode("utf-8")
        self._transmit(
            CommandAPDU(
                Instruction.ADMIN_PROVISION_KEY,
                data=bytes([len(doc)]) + doc + secret,
            ),
            metrics,
            "provision key",
        )

    # -- output draining -----------------------------------------------------

    def _drain_output(
        self, metrics: SessionMetrics, sink: bytearray, last: ResponseAPDU
    ) -> None:
        response = last
        while (response.sw & 0xFF00) == 0x6100:
            response = self._transmit(
                CommandAPDU(Instruction.GET_OUTPUT), metrics, "get output"
            )
            sink.extend(response.data)
            metrics.output_bytes += len(response.data)

    # -- pull session ------------------------------------------------------------

    def query(
        self,
        doc_id: str,
        subject: str,
        query: str | None = None,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
        groups: frozenset[str] = frozenset(),
        transfer: TransferPolicy | None = None,
    ) -> QueryOutcome:
        """Run a full pull session: fetch, filter, return the view.

        Drives the same generators as :meth:`stream_query` but skips
        the per-drain text decoding -- the buffered result needs one
        decode at the end, so the hot path stays as cheap as before
        the streaming API existed.  ``transfer`` overrides the proxy's
        transport plan for this session only.
        """
        policy = transfer if transfer is not None else self.transfer
        metrics = SessionMetrics()
        clock_snapshot = self.clock.snapshot()
        cycles_snapshot = self.card.soe.cycles_used
        if not self._selected:
            self.select(metrics)
        self._begin(doc_id, subject, query, strategy, view_mode, groups, metrics)
        header = self.dsp.get_header(doc_id)
        encoded_header = encode_header(header)
        metrics.dsp_requests += 1
        metrics.bytes_from_dsp += len(encoded_header)
        self._transmit(
            CommandAPDU(Instruction.PUT_HEADER, data=encoded_header),
            metrics,
            "put header",
        )
        rules_version = self._send_rules(doc_id, metrics)
        output = bytearray()
        chunk_cache: dict[int, bytes] = {}
        for __ in self._stream_document(
            doc_id, header, metrics, output, chunk_cache, policy
        ):
            pass
        fragments = [
            (entry_id, text)
            for entry_id, __, text in self._run_refetches(
                doc_id, header, metrics, chunk_cache, policy
            )
        ]
        self._fill_card_stats(metrics)
        metrics.clock = self.clock.since(clock_snapshot)
        metrics.card_cycles = self.card.soe.cycles_used - cycles_snapshot
        return QueryOutcome(
            xml=output.decode("utf-8"),
            fragments=fragments,
            metrics=metrics,
            doc_version=header.version,
            rules_version=rules_version,
        )

    def stream_query(
        self,
        doc_id: str,
        subject: str,
        query: str | None = None,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
        groups: frozenset[str] = frozenset(),
        outcome: QueryOutcome | None = None,
        transfer: TransferPolicy | None = None,
    ) -> Iterator[ViewPiece]:
        """Run a pull session incrementally, yielding view slices.

        Each :class:`ViewPiece` is yielded as soon as the card's output
        drain produces it, *before* later chunks are fetched from the
        DSP -- consuming the first piece therefore costs only the
        transfers up to the first authorized output.  ``outcome`` (if
        given) is filled in place: the full view text after the main
        pass, fragments as they are refetched, and the session metrics
        once the generator is exhausted.  The operation sequence is
        identical to :meth:`query`, so clocks and metrics are
        bit-for-bit the same however the stream is consumed.
        """
        if outcome is None:
            outcome = QueryOutcome(xml="")
        policy = transfer if transfer is not None else self.transfer
        metrics = outcome.metrics
        clock_snapshot = self.clock.snapshot()
        cycles_snapshot = self.card.soe.cycles_used
        if not self._selected:
            self.select(metrics)
        self._begin(doc_id, subject, query, strategy, view_mode, groups, metrics)
        header = self.dsp.get_header(doc_id)
        encoded_header = encode_header(header)
        metrics.dsp_requests += 1
        metrics.bytes_from_dsp += len(encoded_header)
        self._transmit(
            CommandAPDU(Instruction.PUT_HEADER, data=encoded_header),
            metrics,
            "put header",
        )
        outcome.doc_version = header.version
        outcome.rules_version = self._send_rules(doc_id, metrics)
        output = bytearray()
        chunk_cache: dict[int, bytes] = {}
        decoder = codecs.getincrementaldecoder("utf-8")()
        emitted_bytes = 0
        emitted_chars = 0
        for __ in self._stream_document(
            doc_id, header, metrics, output, chunk_cache, policy
        ):
            if len(output) > emitted_bytes:
                text = decoder.decode(bytes(output[emitted_bytes:]))
                emitted_bytes = len(output)
                if text:
                    yield ViewPiece("view", text, position=emitted_chars)
                    emitted_chars += len(text)
        tail = decoder.decode(b"", final=True)
        if tail:
            yield ViewPiece("view", tail, position=emitted_chars)
        outcome.xml = output.decode("utf-8")
        for entry_id, start, text in self._run_refetches(
            doc_id, header, metrics, chunk_cache, policy
        ):
            outcome.fragments.append((entry_id, text))
            yield ViewPiece("fragment", text, position=start, entry_id=entry_id)
        self._fill_card_stats(metrics)
        metrics.clock = self.clock.since(clock_snapshot)
        metrics.card_cycles = self.card.soe.cycles_used - cycles_snapshot

    def _begin(
        self,
        doc_id: str,
        subject: str,
        query: str | None,
        strategy: PendingStrategy,
        view_mode: ViewMode,
        groups: frozenset[str],
        metrics: SessionMetrics,
    ) -> None:
        # A new session must never see the previous session's pending
        # refetch entries -- a pull abandoned mid-window leaves them
        # set, and replaying them against a different document would
        # splice foreign fragments into the view.
        self._refetch_entries: list[tuple[int, int, int]] = []
        flags = 0
        payload = b""
        if query is not None:
            flags |= _FLAG_HAS_QUERY
            raw = query.encode("utf-8")
            payload = struct.pack(">H", len(raw)) + raw
        payload += encode_groups(groups)
        if strategy is PendingStrategy.REFETCH:
            flags |= _FLAG_REFETCH
        if view_mode is ViewMode.PRUNE:
            flags |= _FLAG_PRUNE
        doc = doc_id.encode("utf-8")
        subj = subject.encode("utf-8")
        data = (
            bytes([flags, len(doc)])
            + doc
            + bytes([len(subj)])
            + subj
            + payload
        )
        self._transmit(
            CommandAPDU(Instruction.BEGIN_SESSION, data=data),
            metrics,
            "begin session",
        )

    def _send_rules(self, doc_id: str, metrics: SessionMetrics) -> int:
        version, records = self.dsp.get_rules(doc_id)
        metrics.dsp_requests += 1
        metrics.bytes_from_dsp += sum(len(r) for r in records)
        for index, record in enumerate(records):
            data = struct.pack(">Q", version) + record
            self._transmit(
                CommandAPDU(
                    Instruction.PUT_RULES,
                    p1=index >> 8,
                    p2=index & 0xFF,
                    data=data,
                ),
                metrics,
                f"put rule {index}",
            )
        return version

    # -- chunk fetch planning ------------------------------------------------

    def _fetch_range(
        self,
        doc_id: str,
        start: int,
        count: int,
        metrics: SessionMetrics,
        chunk_cache: dict[int, bytes],
        policy: TransferPolicy,
    ) -> list[bytes]:
        """One DSP round trip for ``count`` consecutive chunks."""
        try:
            if count == 1 and policy.window == 1:
                blobs = [self.dsp.get_chunk(doc_id, start)]
            else:
                blobs = self.dsp.get_chunk_range(doc_id, start, count)
        except (IndexError, KeyError) as exc:
            raise ProxyError(
                f"DSP could not serve chunks {start}..{start + count - 1} "
                f"of {doc_id!r} (truncated document?)"
            ) from exc
        metrics.dsp_requests += 1
        for offset, blob in enumerate(blobs):
            chunk_cache[start + offset] = blob
            metrics.bytes_from_dsp += len(blob)
        return blobs

    @staticmethod
    def _missing_runs(start: int, stop: int, have) -> list[tuple[int, int]]:
        """Consecutive ``(start, count)`` runs of [start, stop) not in
        ``have`` -- the holes a ranged fetch must fill."""
        runs: list[tuple[int, int]] = []
        index = start
        while index < stop:
            if index in have:
                index += 1
                continue
            run_end = index
            while run_end < stop and run_end not in have:
                run_end += 1
            runs.append((index, run_end - index))
            index = run_end
        return runs

    def _fill_window(
        self,
        doc_id: str,
        header,
        cursor: int,
        prefetched: dict[int, bytes],
        metrics: SessionMetrics,
        chunk_cache: dict[int, bytes],
        policy: TransferPolicy,
    ) -> None:
        """Top the prefetch window up to ``window`` chunks past cursor.

        Missing stretches are fetched run by run, each run one ranged
        DSP request -- after a skip the window may already hold its
        leading chunks, so only the holes cost a round trip.
        """
        end = min(cursor + policy.window, header.chunk_count)
        for start, count in self._missing_runs(cursor, end, prefetched):
            blobs = self._fetch_range(
                doc_id, start, count, metrics, chunk_cache, policy
            )
            for offset, blob in enumerate(blobs):
                prefetched[start + offset] = blob

    # -- document streaming --------------------------------------------------

    def _transmit_batch(
        self,
        batch: list[tuple[int, bytes]],
        metrics: SessionMetrics,
        policy: TransferPolicy,
    ) -> BatchOutcome:
        """Send one chunk batch through the shared batch protocol."""
        first, last = batch[0][0], batch[-1][0]
        if len(batch) == 1 and policy.apdu_batch == 1:
            # Degenerate policy: the paper's original PUT_CHUNK path.
            index, blob = batch[0]
            response = self._transmit(
                CommandAPDU(
                    Instruction.PUT_CHUNK,
                    p1=index >> 8,
                    p2=index & 0xFF,
                    data=blob,
                ),
                metrics,
                f"put chunk {index}",
            )
            next_offset, done = struct.unpack(">QB", response.data[:9])
            return BatchOutcome(
                response=response,
                completed=True,
                next_offset=next_offset,
                done=bool(done),
                consumed=1,
            )
        # _transmit raises ProxyError on any refused frame, so the
        # outcome always comes back completed here.
        return transmit_chunk_batch(
            lambda command: self._transmit(
                command, metrics, f"put chunk batch {first}..{last}"
            ),
            batch,
            self.link.max_command_payload,
        )

    def _stream_document(
        self,
        doc_id: str,
        header,
        metrics: SessionMetrics,
        output: bytearray,
        chunk_cache: dict[int, bytes],
        policy: TransferPolicy,
    ) -> Iterator[None]:
        """Drive the main pass; yields after every output drain.

        A generator so :meth:`stream_query` can surface freshly drained
        output between chunk batches -- the caller decides whether to
        keep pulling.  Exhausting it is exactly the legacy main pass.
        """
        prefetched: dict[int, bytes] = {}
        index = 0
        while index < header.chunk_count:
            self._fill_window(
                doc_id, header, index, prefetched, metrics, chunk_cache,
                policy,
            )
            batch_end = min(index + policy.apdu_batch, header.chunk_count)
            batch = [(i, prefetched.pop(i)) for i in range(index, batch_end)]
            outcome = self._transmit_batch(batch, metrics, policy)
            metrics.chunks_sent += len(batch) - outcome.dropped
            metrics.chunks_wasted += outcome.dropped
            metrics.bytes_wasted += outcome.dropped_bytes
            output.extend(outcome.piggyback)
            metrics.output_bytes += len(outcome.piggyback)
            self._drain_output(metrics, output, outcome.response)
            yield None
            if outcome.done:
                break
            last_sent = batch[-1][0]
            next_index = max(
                last_sent + 1, outcome.next_offset // header.chunk_size
            )
            # Reconcile the window with the skip directive: prefetched
            # chunks the card jumped over are discarded before the card
            # link (wasted fetch); never-fetched ones are pure savings.
            for jumped in range(last_sent + 1, next_index):
                blob = prefetched.pop(jumped, None)
                if blob is None:
                    metrics.chunks_skipped += 1
                else:
                    metrics.chunks_wasted += 1
                    metrics.bytes_wasted += len(blob)
            index = next_index
        # A document that completed early strands the window's tail.
        for blob in prefetched.values():
            metrics.chunks_wasted += 1
            metrics.bytes_wasted += len(blob)
        response = self._transmit(
            CommandAPDU(Instruction.END_DOCUMENT), metrics, "end document"
        )
        self._refetch_entries = self._parse_refetch_pages(response, metrics)
        self._drain_output(metrics, output, response)
        yield None

    def _parse_refetch_pages(
        self, first: ResponseAPDU, metrics: SessionMetrics
    ) -> list[tuple[int, int, int]]:
        total = struct.unpack(">H", first.data[:2])[0]
        entries: list[tuple[int, int, int]] = []
        data = first.data[2:]
        page = 0
        while True:
            for position in range(0, len(data), 18):
                entry_id, start, end = struct.unpack(
                    ">HQQ", data[position:position + 18]
                )
                entries.append((entry_id, start, end))
            if len(entries) >= total:
                return entries
            page += 1
            response = self._transmit(
                CommandAPDU(Instruction.END_DOCUMENT, p1=page),
                metrics,
                f"end document page {page}",
            )
            data = response.data[2:]

    def _run_refetches(
        self,
        doc_id: str,
        header,
        metrics: SessionMetrics,
        chunk_cache: dict[int, bytes],
        policy: TransferPolicy,
    ) -> Iterator[tuple[int, int, str]]:
        """Replay granted pending subtrees; yields per settled fragment.

        Each yield is ``(entry_id, start, text)`` where ``start`` is
        the subtree's absolute plaintext offset -- entry ids are
        assigned at skip time during the sequential main pass, so both
        keys increase in document order.
        """
        for entry_id, start, end in getattr(self, "_refetch_entries", []):
            metrics.refetch_count += 1
            sink = bytearray()
            self._transmit(
                CommandAPDU(
                    Instruction.BEGIN_REFETCH,
                    p1=entry_id >> 8,
                    p2=entry_id & 0xFF,
                ),
                metrics,
                f"begin refetch {entry_id}",
            )
            first_chunk = start // header.chunk_size
            last_chunk = (end - 1) // header.chunk_size
            self._fetch_refetch_range(
                doc_id, first_chunk, last_chunk, metrics, chunk_cache, policy
            )
            for index in range(first_chunk, last_chunk + 1):
                blob = chunk_cache[index]
                metrics.refetch_bytes += len(blob)
                response = self._transmit(
                    CommandAPDU(
                        Instruction.PUT_REFETCH_CHUNK,
                        p1=index >> 8,
                        p2=index & 0xFF,
                        data=blob,
                    ),
                    metrics,
                    f"refetch chunk {index}",
                )
                __, done = struct.unpack(">QB", response.data[:9])
                self._drain_output(metrics, sink, response)
                if done:
                    break
            yield entry_id, start, sink.decode("utf-8")

    def _fetch_refetch_range(
        self,
        doc_id: str,
        first_chunk: int,
        last_chunk: int,
        metrics: SessionMetrics,
        chunk_cache: dict[int, bytes],
        policy: TransferPolicy,
    ) -> None:
        """Fetch the cache's holes in [first, last], run by ranged run."""
        for start, count in self._missing_runs(
            first_chunk, last_chunk + 1, chunk_cache
        ):
            self._fetch_range(
                doc_id, start, count, metrics, chunk_cache, policy
            )

    def _fill_card_stats(self, metrics: SessionMetrics) -> None:
        soe = self.card.soe
        metrics.ram_high_water = soe.memory.high_water
        metrics.card_cycles = soe.cycles_used
        metrics.bytes_decrypted = self.card.applet.bytes_decrypted
        metrics.bytes_skipped = self.card.applet.bytes_skipped
        metrics.max_pending_bytes = self.card.applet.max_pending_bytes
        stats = self.card.applet.engine_stats
        if stats is not None:
            metrics.events_pumped = stats.events_pumped
            metrics.tokens_touched = stats.tokens_touched
            metrics.product_states_interned = stats.product_states_interned
