"""Transfer planning for the chunk path: DSP batching and APDU windows.

The paper's bandwidth win comes from the skip index, but the *transport*
around it decides how many round trips a session costs: one DSP request
per chunk plus one blocking APDU per chunk makes session latency
round-trip bound rather than byte bound.  :class:`TransferPolicy`
describes how aggressively the proxy may batch:

* ``window`` -- how many chunks ahead of the card's cursor the proxy
  fetches from the DSP in one ranged request
  (:meth:`repro.dsp.server.DSPServer.get_chunk_range`), charging the
  per-request overhead once per window instead of once per chunk;
* ``apdu_batch`` -- how many chunks the proxy packs into one
  ``PUT_CHUNK_BATCH`` instruction, so the card answers with one resume
  offset (and one output drain) per batch instead of per chunk.

Speculation has a price: a skip directive that lands mid-window makes
the already-fetched chunks past the resume offset useless.  The proxy
discards them (never sending them over the 2 KB/s card link) and counts
their ciphertext in ``SessionMetrics.bytes_wasted``; chunks that were
already inside an in-flight batch are dropped *on the card* without
being decrypted and counted the same way.  ``window=1, apdu_batch=1``
is the degenerate case and reproduces the sequential path exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TransferPolicy:
    """How the proxy plans chunk movement DSP -> terminal -> card."""

    #: Chunks fetched ahead from the DSP per ranged request.
    window: int = 1
    #: Chunks packed into one PUT_CHUNK_BATCH APDU exchange.
    apdu_batch: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.apdu_batch < 1:
            raise ValueError("apdu_batch must be >= 1")
        if self.apdu_batch > self.window:
            raise ValueError("apdu_batch cannot exceed the prefetch window")

    @property
    def is_sequential(self) -> bool:
        """True when this policy degenerates to the one-at-a-time path."""
        return self.window == 1 and self.apdu_batch == 1

    @classmethod
    def windowed(cls, size: int) -> "TransferPolicy":
        """A symmetric policy: prefetch ``size``, batch ``size``."""
        return cls(window=size, apdu_batch=size)


#: The paper's original transport: one chunk per request, per APDU.
SEQUENTIAL = TransferPolicy()
