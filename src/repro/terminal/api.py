"""Owner-side publishing API and result types (the "XML API").

The publisher is what a document owner runs on their own terminal:
encode the document with its skip index, seal it, seal the access
rules, and wrap the document secret for each community member through
the simulated PKI.  Crucially -- this is the paper's motivation --
**updating the access rules re-seals only the tiny rule records**: the
document ciphertext is untouched and no user key changes.  Experiment
E8 measures exactly that against the static-encryption baseline.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.rules import AccessRule, RuleSet
from repro.crypto.container import DocumentContainer, seal_blob, seal_document
from repro.crypto.keys import DocumentKeys, random_key
from repro.crypto.pki import SimulatedPKI
from repro.dsp.store import DSPStore
from repro.errors import PolicyError
from repro.skipindex.encoder import IndexMode, encode_document
from repro.xmlstream.events import Event


@dataclass(slots=True)
class AuthorizedResult:
    """What an application receives from a pull query.

    .. deprecated:: 1.2
        Kept as a thin wrapper for the legacy ``Terminal.query`` path;
        new code should iterate a
        :class:`~repro.community.ViewStream` instead, which delivers
        the same fragments incrementally.
    """

    xml: str
    fragments: list[tuple[int, str]] = field(default_factory=list)

    @property
    def complete_view(self) -> str:
        """Main view plus refetched fragments in document order.

        Fragments settle by document position, not arrival order:
        refetch entry ids are assigned at skip time during the single
        sequential pass over the document, so sorting on them restores
        document order even when the transport replayed the byte
        ranges out of order.
        """
        warnings.warn(
            "AuthorizedResult.complete_view is deprecated; query through "
            "repro.community and use ViewStream.text() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self.fragments:
            return self.xml
        parts = [self.xml]
        parts.extend(
            text for _, text in sorted(self.fragments, key=lambda f: f[0])
        )
        return "".join(parts)


@dataclass(slots=True)
class PublishReceipt:
    """Accounting of one publish/update operation (E8 reads this)."""

    doc_id: str
    version: int
    document_bytes_encrypted: int
    rule_bytes_encrypted: int
    keys_distributed: int


def _seal_rules(
    rules: RuleSet, doc_id: str, version: int, keys: DocumentKeys
) -> tuple[list[bytes], int]:
    records: list[bytes] = []
    total = 0
    for index, rule in enumerate(rules):
        line = f"{rule.sign}|{rule.subject}|{rule.object}".encode("utf-8")
        record = seal_blob(line, f"{doc_id}#rule:{index}", version, keys)
        records.append(record)
        total += len(record)
    return records, total


class Publisher:
    """A document owner's publishing endpoint.

    .. deprecated:: 1.2
        Hand-wiring a ``Publisher`` is the legacy path; enroll a member
        in a :class:`repro.community.Community` and call
        ``member.publish(...)`` instead.  The shim stays because the
        facade itself composes it.
    """

    def __init__(
        self,
        owner: str,
        store: DSPStore,
        pki: SimulatedPKI,
        _warn: bool = True,
    ) -> None:
        if _warn:
            warnings.warn(
                "constructing Publisher directly is deprecated; use "
                "repro.community.Community.enroll(...).publish(...)",
                DeprecationWarning,
                stacklevel=2,
            )
        self.owner = owner
        self.store = store
        self.pki = pki
        self._secrets: dict[str, bytes] = {}
        self._versions: dict[str, int] = {}

    def _secret(self, doc_id: str) -> bytes:
        secret = self._secrets.get(doc_id)
        if secret is None:
            raise PolicyError(
                f"{self.owner!r} never published a document {doc_id!r}",
                doc_id=doc_id,
                subject=self.owner,
            )
        return secret

    def secret_for(self, doc_id: str) -> bytes:
        """The document secret (owner side only)."""
        return self._secret(doc_id)

    def publish(
        self,
        doc_id: str,
        events: list[Event],
        rules: RuleSet,
        recipients: list[str],
        index_mode: IndexMode = IndexMode.RECURSIVE,
        chunk_size: int = 96,
    ) -> PublishReceipt:
        """Encode, seal and upload a document with its policy and keys."""
        secret = self._secrets.get(doc_id)
        if secret is None:
            secret = random_key()
            self._secrets[doc_id] = secret
        keys = DocumentKeys(secret)
        version = self._versions.get(doc_id, 0) + 1
        self._versions[doc_id] = version
        plaintext = encode_document(events, index_mode)
        container = seal_document(
            plaintext, doc_id, version, keys, chunk_size=chunk_size
        )
        # A republish reuses the document secret, so existing grants
        # (wrapped keys) stay valid and are explicitly kept; the rule
        # records are replaced wholesale just below.
        self.store.put_document(container, keep_keys=True)
        records, rule_bytes = _seal_rules(rules, doc_id, version, keys)
        self.store.put_rules(doc_id, records, version)
        wrapped = self.pki.publish_secret(self.owner, recipients, secret)
        for recipient, blob in wrapped.items():
            self.store.put_wrapped_key(doc_id, recipient, blob)
        return PublishReceipt(
            doc_id=doc_id,
            version=version,
            document_bytes_encrypted=container.stored_size,
            rule_bytes_encrypted=rule_bytes,
            keys_distributed=len(recipients),
        )

    def update_rules(self, doc_id: str, rules: RuleSet) -> PublishReceipt:
        """Change the policy without touching the document.

        This is the paper's headline property: "dissociating access
        rights from encryption" -- zero document bytes re-encrypted,
        zero keys redistributed.
        """
        secret = self._secret(doc_id)
        keys = DocumentKeys(secret)
        version = self.store.get(doc_id).rules_version + 1
        records, rule_bytes = _seal_rules(rules, doc_id, version, keys)
        self.store.put_rules(doc_id, records, version)
        return PublishReceipt(
            doc_id=doc_id,
            version=version,
            document_bytes_encrypted=0,
            rule_bytes_encrypted=rule_bytes,
            keys_distributed=0,
        )

    def grant_access(self, doc_id: str, recipient: str) -> None:
        """Wrap the document secret for one more community member."""
        blob = self.pki.wrap_secret(
            self.owner, recipient, self._secret(doc_id)
        )
        self.store.put_wrapped_key(doc_id, recipient, blob)

    def container(self, doc_id: str) -> DocumentContainer:
        return self.store.get(doc_id).container


def make_rule(sign: str, subject: str, xpath: str) -> AccessRule:
    """Terse rule constructor for applications and examples."""
    return AccessRule.parse(sign, subject, xpath)
