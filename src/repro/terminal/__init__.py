"""The user terminal: proxy, publisher API and session wiring.

"a terminal connected to the smart card.  It contains a proxy allowing
the applications to communicate easily with the different elements of
the architecture through an XML API independent of the underlying
protocols (JDBC, APDU)" (Section 3).
"""

from repro.terminal.api import AuthorizedResult, Publisher
from repro.terminal.proxy import CardProxy, ProxyError
from repro.terminal.session import Terminal
from repro.terminal.transfer import SEQUENTIAL, TransferPolicy

__all__ = [
    "AuthorizedResult",
    "CardProxy",
    "ProxyError",
    "Publisher",
    "SEQUENTIAL",
    "Terminal",
    "TransferPolicy",
]
