"""The terminal's authorized-view cache.

The paper's trust model already concedes that the terminal
legitimately holds the plaintext *authorized view* once a session
completes -- the card filtered it, the member was entitled to it.
This package keeps those completed views around so a warm query on an
unchanged document costs one tiny freshness probe (the ``GET_META``
wire request) instead of a full chunk pull and a card pass:

* :mod:`repro.cache.viewcache` -- the bounded (LRU + byte budget)
  :class:`ViewCache` itself: version-keyed entries, probe-validated
  freshness, and the hard security rule that a revoked subject is
  never served from cache;
* :mod:`repro.cache.semantic` -- containment-based semantic
  answering: a query ``q`` subsumed by a cached query ``p`` (per
  :func:`repro.xpathlib.containment.contains`) is answered by
  re-evaluating ``q`` locally over the cached plaintext view -- zero
  DSP chunk requests, zero card time.

``community.Session.query`` consults the cache when the community
enables it (``Community(view_cache=ViewCache())`` or
``community.enable_view_cache()``); it is off by default so the
simulated-clock parity suites keep their bit-for-bit baselines.
"""

from repro.cache.viewcache import CachedView, CacheKey, CacheStats, ViewCache

__all__ = ["CacheKey", "CacheStats", "CachedView", "ViewCache"]
