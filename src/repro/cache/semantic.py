"""Containment-based semantic answering over cached authorized views.

A cached view for query ``p`` is a *superset* of the view for any
query ``q`` with ``q ⊆ p`` -- so ``q`` can be answered locally by
re-evaluating it over the cached plaintext, the way a semantic cache
answers a narrow question from a previously answered broader one.
Containment is decided by the sound tree-pattern homomorphism of
:func:`repro.xpathlib.containment.contains` (Miklau & Suciu): ``True``
only when containment is *certain*, so a false positive -- which would
serve wrong bytes -- cannot come from the prover, only from a bug
(the hypothesis fuzz in ``tests/xpathlib`` cross-checks it against
brute-force evaluation for exactly this reason).

Answering is deliberately restricted to the shapes where it is exactly
byte-faithful to a fresh card pull:

* the cached entry must be a ``SKELETON`` view pulled with the
  ``BUFFER`` strategy -- skeleton views preserve every retained
  ancestor chain (so structural matching over the view agrees with
  matching over the document) and buffered views are settled text in
  document order (no refetched fragments to splice);
* the new query must be *structural* (no value predicates):
  predicates may evaluate differently over the filtered view than
  over the full document, so they always miss to a live pull.

Within those bounds the answer is computed with the reference
evaluator: parse the cached view, re-run
:func:`repro.core.reference.reference_view` with an empty PERMIT-all
policy and ``q`` as the query, and render with the shared writer --
the same writer the card's applet uses, so the bytes match a fresh
pull exactly (the differential suite asserts this over the docgen
corpus).
"""

from __future__ import annotations

from repro.core.delivery import ViewMode
from repro.core.reference import reference_view
from repro.core.rules import RuleSet, Sign
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import Element, events_to_tree
from repro.xmlstream.writer import write_string
from repro.xpathlib import XPathSyntaxError, parse_path
from repro.xpathlib.ast import Path
from repro.xpathlib.containment import contains

__all__ = [
    "answer_from_view",
    "answerable",
    "covers",
    "parse_query",
    "structural",
]


def parse_query(text: str) -> Path | None:
    """``text`` as a parsed absolute path, or ``None`` if unusable."""
    try:
        path = parse_path(text)
    except XPathSyntaxError:
        return None
    return path if path.absolute else None


def structural(path: Path) -> bool:
    """Whether ``path`` is predicate-free (pure tag/axis structure).

    Structural queries select by tag path alone, which a skeleton view
    preserves verbatim; predicate values may have been filtered out of
    the view, so predicate-bearing queries are never answered from
    cache.
    """
    return all(not step.predicates for step in path.steps)


def answerable(query: str | None, strategy: str, view_mode: str) -> bool:
    """Whether a query in this session shape may be answered semantically."""
    if strategy != "buffer" or view_mode != "skeleton":
        return False
    if query is None:
        return True  # the whole authorized view; trivially answerable
    path = parse_query(query)
    return path is not None and structural(path)


def covers(donor_query: str | None, query: str) -> bool:
    """Sound test that the donor's cached view contains ``query``'s.

    A donor with no query holds the member's *entire* authorized view,
    which contains every query's view.  Otherwise containment is
    proven (or not) by the tree-pattern homomorphism; ``False`` simply
    means "not proven" and the caller falls through to a live pull.
    """
    q = parse_query(query)
    if q is None or not structural(q):
        return False
    if donor_query is None:
        return True
    p = parse_query(donor_query)
    return p is not None and contains(p, q)


def _view_root(view_xml: str) -> Element | None:
    """The single root element of a skeleton view, or ``None``.

    A skeleton view of a document is either empty (nothing authorized)
    or single-rooted (the document root is always the first retained
    ancestor).  Anything else is not a shape this module answers from.
    """
    events = parse_string(f"<v>{view_xml}</v>", keep_whitespace=True)
    wrapper = events_to_tree(events)
    roots = wrapper.element_children
    if len(roots) != 1:
        return None
    return roots[0]


def answer_from_view(view_xml: str, query: str) -> str | None:
    """Evaluate ``query`` over a cached skeleton view; ``None`` = refuse.

    Every node in the cached view is, by construction, authorized for
    the subject -- so the re-evaluation runs the reference engine with
    an *empty, default-PERMIT* policy and ``query`` as the pull query:
    delivery and skeleton-retention then depend only on the query,
    exactly as they would in a fresh card pull restricted to the
    already-authorized content.
    """
    path = parse_query(query)
    if path is None or not structural(path):
        return None
    if not view_xml:
        return ""  # nothing was authorized; no query can select more
    root = _view_root(view_xml)
    if root is None:
        return None
    events = reference_view(
        root,
        RuleSet([]),
        query=path,
        mode=ViewMode.SKELETON,
        default=Sign.PERMIT,
    )
    return write_string(events)
