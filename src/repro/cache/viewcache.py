"""The bounded, version-keyed authorized-view cache.

An entry is one *completed* pull session's output: the settled view
text, the stream pieces that produced it (so a cache hit replays as a
normal ``ViewStream``), and the validators that decide freshness:

* ``doc_version`` / ``rules_version`` -- the authoritative
  per-document validators, captured from the pull itself;
* ``(generation, boot)`` -- the store-wide fast path: when the probe's
  generation and boot nonce match the entry's stamp, *nothing* at the
  store changed since the entry was validated, so the piecewise check
  is skipped.  The stamp is refreshed on every successful validation;
  a mismatch (another document changed, or another process booted the
  store) only falls back to the piecewise check -- it can cause a
  probe, never a false hit.

Freshness is always established against a live
:class:`~repro.dsp.wire.DocMeta` probe -- one tiny ``GET_META`` round
trip -- before anything is served.  Two hard security rules:

* a probe reporting ``has_key=False`` (the subject's wrapped key is
  gone -- key-level revocation) purges every entry for that
  ``(document, subject)`` and refuses service; a revoked subject is
  **never** served from cache;
* entries are only ever written by *cleanly completed* streams
  (``Session`` records through the cache after exhaustion); failed or
  aborted pulls never populate.

Capacity is bounded twice -- entry count and total byte budget -- with
LRU eviction, so a terminal's cache cannot grow without bound however
many documents it touches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.cache import semantic
from repro.dsp.wire import DocMeta

__all__ = [
    "CacheKey",
    "CacheStats",
    "CachedView",
    "ViewCache",
    "cache_totals",
]

#: Fixed per-entry overhead charged against the byte budget (key,
#: validators, index slots) so a flood of empty views still evicts.
_ENTRY_OVERHEAD = 256

#: One cached stream piece: ``(kind, text, position, entry_id)`` --
#: the immutable image of a :class:`~repro.terminal.proxy.ViewPiece`.
PieceTuple = tuple[str, str, int, "int | None"]


@dataclass(frozen=True, slots=True)
class CacheKey:
    """Everything that selects a distinct authorized view.

    ``strategy``/``view_mode`` are the enum *values* (``"buffer"``,
    ``"skeleton"``, ...) so the key stays hashable and printable;
    ``groups`` ride along because group-subject rules change the
    composed policy, hence the bytes.
    """

    doc_id: str
    subject: str
    query: str | None
    strategy: str
    view_mode: str
    groups: frozenset[str] = frozenset()

    @property
    def base(self) -> tuple[str, str, str, str, frozenset[str]]:
        """The key minus the query -- the semantic-donor bucket."""
        return (
            self.doc_id,
            self.subject,
            self.strategy,
            self.view_mode,
            self.groups,
        )


@dataclass(slots=True)
class CachedView:
    """One completed authorized view with its freshness validators."""

    key: CacheKey
    xml: str
    pieces: tuple[PieceTuple, ...]
    fragments: tuple[tuple[int, str], ...]
    doc_version: int
    rules_version: int
    #: Store-wide stamp from the last successful validation;
    #: ``generation < 0`` (with an empty ``boot``) means unstamped --
    #: the entry was recorded from a pull and must pass one piecewise
    #: check before the fast path applies.
    generation: int = -1
    boot: str = ""
    size: int = 0

    def __post_init__(self) -> None:
        if not self.size:
            text_bytes = len(self.xml.encode("utf-8"))
            text_bytes += sum(
                len(text.encode("utf-8")) for _, text, _, _ in self.pieces
            )
            text_bytes += sum(
                len(text.encode("utf-8")) for _, text in self.fragments
            )
            self.size = text_bytes + _ENTRY_OVERHEAD


@dataclass(slots=True)
class CacheStats:
    """Counters the profiler and the E19 benchmark read."""

    hits: int = 0
    semantic_hits: int = 0
    misses: int = 0
    probes: int = 0
    invalidations: int = 0
    evictions: int = 0
    revocation_refusals: int = 0
    stores: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            key: value
            for key, value in (
                (slot, getattr(self, slot)) for slot in self.__slots__
            )
            if isinstance(value, int)
        }


#: Process-wide totals across every :class:`ViewCache` instance, for
#: the profiler (``run_experiments.py --profile``).  Per-cache numbers
#: live on ``ViewCache.stats``.
_TOTALS = CacheStats()


def cache_totals() -> dict[str, int]:
    """A snapshot of the process-wide cache counters."""
    return _TOTALS.as_dict()


class ViewCache:
    """A bounded LRU + byte-budget cache of completed authorized views."""

    def __init__(
        self, *, max_entries: int = 256, max_bytes: int = 16 << 20
    ) -> None:
        if max_entries < 1 or max_bytes < 1:
            raise ValueError("cache bounds must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._entries: "OrderedDict[CacheKey, CachedView]" = OrderedDict()
        self._by_base: dict[
            tuple[str, str, str, str, frozenset[str]], set[CacheKey]
        ] = {}
        self._bytes = 0

    # -- introspection -----------------------------------------------------

    def count(self, slot: str, delta: int = 1) -> None:
        """Bump one stats counter (and the process-wide totals)."""
        setattr(self.stats, slot, getattr(self.stats, slot) + delta)
        setattr(_TOTALS, slot, getattr(_TOTALS, slot) + delta)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def entry(self, key: CacheKey) -> CachedView | None:
        """The raw entry (no freshness check, no LRU touch); tests only."""
        return self._entries.get(key)

    # -- candidate pre-check ----------------------------------------------

    def has_candidates(self, key: CacheKey) -> bool:
        """Whether a probe could possibly be answered for ``key``.

        ``False`` means the caller should skip the ``GET_META`` round
        trip entirely: there is no exact entry and no donor a semantic
        answer could come from.
        """
        if key in self._entries:
            return True
        peers = self._by_base.get(key.base)
        if not peers:
            return False
        if key.query is None or not semantic.answerable(
            key.query, key.strategy, key.view_mode
        ):
            return False
        return any(
            semantic.covers(peer.query, key.query)
            for peer in peers
            if peer != key
        )

    # -- lookup ------------------------------------------------------------

    def lookup(
        self, key: CacheKey, meta: DocMeta
    ) -> "tuple[CachedView, bool] | None":
        """A fresh entry answering ``key``, or ``None`` (a miss).

        The boolean is ``True`` when the answer was *derived* -- a
        semantic hit computed from a covering donor and stored as a
        first-class entry so the next identical query is an exact hit.
        ``meta`` must come from a probe the caller just made; a
        ``has_key=False`` probe must be handled (and refused) by the
        caller *before* lookup -- this method asserts the contract.
        """
        assert meta.has_key, "revoked subjects must be refused before lookup"
        exact = self._entries.get(key)
        if exact is not None:
            if self._fresh(exact, meta):
                self._entries.move_to_end(key)
                self.count("hits")
                return exact, False
            self._drop(key, stale=True)
        derived = self._semantic(key, meta)
        if derived is not None:
            self.count("semantic_hits")
            return derived, True
        self.count("misses")
        return None

    def _semantic(self, key: CacheKey, meta: DocMeta) -> CachedView | None:
        if key.query is None or not semantic.answerable(
            key.query, key.strategy, key.view_mode
        ):
            return None
        peers = self._by_base.get(key.base)
        if not peers:
            return None
        # Most-recently-used donors first; stale peers found along the
        # way are dropped -- the probe just proved them outdated.
        for donor_key in sorted(
            (peer for peer in peers if peer != key),
            key=lambda peer: self._lru_index(peer),
            reverse=True,
        ):
            donor = self._entries[donor_key]
            if not self._fresh(donor, meta):
                self._drop(donor_key, stale=True)
                continue
            if not semantic.covers(donor_key.query, key.query):
                continue
            answer = semantic.answer_from_view(donor.xml, key.query)
            if answer is None:
                continue
            derived = CachedView(
                key=key,
                xml=answer,
                pieces=(("view", answer, 0, None),) if answer else (),
                fragments=(),
                doc_version=donor.doc_version,
                rules_version=donor.rules_version,
                generation=meta.generation,
                boot=meta.boot,
            )
            self.put(derived)
            return derived
        return None

    def _lru_index(self, key: CacheKey) -> int:
        for index, existing in enumerate(self._entries):
            if existing == key:
                return index
        return -1

    def _fresh(self, entry: CachedView, meta: DocMeta) -> bool:
        if (
            entry.boot
            and entry.boot == meta.boot
            and entry.generation == meta.generation
        ):
            return True
        if (
            entry.doc_version == meta.doc_version
            and entry.rules_version == meta.rules_version
        ):
            # Piecewise match: re-stamp so the store-wide fast path
            # answers the next probe without the version comparison.
            entry.generation = meta.generation
            entry.boot = meta.boot
            return True
        return False

    # -- population --------------------------------------------------------

    def record(
        self,
        key: CacheKey,
        *,
        xml: str,
        pieces: "tuple[PieceTuple, ...]",
        fragments: "tuple[tuple[int, str], ...]",
        doc_version: "int | None",
        rules_version: "int | None",
    ) -> CachedView | None:
        """Store one cleanly completed session's output.

        Returns ``None`` (and stores nothing) when the pull did not
        report its versions -- without validators an entry could never
        be proven fresh, so it is useless.
        """
        if doc_version is None or rules_version is None:
            return None
        entry = CachedView(
            key=key,
            xml=xml,
            pieces=pieces,
            fragments=fragments,
            doc_version=doc_version,
            rules_version=rules_version,
        )
        self.put(entry)
        return entry

    def put(self, entry: CachedView) -> None:
        """Insert (or replace) one entry and enforce the bounds."""
        if entry.size > self.max_bytes:
            return  # one oversized view must not wipe the whole cache
        key = entry.key
        if key in self._entries:
            self._drop(key, stale=False)
        self._entries[key] = entry
        self._by_base.setdefault(key.base, set()).add(key)
        self._bytes += entry.size
        self.count("stores")
        while self._entries and (
            len(self._entries) > self.max_entries
            or self._bytes > self.max_bytes
        ):
            oldest = next(iter(self._entries))
            self._drop(oldest, stale=False)
            self.count("evictions")

    # -- invalidation ------------------------------------------------------

    def _drop(self, key: CacheKey, *, stale: bool) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        peers = self._by_base.get(key.base)
        if peers is not None:
            peers.discard(key)
            if not peers:
                del self._by_base[key.base]
        self._bytes -= entry.size
        if stale:
            self.count("invalidations")

    def refuse_revoked(self, doc_id: str, subject: str) -> int:
        """Purge everything cached for a revoked ``(document, subject)``.

        Called when a probe comes back ``has_key=False``; counts the
        refusal so the differential suite can assert zero serves.
        """
        dropped = self.invalidate_subject(doc_id, subject)
        self.count("revocation_refusals")
        return dropped

    def invalidate_subject(self, doc_id: str, subject: str) -> int:
        """Drop every entry for one subject on one document."""
        doomed = [
            key
            for key in self._entries
            if key.doc_id == doc_id and key.subject == subject
        ]
        for key in doomed:
            self._drop(key, stale=True)
        return len(doomed)

    def invalidate_document(self, doc_id: str) -> int:
        """Drop every entry for one document (republish, rules change)."""
        doomed = [key for key in self._entries if key.doc_id == doc_id]
        for key in doomed:
            self._drop(key, stale=True)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything (epoch change / explicit flush)."""
        dropped = len(self._entries)
        self._entries.clear()
        self._by_base.clear()
        self._bytes = 0
        self.count("invalidations", dropped)
        return dropped
