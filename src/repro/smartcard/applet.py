"""The on-card access-control applet.

This is the component the whole paper is about: inside the SOE it
decrypts the incoming chunk stream, checks its integrity, runs the
streaming rule evaluator and emits the authorized view -- "the SOE is
in charge of decrypting the input document, checking its integrity and
evaluating the access control policy corresponding to a given
(document, subject) pair" (Section 2.1).

Skip decisions (Section 2.3) happen here: after each decoded ``open``
the applet combines (a) the element's delivery status and (b) the
reachability test of every automaton against the subtree's tag bitmap.
A subtree is skipped when nothing inside can be delivered and no
automaton or value predicate needs its bytes; the proxy is told the
resume offset so the skipped chunks are never transferred, saving both
link time and decryption -- "its decryption and transmission overhead
must not exceed its own benefit".

Pending subtrees (predicates unresolved at the subtree root) follow one
of two strategies, ablated by experiment E10:

* ``PendingStrategy.BUFFER``  -- stream the subtree and let the delivery
  engine hold it in secure RAM until the predicate resolves;
* ``PendingStrategy.REFETCH`` -- if the subtree is otherwise skippable,
  skip it now, remember the byte range, and have the proxy re-send it
  after the close of the predicate scope if the decision resolved to
  PERMIT.  Out-of-order delivery in exchange for near-zero RAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.compiled import AUTOMATON_STATE_BYTES, PolicyRegistry
from repro.core.decisions import DecisionNode
from repro.core.pipeline import AccessController
from repro.core.delivery import ViewMode, _Record
from repro.core.rules import AccessRule, RuleSet, Sign, Subject
from repro.crypto.container import (
    DocumentHeader,
    IntegrityError,
    open_blob,
    open_chunk,
)
from repro.crypto.keys import DocumentKeys
from repro.errors import DocumentLocked, ReproError
from repro.skipindex.decoder import (
    DecodedClose,
    DecodedOpen,
    SXSDecoder,
)
from repro.smartcard.soe import SecureOperatingEnvironment
from repro.xmlstream.events import Event
from repro.xmlstream.writer import write_string

#: Modeled RAM cost of the streaming decoder state per open level.
DECODER_FRAME_BYTES = 8


class PendingStrategy(enum.Enum):
    """How pending subtrees are handled (experiment E10)."""

    BUFFER = "buffer"
    REFETCH = "refetch"


class AppletError(ReproError):
    """Protocol misuse or security violation inside the applet."""


@dataclass(slots=True)
class RefetchRequest:
    """A skipped pending subtree the proxy must re-send if permitted."""

    entry_id: int
    start: int  # absolute plaintext offset of the subtree content
    end: int  # absolute plaintext offset just past the subtree
    tag: str
    tags_inside_ids: frozenset[int]
    content_size: int
    auth: DecisionNode = field(repr=False, default=None)  # type: ignore[assignment]
    query: DecisionNode | None = field(repr=False, default=None)
    resolved_permit: bool | None = None


@dataclass(slots=True)
class ChunkResult:
    """What the applet tells the proxy after each chunk."""

    next_offset: int  # next plaintext byte the card needs
    document_done: bool
    output_available: int  # bytes currently in the output buffer


@dataclass(slots=True)
class BatchResult:
    """What the applet tells the proxy after one chunk *batch*.

    One resume offset and one output drain cover the whole batch;
    ``chunks_dropped``/``bytes_dropped`` report the speculative members
    a mid-batch skip directive made useless -- they were on the wire
    already, but the applet discards them before MAC and decryption, so
    the byte-level metrics (``bytes_decrypted``, ``bytes_skipped``)
    stay identical to the sequential path.
    """

    next_offset: int
    document_done: bool
    output_available: int
    chunks_consumed: int
    chunks_dropped: int
    bytes_dropped: int


class CardApplet:
    """One session = one (document, subject, query) evaluation."""

    def __init__(
        self,
        soe: SecureOperatingEnvironment,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.soe = soe
        self.default_strategy = strategy
        self.view_mode = view_mode
        # Per-item engine-charge constants, read once (the cost model
        # is frozen for the card's lifetime).
        cost = soe.cost
        self._engine_costs = (
            cost.cycles_per_event,
            cost.cycles_per_token_check,
            cost.cycles_per_token_advance,
            cost.cycles_per_condition,
        )
        # The compiled-automata store: rules are compiled once when
        # first seen (the paper compiles on rule upload) and reused by
        # every later session with the same policy.  It survives
        # session resets, like the automata stored in EEPROM would.
        self.registry = registry if registry is not None else PolicyRegistry()
        self._reset_session()

    def use_registry(self, registry: PolicyRegistry) -> None:
        """Swap in a shared compiled-policy cache.

        Takes effect on the next session's policy compilation; the
        current session's controller (if any) keeps its automata.
        """
        self.registry = registry

    def _reset_session(self) -> None:
        self._subject: str | None = None
        self._groups: frozenset[str] = frozenset()
        self._doc_id: str | None = None
        self._query: str | None = None
        self._strategy = self.default_strategy
        self._keys: DocumentKeys | None = None
        self._header: DocumentHeader | None = None
        self._rules = RuleSet()
        self._controller: AccessController | None = None
        self._decoder: SXSDecoder | None = None
        self._output = bytearray()
        self._refetches: list[RefetchRequest] = []
        self._active_refetch: RefetchRequest | None = None
        self._refetch_decoder: SXSDecoder | None = None
        self._document_done = False
        self._automata_ram = 0
        self._decoder_ram = 0
        self._decoder_charged = 0
        # chunk-batch bookkeeping (PUT_CHUNK_BATCH)
        self._batch_consumed = 0
        self._batch_dropped = 0
        self._batch_dropped_bytes = 0
        # metrics
        self.bytes_decrypted = 0
        self.bytes_skipped = 0
        self.output_bytes_total = 0
        self._stats_snapshot = (0, 0, 0, 0)

    # -- session setup -----------------------------------------------------

    def begin_session(
        self,
        doc_id: str,
        subject: str,
        query: str | None = None,
        strategy: PendingStrategy | None = None,
        groups: frozenset[str] = frozenset(),
    ) -> None:
        """Start a session; the document secret must be provisioned.

        ``groups`` lists the roles the subject holds (e.g. a user who
        is both ``doctor`` and ``staff``); rules written for any of
        them apply.  On a real deployment the card would authenticate
        the role claims against certificates stored at
        personalization; the simulation takes them as given.
        """
        self._reset_session()
        if doc_id not in self.soe.keyring:
            raise DocumentLocked(
                f"no key provisioned for document {doc_id!r} "
                f"(subject {subject!r})",
                doc_id=doc_id,
                subject=subject,
            )
        self._doc_id = doc_id
        self._subject = subject
        self._groups = groups
        self._query = query
        if strategy is not None:
            self._strategy = strategy
        self._keys = self.soe.keys_for(doc_id)

    def put_header(self, header: DocumentHeader) -> None:
        """Verify the container header and enforce version freshness."""
        if self._keys is None or self._doc_id is None:
            raise AppletError("no session in progress")
        if header.doc_id != self._doc_id:
            raise IntegrityError("header is for a different document")
        self.soe.charge_mac(32 + len(header.payload()))
        header.verify(self._keys)
        register = self.soe.version_register(self._doc_id)
        if header.version < register:
            raise IntegrityError(
                f"version replay: got {header.version}, register at {register}"
            )
        self.soe.advance_version_register(self._doc_id, header.version)
        self._header = header

    def put_rule_record(self, index: int, version: int, blob: bytes) -> None:
        """Decrypt, verify and compile one access-rule record.

        Records are sealed individually (``doc#rule:<index>``) so the
        card never holds the whole policy in RAM -- each record is
        parsed, compiled into its automaton, and released.
        """
        if self._keys is None or self._header is None:
            raise AppletError("header must be verified before rules")
        self.soe.charge_mac(len(blob))
        self.soe.charge_decrypt(len(blob))
        label = f"{self._doc_id}#rule:{index}"
        plaintext = open_blob(blob, label, version, self._keys)
        text = plaintext.decode("utf-8")
        sign_text, subject, xpath = text.split("|", 2)
        rule = AccessRule.parse(
            Sign(sign_text), subject, xpath, rule_id=f"{self._doc_id}:{index}"
        )
        self._rules.add(rule)

    def _ensure_controller(self) -> AccessController:
        if self._controller is None:
            assert self._subject is not None
            subject_rules = self._rules.for_subject(
                Subject(self._subject, self._groups)
            )
            policy = self.registry.get(subject_rules)
            compiled_query = (
                self.registry.get_query(self._query)
                if self._query is not None
                else None
            )
            self._controller = AccessController(
                policy,
                query=compiled_query,
                mode=self.view_mode,
                memory=self.soe.memory,
            )
            # Charge the compiled automata to secure RAM -- straight
            # from the compiled artifact, no recompilation.
            states = policy.state_count
            if compiled_query is not None:
                states += compiled_query.state_count()
            self._automata_ram = states * AUTOMATON_STATE_BYTES
            self.soe.memory.allocate("automata", self._automata_ram)
            self._decoder = SXSDecoder()
        return self._controller

    # -- document streaming -----------------------------------------------------

    def put_chunk(self, index: int, blob: bytes) -> ChunkResult:
        """Verify, decrypt and process one document chunk."""
        if self._header is None:
            raise AppletError("header must be verified before chunks")
        controller = self._ensure_controller()
        assert self._decoder is not None and self._keys is not None
        self.soe.charge_mac(len(blob))
        plaintext = open_chunk(self._header, index, blob, self._keys)
        self.soe.charge_decrypt(len(blob) - self._header.tag_length)
        self.bytes_decrypted += len(plaintext)
        offset = index * self._header.chunk_size
        self._decoder.push(plaintext, offset)
        self._pump(controller, self._decoder)
        return ChunkResult(
            next_offset=self._decoder.next_needed_offset,
            document_done=self._decoder.document_done,
            output_available=len(self._output),
        )

    # -- chunk batches (PUT_CHUNK_BATCH) ---------------------------------

    def begin_chunk_batch(self) -> None:
        """Open a batch: members follow, one result closes it."""
        if self._header is None:
            raise AppletError("header must be verified before chunks")
        self._batch_consumed = 0
        self._batch_dropped = 0
        self._batch_dropped_bytes = 0

    def put_batch_member(self, index: int, blob: bytes) -> None:
        """Process one batch member, or drop it if a skip outran it.

        A member whose plaintext range lies entirely before the
        decoder's next needed offset (a skip directive raised by an
        earlier member of the same batch) is discarded *before* MAC
        verification and decryption: the sequential path would never
        have transmitted it, so neither accounting path may charge it.
        """
        if self._header is None:
            raise AppletError("header must be verified before chunks")
        if self._decoder is not None:
            chunk_end = (index + 1) * self._header.chunk_size
            if self._decoder.document_done or (
                chunk_end <= self._decoder.next_needed_offset
            ):
                self._batch_dropped += 1
                self._batch_dropped_bytes += len(blob)
                return
        self.put_chunk(index, blob)
        self._batch_consumed += 1

    def end_chunk_batch(self) -> BatchResult:
        """Close the batch; one resume offset for all its members."""
        if self._decoder is None:
            raise AppletError("empty chunk batch")
        return BatchResult(
            next_offset=self._decoder.next_needed_offset,
            document_done=self._decoder.document_done,
            output_available=len(self._output),
            chunks_consumed=self._batch_consumed,
            chunks_dropped=self._batch_dropped,
            bytes_dropped=self._batch_dropped_bytes,
        )

    def _charge_engine_work(self, controller: AccessController) -> None:
        stats = controller.stats
        events, checks, advances, conditions = self._stats_snapshot
        per_event, per_check, per_advance, per_condition = self._engine_costs
        self.soe.charge_cycles(
            (stats.events - events) * per_event
            + (stats.token_checks - checks) * per_check
            + (stats.token_advances - advances) * per_advance
            + (stats.conditions_created - conditions) * per_condition
        )
        self._stats_snapshot = (
            stats.events,
            stats.token_checks,
            stats.token_advances,
            stats.conditions_created,
        )

    def _emit(self, events: list[Event]) -> None:
        if not events:
            return
        text = write_string(events).encode("utf-8")
        self.soe.charge_output(len(text))
        self.output_bytes_total += len(text)
        self._output.extend(text)

    def _pump(self, controller: AccessController, decoder: SXSDecoder) -> None:
        """Drain every decodable item through the evaluator.

        Bound methods are hoisted out of the per-item loop; the
        charge/emit cadence is exactly the seed's (one engine-work
        charge per item), keeping clock totals bit-identical.
        """
        next_item = decoder.next_item
        track = self._track_decoder_ram
        feed = controller.feed
        emit = self._emit
        charge = self._charge_engine_work
        while (item := next_item()) is not None:
            track(decoder.depth)
            emit(feed(item.event))
            if type(item) is DecodedOpen:
                self._maybe_skip(controller, decoder, item)
            charge(controller)
        self.soe.charge_decode(decoder.bytes_decoded - self._decoder_charged)
        self._decoder_charged = decoder.bytes_decoded

    def _track_decoder_ram(self, depth: int) -> None:
        needed = depth * DECODER_FRAME_BYTES
        if needed > self._decoder_ram:
            self.soe.memory.allocate("decoder", needed - self._decoder_ram)
            self._decoder_ram = needed

    def _maybe_skip(
        self,
        controller: AccessController,
        decoder: SXSDecoder,
        item: DecodedOpen,
    ) -> None:
        """Apply the skip rule of Section 2.3 to a freshly opened subtree."""
        if item.resume_offset is None or item.tags_inside is None:
            return  # stream carries no skip index
        kind, _ = controller.current_status()
        if kind == _Record.DELIVER:
            return  # content must be transferred anyway
        if kind == _Record.PENDING and self._strategy is not PendingStrategy.REFETCH:
            return
        if not controller.subtree_is_irrelevant(item.tags_inside):
            return
        try:
            snapshot = decoder.snapshot_top_frame()
        except RuntimeError:
            return
        if kind == _Record.PENDING:
            auth, query = controller.current_decision_nodes()
            entry = RefetchRequest(
                entry_id=len(self._refetches),
                start=snapshot.content_start,
                end=snapshot.content_start + snapshot.content_size,
                tag=snapshot.tag,
                tags_inside_ids=snapshot.tags_inside,
                content_size=snapshot.content_size,
                auth=auth,
                query=query,
            )
            self._refetches.append(entry)
        resume = decoder.skip_open_subtree()
        self.bytes_skipped += resume - snapshot.content_start

    def end_document(self) -> list[RefetchRequest]:
        """Finish the main pass; return the refetches resolved to PERMIT."""
        if self._controller is None or self._decoder is None:
            raise AppletError("no document streamed")
        if not self._decoder.document_done:
            raise IntegrityError("document truncated (structure incomplete)")
        self._emit(self._controller.finish())
        self._document_done = True
        granted: list[RefetchRequest] = []
        for entry in self._refetches:
            kind, _ = self._controller.status_of(entry.auth, entry.query)
            entry.resolved_permit = kind == _Record.DELIVER
            if entry.resolved_permit:
                granted.append(entry)
        return granted

    # -- refetch pass -----------------------------------------------------------

    def begin_refetch(self, entry_id: int) -> None:
        """Start re-receiving one granted pending subtree."""
        if not self._document_done:
            raise AppletError("refetch only after the main pass")
        entry = self._refetches[entry_id]
        if not entry.resolved_permit:
            raise AppletError("subtree was not granted")
        assert self._decoder is not None and self._decoder.dictionary is not None
        self._active_refetch = entry
        self._refetch_decoder = SXSDecoder.for_region(
            self._decoder.dictionary,
            self._decoder.mode,
            tag=entry.tag,
            tags_inside_ids=entry.tags_inside_ids,
            content_size=entry.content_size,
            content_start=entry.start,
        )

    def put_refetch_chunk(self, index: int, blob: bytes) -> ChunkResult:
        """Process one chunk of the refetched byte range."""
        if self._refetch_decoder is None or self._header is None:
            raise AppletError("no refetch in progress")
        assert self._keys is not None and self._active_refetch is not None
        self.soe.charge_mac(len(blob))
        plaintext = open_chunk(self._header, index, blob, self._keys)
        self.soe.charge_decrypt(len(blob) - self._header.tag_length)
        self.bytes_decrypted += len(plaintext)
        decoder = self._refetch_decoder
        decoder.push(plaintext, index * self._header.chunk_size)
        events: list[Event] = []
        while (item := decoder.next_item()) is not None:
            if decoder.depth == 0 and isinstance(item, DecodedClose):
                break  # the subtree's own close: the shell already has it
            events.append(item.event)
        self._emit(events)
        done = decoder.document_done
        next_offset = 0 if done else decoder.next_needed_offset
        if done:
            self._active_refetch = None
            self._refetch_decoder = None
        return ChunkResult(
            next_offset=next_offset,
            document_done=done,
            output_available=len(self._output),
        )

    # -- output -------------------------------------------------------------------

    def read_output(self, limit: int = 256) -> bytes:
        """Drain up to ``limit`` bytes of authorized output.

        One copy, not two: the seed sliced the bytearray (copy) and
        re-wrapped it in ``bytes`` (copy).  The temporary view is
        released before ``del`` resizes the buffer.
        """
        piece = bytes(memoryview(self._output)[:limit])
        del self._output[:limit]
        return piece

    @property
    def output_pending(self) -> int:
        return len(self._output)

    @property
    def engine_stats(self):
        """The session's evaluator counters (``None`` pre-controller)."""
        if self._controller is None:
            return None
        return self._controller.stats

    @property
    def max_pending_bytes(self) -> int:
        if self._controller is None:
            return 0
        return self._controller.max_pending_bytes
