"""Secure-RAM accounting for the simulated card.

The Python process obviously uses more than 1 KB; what the meter tracks
is the *modeled* RAM a compact C implementation of the same structures
would occupy on the card (each structure declares its modeled size, see
e.g. ``TOKEN_BYTES`` in :mod:`repro.core.runtime`).  Experiment E5
reports the high-water mark and checks it stays under the e-gate's
1 KB; ``strict`` mode turns an overflow into a hard fault, which the
failure-injection tests exercise.
"""

from __future__ import annotations

from repro.errors import ResourceExhausted

DEFAULT_QUOTA = 1024  # bytes of application RAM on the e-gate card


class CardMemoryError(ResourceExhausted, MemoryError):
    """The applet exceeded the card's secure working memory."""

    def __init__(self, requested: int, used: int, quota: int) -> None:
        super().__init__(
            f"secure RAM exhausted: {used} + {requested} bytes over "
            f"quota {quota}"
        )
        self.requested = requested
        self.used = used
        self.quota = quota


class MemoryMeter:
    """Tracks modeled allocations per tag, with quota and high-water.

    ``strict=False`` records overflows (for measurement sweeps) instead
    of raising.
    """

    def __init__(self, quota: int | None = DEFAULT_QUOTA, strict: bool = True) -> None:
        self.quota = quota
        self.strict = strict
        self._usage: dict[str, int] = {}
        self._total = 0
        self.high_water = 0
        self.overflowed = False

    def allocate(self, tag: str, nbytes: int) -> None:
        """Charge ``nbytes`` against the quota."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if (
            self.quota is not None
            and self._total + nbytes > self.quota
        ):
            self.overflowed = True
            if self.strict:
                raise CardMemoryError(nbytes, self._total, self.quota)
        self._usage[tag] = self._usage.get(tag, 0) + nbytes
        self._total += nbytes
        if self._total > self.high_water:
            self.high_water = self._total

    def release(self, tag: str, nbytes: int) -> None:
        """Return ``nbytes`` to the pool."""
        held = self._usage.get(tag, 0)
        if nbytes > held:
            raise ValueError(
                f"releasing {nbytes} bytes from {tag!r} which holds {held}"
            )
        self._usage[tag] = held - nbytes
        self._total -= nbytes

    def usage(self, tag: str | None = None) -> int:
        """Current usage of one tag, or total."""
        if tag is None:
            return self._total
        return self._usage.get(tag, 0)

    def breakdown(self) -> dict[str, int]:
        """Current per-tag usage (non-zero tags only)."""
        return {tag: used for tag, used in self._usage.items() if used}
