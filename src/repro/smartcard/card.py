"""The smart card: APDU dispatcher around the applet.

Maps :class:`~repro.smartcard.apdu.CommandAPDU` units onto applet calls
and packs results into response payloads.  Every security failure
surfaces as an ISO status word, never as a Python exception crossing
the card boundary -- the proxy decides how to react, exactly like a
terminal application would.
"""

from __future__ import annotations

import struct

from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.crypto.container import DocumentHeader
from repro.errors import DocumentLocked, ResourceExhausted, TamperDetected
from repro.smartcard.apdu import (
    BATCH_FINAL,
    BATCH_SUMMARY,
    RESPONSE_OK,
    BatchAssembler,
    CommandAPDU,
    Instruction,
    ResponseAPDU,
    StatusWord,
)
from repro.smartcard.applet import AppletError, CardApplet, PendingStrategy
from repro.smartcard.secure_channel import (
    OP_PROVISION_KEY,
    OP_REVOKE_KEY,
    OP_SET_VERSION,
    CardSecureChannel,
)
from repro.smartcard.soe import SecureOperatingEnvironment

_FLAG_HAS_QUERY = 0x01
_FLAG_REFETCH = 0x02
_FLAG_PRUNE = 0x04

_ENTRIES_PER_PAGE = 13  # 2 + 13*18 = 236 bytes <= 256


def encode_header(header: DocumentHeader) -> bytes:
    """Serialize a container header for PUT_HEADER."""
    doc = header.doc_id.encode("utf-8")
    return (
        bytes([len(doc)])
        + doc
        + struct.pack(
            ">QIIQB",
            header.version,
            header.chunk_size,
            header.chunk_count,
            header.total_length,
            header.tag_length,
        )
        + header.tag
    )


def encode_groups(groups: frozenset[str]) -> bytes:
    """Serialize a subject's group set for BEGIN_SESSION.

    The card parses this ``[count][len g1]g1[len g2]g2...`` block in
    :meth:`SmartCard._begin_session`; both the pull proxy and the push
    subscriber frame it through here so the wire format cannot drift
    between the two paths.  Empty group sets encode to nothing.
    """
    if not groups:
        return b""
    payload = bytes([len(groups)])
    for group in sorted(groups):
        raw = group.encode("utf-8")
        payload += bytes([len(raw)]) + raw
    return payload


def decode_header(data: bytes) -> DocumentHeader:
    """Parse a PUT_HEADER payload."""
    doc_len = data[0]
    doc_id = data[1:1 + doc_len].decode("utf-8")
    fixed = data[1 + doc_len:1 + doc_len + 25]
    version, chunk_size, chunk_count, total_length, tag_length = struct.unpack(
        ">QIIQB", fixed
    )
    tag = data[1 + doc_len + 25:]
    if len(tag) != tag_length:
        raise ValueError("header tag length mismatch")
    return DocumentHeader(
        doc_id=doc_id,
        version=version,
        chunk_size=chunk_size,
        chunk_count=chunk_count,
        total_length=total_length,
        tag_length=tag_length,
        tag=tag,
    )


class SmartCard:
    """A card with one access-control applet installed.

    Passing ``admin_key`` *personalizes* the card: plaintext key
    provisioning is refused and every administrative change must come
    through the authenticated secure channel
    (:mod:`repro.smartcard.secure_channel`).
    """

    def __init__(
        self,
        soe: SecureOperatingEnvironment | None = None,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
        admin_key: bytes | None = None,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.soe = soe or SecureOperatingEnvironment()
        self.applet = CardApplet(
            self.soe, strategy=strategy, view_mode=view_mode, registry=registry
        )
        self._selected = False
        self._refetch_entries: list = []
        self._batch = BatchAssembler()
        self._batch_open = False
        self._secure_channel = (
            CardSecureChannel(admin_key) if admin_key is not None else None
        )

    def use_registry(self, registry: PolicyRegistry) -> None:
        """Point the applet at a shared compiled-policy cache."""
        self.applet.use_registry(registry)

    # -- dispatch ------------------------------------------------------------

    def process(self, command: CommandAPDU) -> ResponseAPDU:
        """Execute one APDU; security failures become status words.

        The ladder maps the :mod:`repro.errors` taxonomy onto ISO
        status words: tamper evidence (:class:`IntegrityError`,
        :class:`SecureChannelError`) -> ``0x6982``, resource exhaustion
        (:class:`CardMemoryError`) -> ``0x6581``, protocol misuse and
        missing keys -> ``0x6985``, malformed payloads -> ``0x6A80``.
        """
        try:
            return self._dispatch(command)
        except TamperDetected:
            self._abort_batch()
            return ResponseAPDU(StatusWord.SECURITY_STATUS_NOT_SATISFIED)
        except ResourceExhausted:
            self._abort_batch()
            return ResponseAPDU(StatusWord.MEMORY_FAILURE)
        except (AppletError, DocumentLocked):
            self._abort_batch()
            return ResponseAPDU(StatusWord.CONDITIONS_NOT_SATISFIED)
        except (ValueError, KeyError, IndexError, struct.error):
            self._abort_batch()
            return ResponseAPDU(StatusWord.WRONG_DATA)

    def _abort_batch(self) -> None:
        """Drop a half-assembled chunk batch after any failure."""
        self._batch.reset()
        self._batch_open = False

    #: Instruction -> unbound handler, built once (the dispatcher used
    #: to rebuild this mapping per APDU).
    _HANDLERS: "dict[Instruction, str]" = {
        Instruction.BEGIN_SESSION: "_begin_session",
        Instruction.PUT_HEADER: "_put_header",
        Instruction.PUT_RULES: "_put_rule",
        Instruction.PUT_CHUNK: "_put_chunk",
        Instruction.PUT_CHUNK_BATCH: "_put_chunk_batch",
        Instruction.END_DOCUMENT: "_end_document",
        Instruction.GET_OUTPUT: "_get_output",
        Instruction.BEGIN_REFETCH: "_begin_refetch",
        Instruction.PUT_REFETCH_CHUNK: "_put_refetch_chunk",
        Instruction.ADMIN_PROVISION_KEY: "_provision_key",
        Instruction.SC_OPEN: "_sc_open",
        Instruction.SC_ADMIN: "_sc_admin",
        Instruction.GET_STATUS: "_get_status",
    }

    def _dispatch(self, command: CommandAPDU) -> ResponseAPDU:
        ins = command.ins
        if ins == Instruction.SELECT:
            self._selected = True
            return RESPONSE_OK
        if not self._selected:
            return ResponseAPDU(StatusWord.CONDITIONS_NOT_SATISFIED)
        name = self._HANDLERS.get(ins)
        if name is None:
            return ResponseAPDU(StatusWord.INS_NOT_SUPPORTED)
        return getattr(self, name)(command)

    # -- handlers ---------------------------------------------------------------

    def _begin_session(self, command: CommandAPDU) -> ResponseAPDU:
        self._abort_batch()
        data = command.data
        flags = data[0]
        offset = 1
        doc_len = data[offset]
        doc_id = data[offset + 1:offset + 1 + doc_len].decode("utf-8")
        offset += 1 + doc_len
        subject_len = data[offset]
        subject = data[offset + 1:offset + 1 + subject_len].decode("utf-8")
        offset += 1 + subject_len
        query = None
        if flags & _FLAG_HAS_QUERY:
            query_len = struct.unpack(">H", data[offset:offset + 2])[0]
            query = data[offset + 2:offset + 2 + query_len].decode("utf-8")
            offset += 2 + query_len
        groups: set[str] = set()
        if offset < len(data):
            group_count = data[offset]
            offset += 1
            for __ in range(group_count):
                group_len = data[offset]
                groups.add(
                    data[offset + 1:offset + 1 + group_len].decode("utf-8")
                )
                offset += 1 + group_len
        strategy = (
            PendingStrategy.REFETCH
            if flags & _FLAG_REFETCH
            else PendingStrategy.BUFFER
        )
        self.applet.view_mode = (
            ViewMode.PRUNE if flags & _FLAG_PRUNE else ViewMode.SKELETON
        )
        self.applet.begin_session(
            doc_id,
            subject,
            query=query,
            strategy=strategy,
            groups=frozenset(groups),
        )
        return RESPONSE_OK

    def _put_header(self, command: CommandAPDU) -> ResponseAPDU:
        self.applet.put_header(decode_header(command.data))
        return RESPONSE_OK

    def _put_rule(self, command: CommandAPDU) -> ResponseAPDU:
        index = (command.p1 << 8) | command.p2
        version = struct.unpack(">Q", command.data[:8])[0]
        self.applet.put_rule_record(index, version, command.data[8:])
        return RESPONSE_OK

    def _chunk_response(self, result) -> ResponseAPDU:
        payload = struct.pack(">QB", result.next_offset, int(result.document_done))
        sw = (
            StatusWord.MORE_OUTPUT
            if result.output_available
            else StatusWord.OK
        )
        return ResponseAPDU(sw, payload)

    def _put_chunk(self, command: CommandAPDU) -> ResponseAPDU:
        index = (command.p1 << 8) | command.p2
        return self._chunk_response(self.applet.put_chunk(index, command.data))

    def _put_chunk_batch(self, command: CommandAPDU) -> ResponseAPDU:
        """One frame of a multi-chunk batch (P1 bit 0 marks the last).

        Records completed by this frame are processed immediately, so
        the staging area never holds more than an unfinished record --
        the secure-RAM accounting is exactly the sequential path's.
        Only the final frame answers with the batch summary
        ``next_offset:u64 done:u8 consumed:u16 dropped:u16
        dropped_bytes:u32``; intermediate frames return a bare OK.  The
        response APDU's remaining capacity piggybacks the first slice
        of authorized output, sparing one GET_OUTPUT round trip per
        batch; MORE_OUTPUT signals whatever did not fit.
        """
        if not self._batch_open:
            self.applet.begin_chunk_batch()
            self._batch.reset()
            self._batch_open = True
        for index, blob in self._batch.feed(command.data):
            self.applet.put_batch_member(index, blob)
        if not command.p1 & BATCH_FINAL:
            return RESPONSE_OK
        if self._batch.residue:
            self._abort_batch()
            return ResponseAPDU(StatusWord.WRONG_DATA)
        self._batch_open = False
        result = self.applet.end_chunk_batch()
        payload = struct.pack(
            BATCH_SUMMARY,
            result.next_offset,
            int(result.document_done),
            result.chunks_consumed,
            result.chunks_dropped,
            result.bytes_dropped,
        )
        payload += self.applet.read_output(256 - len(payload))
        sw = (
            StatusWord.MORE_OUTPUT
            if self.applet.output_pending
            else StatusWord.OK
        )
        return ResponseAPDU(sw, payload)

    def _end_document(self, command: CommandAPDU) -> ResponseAPDU:
        page = command.p1
        if page == 0:
            self._refetch_entries = self.applet.end_document()
        entries = self._refetch_entries
        start = page * _ENTRIES_PER_PAGE
        chunk = entries[start:start + _ENTRIES_PER_PAGE]
        payload = struct.pack(">H", len(entries))
        for entry in chunk:
            payload += struct.pack(">HQQ", entry.entry_id, entry.start, entry.end)
        sw = (
            StatusWord.MORE_OUTPUT
            if self.applet.output_pending
            else StatusWord.OK
        )
        return ResponseAPDU(sw, payload)

    def _get_output(self, command: CommandAPDU) -> ResponseAPDU:
        piece = self.applet.read_output(254)
        sw = StatusWord.MORE_OUTPUT if self.applet.output_pending else StatusWord.OK
        return ResponseAPDU(sw, piece)

    def _begin_refetch(self, command: CommandAPDU) -> ResponseAPDU:
        entry_id = (command.p1 << 8) | command.p2
        self.applet.begin_refetch(entry_id)
        return RESPONSE_OK

    def _put_refetch_chunk(self, command: CommandAPDU) -> ResponseAPDU:
        index = (command.p1 << 8) | command.p2
        return self._chunk_response(
            self.applet.put_refetch_chunk(index, command.data)
        )

    def _provision_key(self, command: CommandAPDU) -> ResponseAPDU:
        if self._secure_channel is not None:
            # Personalized card: plaintext provisioning is disabled.
            return ResponseAPDU(StatusWord.SECURITY_STATUS_NOT_SATISFIED)
        doc_len = command.data[0]
        doc_id = command.data[1:1 + doc_len].decode("utf-8")
        secret = command.data[1 + doc_len:]
        self.soe.provision_key(doc_id, secret)
        return RESPONSE_OK

    def _sc_open(self, command: CommandAPDU) -> ResponseAPDU:
        if self._secure_channel is None:
            return ResponseAPDU(StatusWord.CONDITIONS_NOT_SATISFIED)
        card_challenge, cryptogram = self._secure_channel.open(command.data)
        return ResponseAPDU(StatusWord.OK, card_challenge + cryptogram)

    def _sc_admin(self, command: CommandAPDU) -> ResponseAPDU:
        if self._secure_channel is None:
            return ResponseAPDU(StatusWord.CONDITIONS_NOT_SATISFIED)
        opcode, payload = self._secure_channel.unwrap(command.data)
        doc_len = payload[0]
        doc_id = payload[1:1 + doc_len].decode("utf-8")
        rest = payload[1 + doc_len:]
        if opcode == OP_PROVISION_KEY:
            self.soe.provision_key(doc_id, rest)
        elif opcode == OP_SET_VERSION:
            version = int.from_bytes(rest[:8], "big")
            self.soe.admin_set_version_register(doc_id, version)
        elif opcode == OP_REVOKE_KEY:
            self.soe.revoke_key(doc_id)
        else:
            return ResponseAPDU(StatusWord.WRONG_DATA)
        return RESPONSE_OK

    def _get_status(self, command: CommandAPDU) -> ResponseAPDU:
        payload = struct.pack(
            ">IQQQ",
            self.soe.memory.high_water,
            int(self.soe.cycles_used),
            self.applet.bytes_decrypted,
            self.applet.bytes_skipped,
        )
        return ResponseAPDU(StatusWord.OK, payload)
