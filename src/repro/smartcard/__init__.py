"""Smart-card Secure Operating Environment (SOE) simulator.

The demonstrator ran on Axalto e-gate cards: "a powerful CPU and strong
security features but still [...] a limited memory (only 1 KB of RAM
available for on-board applications) and a low bandwidth (2 KB/s)"
(Section 3).  We cannot ship that hardware, so this package models the
three constraints that drive every result in the paper as first-class,
measurable quantities:

* :mod:`repro.smartcard.memory`    -- a secure-RAM meter with a hard
  quota (default 1024 bytes) charged by every runtime structure;
* :mod:`repro.smartcard.resources` -- a deterministic cycle-cost CPU
  model and simulated clock (decryption and MAC cost per byte, automaton
  transitions per event, EEPROM write latency);
* :mod:`repro.smartcard.apdu`      -- the ISO 7816-ish APDU framing with
  255-byte payloads over a 2 KB/s half-duplex link.

:mod:`repro.smartcard.applet` is the on-card access-control engine: the
:class:`~repro.core.pipeline.AccessController` wrapped with decryption,
integrity checking and skip-index decisions; :mod:`repro.smartcard.card`
is the APDU dispatcher around it.
"""

from repro.smartcard.apdu import CommandAPDU, ResponseAPDU, StatusWord
from repro.smartcard.applet import CardApplet, PendingStrategy, RefetchRequest
from repro.smartcard.card import SmartCard
from repro.smartcard.memory import CardMemoryError, MemoryMeter
from repro.smartcard.resources import CostModel, LinkModel, SimClock
from repro.smartcard.secure_channel import (
    CardSecureChannel,
    HostSecureChannel,
    SecureChannelError,
)
from repro.smartcard.soe import SecureOperatingEnvironment

__all__ = [
    "CardApplet",
    "CardMemoryError",
    "CardSecureChannel",
    "CommandAPDU",
    "CostModel",
    "HostSecureChannel",
    "LinkModel",
    "MemoryMeter",
    "PendingStrategy",
    "RefetchRequest",
    "ResponseAPDU",
    "SecureChannelError",
    "SecureOperatingEnvironment",
    "SimClock",
    "SmartCard",
    "StatusWord",
]
