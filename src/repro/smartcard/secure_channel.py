"""Authenticated admin channel: the access-rights update protocol.

The demo paper stresses that "the tamper resistance of the access
control relies not only on the SOE but also on the whole environment
(e.g., communication protocol, access rights update protocol, etc.)"
(Section 1, objective 2).  Keys and version registers must only change
under the document owner's authority, even though every byte crosses
an untrusted terminal.

The protocol is a deliberately small cousin of GlobalPlatform secure
messaging:

1. **Mutual challenge** -- host sends an 8-byte challenge; the card
   answers with its own challenge plus a cryptogram proving knowledge
   of the shared admin key.  Both sides derive a fresh session key
   from ``(admin key, host challenge, card challenge)``.
2. **Wrapped commands** -- every admin command is framed as
   ``seq(4) | opcode(1) | payload`` with an 8-byte HMAC under the
   session key.  The sequence number is checked strictly increasing,
   so recorded frames cannot be replayed, reordered or dropped
   silently.

Once a card is *personalized* (an admin key installed), the plaintext
``ADMIN_PROVISION_KEY`` instruction is refused -- all provisioning must
flow through this channel.
"""

from __future__ import annotations

import hashlib
import hmac
import os

from repro.errors import TamperDetected

CHALLENGE_SIZE = 8
FRAME_MAC_SIZE = 8

OP_PROVISION_KEY = 0x01
OP_SET_VERSION = 0x02
OP_REVOKE_KEY = 0x03


class SecureChannelError(TamperDetected):
    """Authentication, integrity or ordering failure on the channel."""


def _session_key(admin_key: bytes, host_challenge: bytes, card_challenge: bytes) -> bytes:
    material = b"sc:" + host_challenge + card_challenge
    return hmac.new(admin_key, material, hashlib.sha256).digest()[:16]


def _cryptogram(session_key: bytes) -> bytes:
    return hmac.new(session_key, b"card-auth", hashlib.sha256).digest()[:8]


def _frame_mac(session_key: bytes, body: bytes) -> bytes:
    return hmac.new(session_key, b"frame:" + body, hashlib.sha256).digest()[
        :FRAME_MAC_SIZE
    ]


class CardSecureChannel:
    """Card-side endpoint (state lives inside the SOE)."""

    def __init__(self, admin_key: bytes) -> None:
        self._admin_key = admin_key
        self._session_key: bytes | None = None
        self._expected_seq = 0

    @property
    def is_open(self) -> bool:
        return self._session_key is not None

    def open(self, host_challenge: bytes) -> tuple[bytes, bytes]:
        """Answer a channel opening; returns (card challenge, cryptogram)."""
        if len(host_challenge) != CHALLENGE_SIZE:
            raise SecureChannelError("bad host challenge size")
        card_challenge = os.urandom(CHALLENGE_SIZE)
        self._session_key = _session_key(
            self._admin_key, host_challenge, card_challenge
        )
        self._expected_seq = 0
        return card_challenge, _cryptogram(self._session_key)

    def unwrap(self, frame: bytes) -> tuple[int, bytes]:
        """Verify one admin frame; returns (opcode, payload).

        Raises :class:`SecureChannelError` on any MAC or sequence
        violation and closes the session (fail-stop).
        """
        if self._session_key is None:
            raise SecureChannelError("secure channel not open")
        if len(frame) < 5 + FRAME_MAC_SIZE:
            raise SecureChannelError("frame too short")
        body, tag = frame[:-FRAME_MAC_SIZE], frame[-FRAME_MAC_SIZE:]
        expected = _frame_mac(self._session_key, body)
        if not hmac.compare_digest(expected, tag):
            self._session_key = None
            raise SecureChannelError("frame MAC mismatch")
        seq = int.from_bytes(body[:4], "big")
        if seq != self._expected_seq:
            self._session_key = None
            raise SecureChannelError(
                f"sequence violation: got {seq}, expected {self._expected_seq}"
            )
        self._expected_seq += 1
        return body[4], body[5:]

    def close(self) -> None:
        self._session_key = None
        self._expected_seq = 0


class HostSecureChannel:
    """Owner-side endpoint (runs on the owner's own trusted device)."""

    def __init__(self, admin_key: bytes) -> None:
        self._admin_key = admin_key
        self._session_key: bytes | None = None
        self._host_challenge: bytes | None = None
        self._seq = 0

    def open(self) -> bytes:
        """Start a session; returns the host challenge to send."""
        self._host_challenge = os.urandom(CHALLENGE_SIZE)
        self._session_key = None
        self._seq = 0
        return self._host_challenge

    def authenticate(self, card_challenge: bytes, cryptogram: bytes) -> None:
        """Verify the card's answer and derive the session key."""
        if self._host_challenge is None:
            raise SecureChannelError("open() first")
        session_key = _session_key(
            self._admin_key, self._host_challenge, card_challenge
        )
        if not hmac.compare_digest(_cryptogram(session_key), cryptogram):
            raise SecureChannelError("card cryptogram mismatch (wrong key?)")
        self._session_key = session_key

    def wrap(self, opcode: int, payload: bytes) -> bytes:
        """Frame one admin command for transport."""
        if self._session_key is None:
            raise SecureChannelError("channel not authenticated")
        body = self._seq.to_bytes(4, "big") + bytes([opcode]) + payload
        self._seq += 1
        return body + _frame_mac(self._session_key, body)

    # -- payload builders ------------------------------------------------

    @staticmethod
    def provision_key_payload(doc_id: str, secret: bytes) -> bytes:
        doc = doc_id.encode("utf-8")
        return bytes([len(doc)]) + doc + secret

    @staticmethod
    def set_version_payload(doc_id: str, version: int) -> bytes:
        doc = doc_id.encode("utf-8")
        return bytes([len(doc)]) + doc + version.to_bytes(8, "big")

    @staticmethod
    def revoke_key_payload(doc_id: str) -> bytes:
        doc = doc_id.encode("utf-8")
        return bytes([len(doc)]) + doc
