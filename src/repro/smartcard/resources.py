"""Deterministic cost model and simulated clock.

The original evaluation ([2]) ran on a cycle-accurate smart-card
simulator; we keep that spirit with a coarse but deterministic cycle
model.  Absolute numbers are calibration constants (documented below),
relative behaviour -- decryption and transfer dominating, costs linear
in bytes, automaton work linear in tokens -- reproduces the platform's.

Defaults model an e-gate-class card: 33 MHz CPU, software XTEA at ~60
cycles/byte, HMAC at ~50 cycles/byte, a 2 KB/s half-duplex serial link
with per-APDU latency, and millisecond-scale EEPROM writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CostModel:
    """Cycle and latency constants for the simulated card."""

    cpu_hz: float = 33_000_000.0
    cycles_decrypt_per_byte: int = 60
    cycles_mac_per_byte: int = 50
    cycles_decode_per_byte: int = 10
    cycles_per_event: int = 120
    cycles_per_token_check: int = 25
    cycles_per_token_advance: int = 60
    cycles_per_condition: int = 80
    cycles_per_output_byte: int = 8
    eeprom_write_seconds_per_byte: float = 30e-6

    def seconds(self, cycles: float) -> float:
        return cycles / self.cpu_hz


@dataclass(frozen=True, slots=True)
class LinkModel:
    """The terminal <-> card channel: 2 KB/s, 255-byte APDU payloads."""

    bandwidth_bytes_per_second: float = 2048.0
    apdu_overhead_seconds: float = 0.002
    max_command_payload: int = 255
    max_response_payload: int = 256

    def transfer_seconds(self, nbytes: int) -> float:
        return nbytes / self.bandwidth_bytes_per_second


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """The terminal <-> DSP channel (broadband relative to the card)."""

    bandwidth_bytes_per_second: float = 1_000_000.0
    request_overhead_seconds: float = 0.005

    def transfer_seconds(self, nbytes: int) -> float:
        return nbytes / self.bandwidth_bytes_per_second


class SimClock:
    """Accumulates simulated time per component.

    Components are coarse ("card_cpu", "link", "network", "eeprom",
    ...); the end-to-end latency model of experiment E6 is the sum --
    the link is half-duplex and the card blocks on it, so the phases
    serialize exactly as they do on the real reader.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}

    def add(self, component: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time cannot run backwards")
        try:
            self._seconds[component] += seconds
        except KeyError:
            self._seconds[component] = seconds

    def component(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def total(self) -> float:
        return sum(self._seconds.values())

    def breakdown(self) -> dict[str, float]:
        return dict(self._seconds)

    def snapshot(self) -> dict[str, float]:
        """Copy of the current component times (for session deltas)."""
        return dict(self._seconds)

    def since(self, snapshot: dict[str, float]) -> "SimClock":
        """A new clock holding the time elapsed since ``snapshot``.

        Sessions share one global clock (card, link, network); each
        session's metrics report the difference.
        """
        delta = SimClock()
        for component, seconds in self._seconds.items():
            elapsed = seconds - snapshot.get(component, 0.0)
            if elapsed > 0:
                delta.add(component, elapsed)
        return delta

    def reset(self) -> None:
        self._seconds.clear()


@dataclass
class SessionMetrics:
    """Everything a benchmark wants to know about one card session."""

    bytes_from_dsp: int = 0
    bytes_to_card: int = 0
    bytes_from_card: int = 0
    bytes_decrypted: int = 0
    bytes_skipped: int = 0
    chunks_sent: int = 0
    chunks_skipped: int = 0
    #: Speculation cost of a prefetch window: chunks fetched from the
    #: DSP that a skip directive then made useless (discarded at the
    #: proxy or dropped undecrypted on the card), and their ciphertext
    #: bytes.  Sequential transfers always report zero.
    chunks_wasted: int = 0
    bytes_wasted: int = 0
    #: DSP round trips issued by the proxy during the session.
    dsp_requests: int = 0
    apdu_count: int = 0
    output_bytes: int = 0
    refetch_count: int = 0
    refetch_bytes: int = 0
    ram_high_water: int = 0
    max_pending_bytes: int = 0
    card_cycles: float = 0.0
    #: Wall-clock dispatch counters of the table-driven product machine
    #: (see :class:`~repro.core.runtime.EngineStats`); all zero when the
    #: session fell back to the legacy token engine.  They observe real
    #: Python dispatch cost, not modeled card time.
    events_pumped: int = 0
    tokens_touched: int = 0
    product_states_interned: int = 0
    #: Set on sessions answered from the terminal's view cache: 1 when
    #: this session replayed a cached entry verbatim, and 1 when the
    #: answer was *derived* from a covering cached query by containment
    #: (``cache_semantic_hit`` implies a fabricated, card-free session:
    #: the only DSP traffic is the freshness probe).
    cache_hit: int = 0
    cache_semantic_hit: int = 0
    clock: SimClock = field(default_factory=SimClock)

    def as_dict(self) -> dict[str, float]:
        result = {
            key: value
            for key, value in self.__dict__.items()
            if isinstance(value, (int, float))
        }
        result.update(
            {f"time_{k}": v for k, v in self.clock.breakdown().items()}
        )
        result["time_total"] = self.clock.total()
        return result
