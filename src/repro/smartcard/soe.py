"""The Secure Operating Environment abstraction.

Section 2.1's three assumptions, made concrete:

1. "the code executed by the SOE cannot be corrupted" -- implicit (the
   simulator *is* the code);
2. "the SOE has at least a small quantity of secure stable storage (to
   store secrets like encryption keys)" -- :attr:`eeprom`, a persistent
   map with realistic write latency, holding the key ring and the
   per-document version registers that defeat replay;
3. "the SOE has at least a small quantity of secure working memory (to
   protect sensitive data structures at processing time)" --
   :attr:`memory`, the quota-enforcing RAM meter.

All CPU work is charged in cycles through this object so that a session
ends with a deterministic, reproducible time breakdown.
"""

from __future__ import annotations

from repro.crypto.keys import DocumentKeys, KeyRing
from repro.smartcard.memory import DEFAULT_QUOTA, MemoryMeter
from repro.smartcard.resources import CostModel, SimClock


class SecureOperatingEnvironment:
    """RAM + EEPROM + cycle-accounted CPU + crypto unit."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        ram_quota: int | None = DEFAULT_QUOTA,
        strict_memory: bool = True,
        clock: SimClock | None = None,
    ) -> None:
        self.cost = cost_model or CostModel()
        self._cpu_hz = self.cost.cpu_hz  # hoisted for the per-item charge
        self.memory = MemoryMeter(ram_quota, strict=strict_memory)
        self.clock = clock or SimClock()
        self.keyring = KeyRing()
        self._version_registers: dict[str, int] = {}
        self.cycles_used = 0.0
        self.eeprom_bytes_written = 0

    # -- CPU ----------------------------------------------------------------

    def charge_cycles(self, cycles: float) -> None:
        """Account CPU work and advance the simulated clock."""
        self.cycles_used += cycles
        # Same arithmetic as ``cost.seconds``; the attribute hop is
        # hoisted because this runs once per decoded item.
        self.clock.add("card_cpu", cycles / self._cpu_hz)

    def charge_decrypt(self, nbytes: int) -> None:
        self.charge_cycles(nbytes * self.cost.cycles_decrypt_per_byte)

    def charge_mac(self, nbytes: int) -> None:
        self.charge_cycles(nbytes * self.cost.cycles_mac_per_byte)

    def charge_decode(self, nbytes: int) -> None:
        self.charge_cycles(nbytes * self.cost.cycles_decode_per_byte)

    def charge_output(self, nbytes: int) -> None:
        self.charge_cycles(nbytes * self.cost.cycles_per_output_byte)

    # -- EEPROM (secure stable storage) ----------------------------------------

    def eeprom_write(self, nbytes: int) -> None:
        """Charge a stable-storage write (slow: ~30 us/byte)."""
        self.eeprom_bytes_written += nbytes
        self.clock.add("eeprom", nbytes * self.cost.eeprom_write_seconds_per_byte)

    def provision_key(self, doc_id: str, secret: bytes) -> None:
        """Install a document secret (admin / secure channel)."""
        self.keyring.grant(doc_id, secret)
        self.eeprom_write(len(doc_id) + len(secret))

    def keys_for(self, doc_id: str) -> DocumentKeys:
        return self.keyring.keys_for(doc_id)

    # -- replay protection ------------------------------------------------------

    def version_register(self, doc_id: str) -> int:
        """Last accepted version for a document (0 if never seen)."""
        return self._version_registers.get(doc_id, 0)

    def advance_version_register(self, doc_id: str, version: int) -> None:
        """Monotonically raise the register (EEPROM write)."""
        current = self._version_registers.get(doc_id, 0)
        if version > current:
            self._version_registers[doc_id] = version
            self.eeprom_write(8)

    def admin_set_version_register(self, doc_id: str, version: int) -> None:
        """Force the register (owner recovery via the secure channel)."""
        self._version_registers[doc_id] = version
        self.eeprom_write(8)

    def revoke_key(self, doc_id: str) -> None:
        """Erase a document secret (secure-channel revocation)."""
        self.keyring.revoke(doc_id)
        self.eeprom_write(len(doc_id))
