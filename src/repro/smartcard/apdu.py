"""APDU framing: the terminal <-> card protocol units.

"APDU: Application Protocol Data Unit: communication protocol between
the terminal and the smart card" (footnote 1 of the paper).  We model
the ISO 7816-4 short form: a 5-byte command header, up to 255 bytes of
command data, up to 256 bytes of response data plus a 2-byte status
word.  The proxy splits every larger transfer into APDU sequences, and
the link model charges each unit's bytes and fixed latency -- that is
how the paper's 2 KB/s bottleneck shows up in the benchmarks.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable


class Instruction(enum.IntEnum):
    """Applet instruction set."""

    SELECT = 0xA4
    BEGIN_SESSION = 0x10
    PUT_HEADER = 0x12
    PUT_RULES = 0x14
    PUT_QUERY = 0x16
    PUT_CHUNK = 0x20
    PUT_CHUNK_BATCH = 0x22
    END_DOCUMENT = 0x30
    GET_OUTPUT = 0x40
    BEGIN_REFETCH = 0x50
    PUT_REFETCH_CHUNK = 0x52
    ADMIN_PROVISION_KEY = 0x60
    ADMIN_SET_VERSION = 0x62
    SC_OPEN = 0x66
    SC_ADMIN = 0x68
    GET_STATUS = 0x70


class StatusWord(enum.IntEnum):
    """ISO-style status words returned by the card."""

    OK = 0x9000
    MORE_OUTPUT = 0x6100  # + low byte: pending output hint
    SECURITY_STATUS_NOT_SATISFIED = 0x6982
    CONDITIONS_NOT_SATISFIED = 0x6985
    WRONG_DATA = 0x6A80
    RECORD_NOT_FOUND = 0x6A83
    MEMORY_FAILURE = 0x6581
    INS_NOT_SUPPORTED = 0x6D00


class APDUError(Exception):
    """Raised by the proxy when the card reports an error status."""

    def __init__(self, status: int, context: str) -> None:
        super().__init__(f"card returned {status:#06x} during {context}")
        self.status = status


@dataclass(frozen=True, slots=True)
class CommandAPDU:
    """A command unit.  ``data`` must fit the short-form limit."""

    ins: Instruction
    p1: int = 0
    p2: int = 0
    data: bytes = b""
    cla: int = 0x80

    def __post_init__(self) -> None:
        if len(self.data) > 255:
            raise ValueError("short-form APDU data exceeds 255 bytes")
        if not (0 <= self.p1 <= 0xFF and 0 <= self.p2 <= 0xFF and 0 <= self.cla <= 0xFF):
            for name in ("p1", "p2", "cla"):
                if not 0 <= getattr(self, name) <= 0xFF:
                    raise ValueError(f"{name} out of byte range")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: CLA INS P1 P2 Lc + data."""
        return 5 + len(self.data)


@dataclass(frozen=True, slots=True)
class ResponseAPDU:
    """A response unit: data plus status word."""

    sw: int
    data: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if len(self.data) > 256:
            raise ValueError("short-form APDU response exceeds 256 bytes")

    @property
    def ok(self) -> bool:
        return self.sw == StatusWord.OK or (self.sw & 0xFF00) == 0x6100

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: data + SW1 SW2."""
        return len(self.data) + 2


#: Shared bare-OK response -- the answer to every PUT-style command,
#: allocated once (responses are immutable value objects).
RESPONSE_OK = ResponseAPDU(StatusWord.OK)


def split_payload(
    data: "bytes | bytearray | memoryview", limit: int = 255
) -> "list[memoryview] | list[bytes]":
    """Cut a transfer into APDU-sized pieces (at least one, maybe empty).

    The pieces are zero-copy views of ``data`` -- the payload bytes are
    materialized nowhere between the caller's buffer and the wire.
    Callers that outlive ``data`` (none today) must copy.
    """
    if not data:
        return [b""]
    view = memoryview(data)
    return [view[i:i + limit] for i in range(0, len(data), limit)]


# -- chunk-batch framing -----------------------------------------------------
#
# PUT_CHUNK_BATCH carries several chunks in one logical exchange.  The
# batch payload is a sequence of records ``index:u16 length:u16 blob``,
# cut into short-form frames with :func:`split_payload`; every frame is
# sent with P1=0 except the last, which sets :data:`BATCH_FINAL` and
# triggers processing of whatever the card has assembled.

#: P1 flag marking the last frame of a PUT_CHUNK_BATCH sequence.
BATCH_FINAL = 0x01

#: Layout of the batch-final response summary (before the piggybacked
#: output slice): next_offset, done, consumed, dropped, dropped_bytes.
BATCH_SUMMARY = ">QBHHI"

#: Bytes of framing per batch record (index:u16 + length:u16).
BATCH_RECORD_OVERHEAD = 4


def encode_batch_records(members: "list[tuple[int, bytes]]") -> bytearray:
    """Serialize ``(chunk_index, blob)`` pairs into one batch payload.

    Returns the working ``bytearray`` itself: the payload is consumed
    immediately by :func:`split_payload` and a final ``bytes()`` copy
    would double the transfer's memory traffic for nothing.
    """
    out = bytearray()
    for index, blob in members:
        if not 0 <= index <= 0xFFFF:
            raise ValueError("chunk index out of u16 range")
        if len(blob) > 0xFFFF:
            raise ValueError("chunk blob too large for batch record")
        out += index.to_bytes(2, "big")
        out += len(blob).to_bytes(2, "big")
        out += blob
    return out


@dataclass(frozen=True, slots=True)
class BatchOutcome:
    """Parsed result of one PUT_CHUNK_BATCH exchange.

    ``completed`` is False when a frame came back with an error status
    (``response`` then holds the failing frame's response and the
    summary fields are zero).
    """

    response: ResponseAPDU
    completed: bool = False
    next_offset: int = 0
    done: bool = False
    consumed: int = 0
    dropped: int = 0
    dropped_bytes: int = 0
    piggyback: bytes = b""


def transmit_chunk_batch(
    send: Callable[[CommandAPDU], ResponseAPDU],
    members: list[tuple[int, bytes]],
    limit: int = 255,
) -> BatchOutcome:
    """Drive one full batch exchange through ``send``.

    The terminal half of the PUT_CHUNK_BATCH protocol, shared by the
    pull proxy and the push subscriber: encode the records, cut them
    into frames, flag the last frame BATCH_FINAL, and parse the final
    response -- ``next_offset:u64 done:u8 consumed:u16 dropped:u16
    dropped_bytes:u32`` followed by the piggybacked output slice.
    Stops at the first frame the card refuses.
    """
    payload = encode_batch_records(members)
    frames = split_payload(payload, limit)
    response = ResponseAPDU(StatusWord.OK)
    for position, frame in enumerate(frames):
        final = position == len(frames) - 1
        response = send(
            CommandAPDU(
                Instruction.PUT_CHUNK_BATCH,
                p1=BATCH_FINAL if final else 0,
                data=frame,
            )
        )
        if not response.ok:
            return BatchOutcome(response=response)
    summary_size = struct.calcsize(BATCH_SUMMARY)
    next_offset, done, consumed, dropped, dropped_bytes = struct.unpack(
        BATCH_SUMMARY, response.data[:summary_size]
    )
    return BatchOutcome(
        response=response,
        completed=True,
        next_offset=next_offset,
        done=bool(done),
        consumed=consumed,
        dropped=dropped,
        dropped_bytes=dropped_bytes,
        piggyback=response.data[summary_size:],
    )


class BatchAssembler:
    """Card-side incremental parser for PUT_CHUNK_BATCH frames.

    Frames may split a record anywhere; the assembler buffers only
    frame-spanning tails (at most one record header plus one chunk
    blob, a transient I/O staging area like the card's APDU buffer --
    it is deliberately *not* charged against the secure RAM quota).
    Complete records are handed back as soon as their last byte
    arrives, so the applet processes the batch in streaming order.

    Records fully contained in one frame -- the overwhelming common
    case -- are returned as zero-copy subviews of that frame; only a
    record split across frames is assembled through (and copied out
    of) the staging buffer.  Returned views must therefore be consumed
    before the next frame arrives, which the synchronous APDU exchange
    guarantees.
    """

    def __init__(self) -> None:
        self._staging = bytearray()

    def feed(
        self, frame: "bytes | memoryview"
    ) -> "list[tuple[int, bytes | memoryview]]":
        """Absorb one frame; return the records it completed."""
        view = frame if isinstance(frame, memoryview) else memoryview(frame)
        size = len(view)
        position = 0
        records: list[tuple[int, "bytes | memoryview"]] = []
        staging = self._staging
        while staging:
            # Finish the record left dangling by the previous frame:
            # top the staging buffer up to the header, then the body.
            if len(staging) < BATCH_RECORD_OVERHEAD:
                take = min(BATCH_RECORD_OVERHEAD - len(staging), size - position)
                staging += view[position:position + take]
                position += take
                if len(staging) < BATCH_RECORD_OVERHEAD:
                    return records
            end = BATCH_RECORD_OVERHEAD + int.from_bytes(staging[2:4], "big")
            take = min(end - len(staging), size - position)
            staging += view[position:position + take]
            position += take
            if len(staging) < end:
                return records
            index = int.from_bytes(staging[0:2], "big")
            records.append((index, bytes(staging[BATCH_RECORD_OVERHEAD:end])))
            staging.clear()
        while size - position >= BATCH_RECORD_OVERHEAD:
            length = int.from_bytes(view[position + 2:position + 4], "big")
            end = position + BATCH_RECORD_OVERHEAD + length
            if end > size:
                break
            index = int.from_bytes(view[position:position + 2], "big")
            records.append((index, view[position + BATCH_RECORD_OVERHEAD:end]))
            position = end
        if position < size:
            staging += view[position:]
        return records

    @property
    def residue(self) -> int:
        """Bytes of an unfinished record still staged."""
        return len(self._staging)

    def reset(self) -> None:
        self._staging.clear()
