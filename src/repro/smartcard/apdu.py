"""APDU framing: the terminal <-> card protocol units.

"APDU: Application Protocol Data Unit: communication protocol between
the terminal and the smart card" (footnote 1 of the paper).  We model
the ISO 7816-4 short form: a 5-byte command header, up to 255 bytes of
command data, up to 256 bytes of response data plus a 2-byte status
word.  The proxy splits every larger transfer into APDU sequences, and
the link model charges each unit's bytes and fixed latency -- that is
how the paper's 2 KB/s bottleneck shows up in the benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Instruction(enum.IntEnum):
    """Applet instruction set."""

    SELECT = 0xA4
    BEGIN_SESSION = 0x10
    PUT_HEADER = 0x12
    PUT_RULES = 0x14
    PUT_QUERY = 0x16
    PUT_CHUNK = 0x20
    END_DOCUMENT = 0x30
    GET_OUTPUT = 0x40
    BEGIN_REFETCH = 0x50
    PUT_REFETCH_CHUNK = 0x52
    ADMIN_PROVISION_KEY = 0x60
    ADMIN_SET_VERSION = 0x62
    SC_OPEN = 0x66
    SC_ADMIN = 0x68
    GET_STATUS = 0x70


class StatusWord(enum.IntEnum):
    """ISO-style status words returned by the card."""

    OK = 0x9000
    MORE_OUTPUT = 0x6100  # + low byte: pending output hint
    SECURITY_STATUS_NOT_SATISFIED = 0x6982
    CONDITIONS_NOT_SATISFIED = 0x6985
    WRONG_DATA = 0x6A80
    RECORD_NOT_FOUND = 0x6A83
    MEMORY_FAILURE = 0x6581
    INS_NOT_SUPPORTED = 0x6D00


class APDUError(Exception):
    """Raised by the proxy when the card reports an error status."""

    def __init__(self, status: int, context: str) -> None:
        super().__init__(f"card returned {status:#06x} during {context}")
        self.status = status


@dataclass(frozen=True, slots=True)
class CommandAPDU:
    """A command unit.  ``data`` must fit the short-form limit."""

    ins: Instruction
    p1: int = 0
    p2: int = 0
    data: bytes = b""
    cla: int = 0x80

    def __post_init__(self) -> None:
        if len(self.data) > 255:
            raise ValueError("short-form APDU data exceeds 255 bytes")
        for name in ("p1", "p2", "cla"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFF:
                raise ValueError(f"{name} out of byte range")

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: CLA INS P1 P2 Lc + data."""
        return 5 + len(self.data)


@dataclass(frozen=True, slots=True)
class ResponseAPDU:
    """A response unit: data plus status word."""

    sw: int
    data: bytes = field(default=b"")

    def __post_init__(self) -> None:
        if len(self.data) > 256:
            raise ValueError("short-form APDU response exceeds 256 bytes")

    @property
    def ok(self) -> bool:
        return self.sw == StatusWord.OK or (self.sw & 0xFF00) == 0x6100

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: data + SW1 SW2."""
        return len(self.data) + 2


def split_payload(data: bytes, limit: int = 255) -> list[bytes]:
    """Cut a transfer into APDU-sized pieces (at least one, maybe empty)."""
    if not data:
        return [b""]
    return [data[i:i + limit] for i in range(0, len(data), limit)]
