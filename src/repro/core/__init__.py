"""The paper's primary contribution: streaming access control for XML.

The package implements Section 2 of the paper:

* :mod:`repro.core.rules` -- the ``<sign, subject, object>`` access-rule
  model with cascading propagation (Section 2.2),
* :mod:`repro.core.nfa` / :mod:`repro.core.compile` -- the
  non-deterministic automata of Figure 2 (navigational path + predicate
  paths),
* :mod:`repro.core.runtime` -- the token-stack engine that advances all
  automata on ``open``/``value``/``close`` events and backtracks,
* :mod:`repro.core.conditions` / :mod:`repro.core.decisions` -- the
  predicate set, pending rules and the sign stack with
  Denial-Takes-Precedence and Most-Specific-Object-Takes-Precedence,
* :mod:`repro.core.evaluator` + :mod:`repro.core.delivery` +
  :mod:`repro.core.pipeline` -- the streaming evaluator producing the
  authorized view of a document,
* :mod:`repro.core.reference` -- a non-streaming oracle used for
  differential testing.
"""

from repro.core.analysis import PolicyReport, analyse, conflicts, minimize
from repro.core.compiled import CompiledPolicy, PolicyRegistry, compile_policy
from repro.core.delivery import ViewMode
from repro.core.multicast import (
    MultiSubjectEvaluator,
    multicast_view_texts,
    multicast_views,
)
from repro.core.pipeline import AccessController, authorized_view
from repro.core.reference import reference_view
from repro.core.rules import AccessRule, RuleSet, Sign, Subject

__all__ = [
    "AccessController",
    "AccessRule",
    "CompiledPolicy",
    "MultiSubjectEvaluator",
    "PolicyRegistry",
    "PolicyReport",
    "RuleSet",
    "Sign",
    "Subject",
    "ViewMode",
    "analyse",
    "authorized_view",
    "compile_policy",
    "conflicts",
    "minimize",
    "multicast_view_texts",
    "multicast_views",
    "reference_view",
]
