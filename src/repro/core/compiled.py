"""Compile-once / evaluate-many policy layer.

The paper's engine compiles access rules into automata when the policy
is uploaded and then streams many documents through them (Section 2.3).
The seed reproduction instead recompiled every rule path on each
:class:`~repro.core.pipeline.AccessController` construction -- once per
(document, subject) pass.  This module restores the paper's split:

* :class:`CompiledPolicy` is the frozen product of compilation: the
  rule automata, their signs, the total automaton state count and the
  modeled secure-RAM cost.  It is immutable and safe to share between
  any number of concurrent evaluations.
* :func:`compile_policy` builds one from a :class:`RuleSet`.
* :class:`PolicyRegistry` is an LRU cache of compiled policies keyed by
  ``(ruleset_fingerprint, subject, default)``, with explicit
  invalidation for policy churn and a secondary cache for compiled
  query paths.

Per-document setup through this layer allocates only tokens and
frames; NFAs are compiled exactly once per distinct policy.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Union

from repro.core.nfa import CompiledPath, compile_path
from repro.core.rules import RuleSet, Sign, Subject
from repro.xpathlib.ast import Path
from repro.xpathlib.parser import parse_path

#: Modeled RAM cost of one compiled automaton state (compact C layout).
#: Historically defined in :mod:`repro.smartcard.applet`; it lives here
#: now so the RAM model travels with the compiled artifact.
AUTOMATON_STATE_BYTES = 4


@dataclass(frozen=True, slots=True)
class CompiledPolicy:
    """The frozen, shareable result of compiling one subject's policy.

    ``automata[i]`` carries sign ``signs[i]``; ``default`` is the
    closed/open-world default the decision chain starts from.
    ``state_count`` totals every navigational and predicate state, so
    the card can charge secure RAM without recompiling anything.
    ``fingerprint`` is the content hash of the *effective* (already
    subject-filtered) sub-policy -- two subjects whose rights coincide
    compile to the same fingerprint.
    """

    fingerprint: str
    subject: Subject | None
    default: Sign
    automata: tuple[CompiledPath, ...]
    signs: tuple[Sign, ...]
    state_count: int

    def __len__(self) -> int:
        return len(self.automata)

    @property
    def ram_bytes(self) -> int:
        """Modeled secure-RAM footprint of the compiled automata."""
        return self.state_count * AUTOMATON_STATE_BYTES


def _subject_key(subject: Subject | str | None) -> Subject | None:
    if isinstance(subject, str):
        return Subject(subject)
    return subject


def compile_policy(
    rules: RuleSet,
    subject: Subject | str | None = None,
    default: Sign = Sign.DENY,
) -> CompiledPolicy:
    """Compile the sub-policy of ``rules`` applying to ``subject``.

    ``subject=None`` means the rule set is already subject-specific
    (that is how the card receives it: the DSP stores per-subject
    encrypted rule sets).
    """
    subject = _subject_key(subject)
    if subject is not None:
        rules = rules.for_subject(subject)
    automata: list[CompiledPath] = []
    signs: list[Sign] = []
    for rule in rules:
        automata.append(compile_path(rule.object))
        signs.append(rule.sign)
    return CompiledPolicy(
        fingerprint=rules.fingerprint(),
        subject=subject,
        default=default,
        automata=tuple(automata),
        signs=tuple(signs),
        state_count=sum(path.state_count() for path in automata),
    )


class RegistryStats:
    """Counters of one registry's cache behavior."""

    __slots__ = ("hits", "misses", "query_hits", "query_misses", "evictions", "invalidated")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.query_hits = 0
        self.query_misses = 0
        self.evictions = 0
        self.invalidated = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegistryStats(hits={self.hits}, misses={self.misses}, "
            f"query_hits={self.query_hits}, query_misses={self.query_misses}, "
            f"evictions={self.evictions}, invalidated={self.invalidated})"
        )


class PolicyRegistry:
    """An LRU cache of :class:`CompiledPolicy` objects.

    Conceptually keyed by ``(ruleset, subject, default)``; physically
    the key is the content fingerprint of the *effective* sub-policy
    -- ``rules.for_subject(subject)`` -- plus the default sign.  Two
    subjects whose rights coincide (e.g. two members of the same
    subscription tier) therefore share one entry and one set of
    compiled automata, and policy churn (a changed, added or removed
    rule) naturally misses and compiles fresh automata.

    A side index maps each *source* rule set's fingerprint (current
    and, via :meth:`~repro.core.rules.RuleSet.fingerprint_history`,
    recently superseded) to the entries it produced, so
    :meth:`invalidate` can eagerly evict a retired policy generation
    -- even when the rule set was churned in place -- instead of
    letting it linger until LRU pressure.  The index is kept in
    lock-step with the entries (a reverse map cleans it on eviction),
    so invalidation never silently misses a live entry.

    The registry also caches compiled *query* paths (pull scenarios),
    keyed by their text form.  All methods are thread-safe.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("registry capacity must be positive")
        self.capacity = capacity
        self.stats = RegistryStats()
        self._lock = threading.Lock()
        self._policies: OrderedDict[tuple[str, Sign], CompiledPolicy] = (
            OrderedDict()
        )
        # source ruleset fingerprint -> the policy keys it produced,
        # plus the reverse map used to clean up on eviction.
        self._sources: dict[str, set[tuple[str, Sign]]] = {}
        self._key_sources: dict[tuple[str, Sign], set[str]] = {}
        # (source fingerprint, subject, default) -> policy key: an O(1)
        # accelerator so warm lookups skip the for_subject filter and
        # the effective-fingerprint hash.  Entries may dangle after an
        # eviction; a dangling alias just falls back to the slow path.
        self._aliases: OrderedDict[
            tuple[str, Subject | None, Sign], tuple[str, Sign]
        ] = OrderedDict()
        self._queries: OrderedDict[str, CompiledPath] = OrderedDict()

    def __len__(self) -> int:
        return len(self._policies)

    def __bool__(self) -> bool:
        # An empty registry is still a registry: callers use
        # ``registry or PolicyRegistry()``-style defaulting, which must
        # not silently replace an empty shared cache.
        return True

    # -- policies ---------------------------------------------------------

    def get(
        self,
        rules: Union[RuleSet, "CompiledPolicy"],
        subject: Subject | str | None = None,
        default: Sign = Sign.DENY,
    ) -> CompiledPolicy:
        """The compiled policy for ``(rules, subject, default)``.

        Compiles on the first request and returns the cached automata
        afterwards.  A prebuilt :class:`CompiledPolicy` passes through
        untouched.
        """
        if isinstance(rules, CompiledPolicy):
            return rules
        source_fingerprint = rules.fingerprint()
        subject = _subject_key(subject)
        alias = (source_fingerprint, subject, default)
        with self._lock:
            key = self._aliases.get(alias)
            if key is not None:
                cached = self._policies.get(key)
                if cached is not None:
                    self._aliases.move_to_end(alias)
                    self._policies.move_to_end(key)
                    self.stats.hits += 1
                    return cached
        # Slow path: filter the sub-policy and hash it.  Compilation
        # happens outside the lock: it is pure, and a rare duplicate
        # compile is cheaper than serializing all compiles.
        effective = rules.for_subject(subject) if subject is not None else rules
        key = (effective.fingerprint(), default)
        with self._lock:
            self._index_source(source_fingerprint, alias, key)
            cached = self._policies.get(key)
            if cached is not None:
                self._policies.move_to_end(key)
                self.stats.hits += 1
                return cached
        policy = compile_policy(effective, None, default)
        with self._lock:
            self.stats.misses += 1
            self._policies[key] = policy
            self._policies.move_to_end(key)
            while len(self._policies) > self.capacity:
                evicted, __ = self._policies.popitem(last=False)
                self._unindex(evicted)
                self.stats.evictions += 1
        return policy

    def _index_source(
        self,
        fingerprint: str,
        alias: tuple[str, Subject | None, Sign],
        key: tuple[str, Sign],
    ) -> None:
        self._sources.setdefault(fingerprint, set()).add(key)
        self._key_sources.setdefault(key, set()).add(fingerprint)
        self._aliases[alias] = key
        self._aliases.move_to_end(alias)
        # Aliases are a pure accelerator -- bound them independently;
        # dropping one only costs a slow-path lookup later.
        while len(self._aliases) > 4 * self.capacity:
            self._aliases.popitem(last=False)

    def _unindex(self, key: tuple[str, Sign]) -> None:
        """Remove a dead policy key from the source index."""
        for fingerprint in self._key_sources.pop(key, ()):
            keys = self._sources.get(fingerprint)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._sources[fingerprint]

    def invalidate(self, rules: Union[RuleSet, str, None] = None) -> int:
        """Evict cached policies; returns the number of entries dropped.

        ``rules`` may be the rule set itself (current *and* recently
        superseded in-place generations are evicted, via its
        fingerprint history), a source fingerprint string, or ``None``
        to drop everything including cached queries.
        """
        with self._lock:
            if rules is None:
                dropped = len(self._policies) + len(self._queries)
                self._policies.clear()
                self._sources.clear()
                self._key_sources.clear()
                self._aliases.clear()
                self._queries.clear()
            else:
                if isinstance(rules, str):
                    fingerprints = {rules}
                else:
                    fingerprints = {rules.fingerprint()}
                    fingerprints.update(rules.fingerprint_history())
                dropped = 0
                for fingerprint in fingerprints:
                    for key in self._sources.pop(fingerprint, set()).copy():
                        if self._policies.pop(key, None) is not None:
                            dropped += 1
                        self._unindex(key)
            self.stats.invalidated += dropped
            return dropped

    def clear(self) -> None:
        """Drop every cached policy and query."""
        self.invalidate(None)

    # -- queries ----------------------------------------------------------

    def get_query(self, query: Union[str, Path, CompiledPath]) -> CompiledPath:
        """The compiled automaton of one query path, cached by text."""
        if isinstance(query, CompiledPath):
            return query
        if isinstance(query, str):
            key = query
            parsed: Path | None = None
        else:
            key = str(query)
            parsed = query
        with self._lock:
            cached = self._queries.get(key)
            if cached is not None:
                self._queries.move_to_end(key)
                self.stats.query_hits += 1
                return cached
        if parsed is None:
            parsed = parse_path(query)  # type: ignore[arg-type]
        compiled = compile_path(parsed)
        with self._lock:
            self.stats.query_misses += 1
            self._queries[key] = compiled
            self._queries.move_to_end(key)
            while len(self._queries) > self.capacity:
                self._queries.popitem(last=False)
                self.stats.evictions += 1
        return compiled
