"""Shared-pass evaluation of one document against many subjects.

The push scenario (Section 4 of the paper) broadcasts one stream to a
whole community; every subscriber holds different rights but the
*document events are the same for everyone*.  Evaluating each
subscriber in isolation parses (and tokenizes, and advances automata
over) the identical stream N times.  This module amortizes that: one
:class:`~repro.core.runtime.TokenEngine` pumps every subscriber's
automata over a single pass of the event stream, while each subscriber
keeps a private decision stack and delivery engine (their views
genuinely differ).

Shared automata are shared for real: when two subscribers carry the
same compiled policy (one registry entry -- e.g. two members of the
same subscription tier), their predicate conditions are instantiated
once and both lanes' decisions hang off the same condition objects.

This mirrors the amortization argument of dissemination systems such
as Sampaio et al. ("Secure and Privacy-Aware Data Dissemination for
Cloud-Based Applications"): policy evaluation cost must be shared
across recipients for broadcast to scale.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.compiled import CompiledPolicy, PolicyRegistry, compile_policy
from repro.core.conditions import Condition
from repro.core.decisions import DecisionNode
from repro.core.delivery import DeliveryEngine, ViewMode
from repro.core.product import ProductEngine
from repro.core.rules import RuleSet, Sign, Subject
from repro.core.runtime import EngineStats, TokenEngine
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent
from repro.xmlstream.writer import write_string


class _LaneSink:
    """Routes one automaton's completed matches to its subject's lane."""

    __slots__ = ("lane", "sign")

    def __init__(self, lane: "_Lane", sign: Sign) -> None:
        self.lane = lane
        self.sign = sign

    def on_match(self, conditions: frozenset[Condition]) -> None:
        self.lane.collected.append((self.sign, conditions))


class _Lane:
    """One subject's private state within the shared pass."""

    __slots__ = ("policy", "delivery", "decisions", "collected")

    def __init__(self, policy: CompiledPolicy, mode: ViewMode) -> None:
        self.policy = policy
        self.delivery = DeliveryEngine(mode)
        self.decisions: list[DecisionNode] = [
            DecisionNode.default_root(policy.default)
        ]
        self.collected: list[tuple[Sign, frozenset[Condition]]] = []


class MultiSubjectEvaluator:
    """Evaluates one event stream once against N compiled policies.

    ``feed`` returns one output-event list per lane (same order as the
    ``policies`` argument); ``finish`` returns the final lists.  The
    document is parsed once, the token stack is pumped once per event,
    and only the per-subject decision folding and delivery run N times.
    """

    def __init__(
        self,
        policies: Sequence[CompiledPolicy],
        mode: ViewMode = ViewMode.SKELETON,
        stats: EngineStats | None = None,
        engine: str = "auto",
    ) -> None:
        if not policies:
            raise ValueError("at least one policy required")
        self.stats = stats or EngineStats()
        # Purely navigational policies (the broadcast common case) run
        # on the shared table-driven product machine: identical
        # compiled paths across lanes collapse into one product slot,
        # so per-event cost tracks *distinct* automata, not audience
        # size.  Any predicate anywhere falls back to the token engine.
        # ``engine`` pins the choice for A/B benchmarks and the
        # differential test suite: "product" refuses impure policies
        # rather than silently changing what is being measured.
        pure = all(
            path.pure for policy in policies for path in policy.automata
        )
        if engine == "auto":
            use_product = pure
        elif engine == "product":
            if not pure:
                raise ValueError("product engine requires pure policies")
            use_product = True
        elif engine == "legacy":
            use_product = False
        else:
            raise ValueError(f"unknown engine {engine!r}")
        self._engine: ProductEngine | TokenEngine = (
            ProductEngine(stats=self.stats)
            if use_product
            else TokenEngine(stats=self.stats)
        )
        self._lanes: list[_Lane] = []
        for policy in policies:
            lane = _Lane(policy, mode)
            self._engine.add_policy(
                policy, [_LaneSink(lane, sign) for sign in policy.signs]
            )
            self._lanes.append(lane)
        self._depth = 0
        self._finished = False

    @property
    def lane_count(self) -> int:
        return len(self._lanes)

    def feed(self, event: Event) -> list[list[Event]]:
        """Process one event; return the per-lane output it released."""
        self._pump(event)
        return [lane.delivery.drain() for lane in self._lanes]

    def run(self, events: Iterable[Event]) -> list[list[Event]]:
        """Pump a whole event slice per call; return complete outputs.

        Equivalent to feeding every event and then :meth:`finish`, with
        the per-event drain of every lane's delivery buffer elided --
        output accumulates inside the delivery engines and is drained
        once at the end.  The emitted events are identical (drains only
        decide *when* ready output is collected, never what), but the
        per-event Python overhead drops from O(lanes) list building to
        the one shared engine dispatch.
        """
        pump = self._pump
        for event in events:
            pump(event)
        return self.finish()

    def _pump(self, event: Event) -> None:
        if self._finished:
            raise RuntimeError("evaluator already finished")
        if isinstance(event, OpenEvent):
            for lane in self._lanes:
                lane.collected.clear()
            self._engine.open(event.tag)
            for lane in self._lanes:
                node = DecisionNode(parent=lane.decisions[-1])
                for sign, conditions in lane.collected:
                    node.add_match(sign, conditions)
                lane.decisions.append(node)
                lane.delivery.open(event, node)
            self._depth += 1
        elif isinstance(event, ValueEvent):
            if self._depth == 0:
                raise ValueError("text event outside the root element")
            self._engine.value(event.text)
            for lane in self._lanes:
                lane.delivery.value(event)
        elif isinstance(event, CloseEvent):
            if self._depth == 0:
                raise ValueError("unbalanced close event")
            for lane in self._lanes:
                lane.delivery.close(event)
            self._engine.close()
            for lane in self._lanes:
                lane.decisions.pop()
            self._depth -= 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"not an event: {event!r}")

    def finish(self) -> list[list[Event]]:
        """Signal end of document; return the final per-lane output."""
        if self._depth != 0:
            raise ValueError("document ended with unclosed elements")
        self._finished = True
        return [lane.delivery.finish() for lane in self._lanes]

    def active_token_count(self) -> int:
        return self._engine.active_token_count()


def multicast_views(
    events: Iterable[Event],
    rules: RuleSet,
    subjects: Sequence[Subject | str],
    default: Sign = Sign.DENY,
    mode: ViewMode = ViewMode.SKELETON,
    registry: PolicyRegistry | None = None,
    stats: EngineStats | None = None,
) -> dict[str, list[Event]]:
    """Authorized views of every subject, computed in one parse pass.

    Returns ``{subject name: output events}`` (empty for an empty
    audience).  Subject names must be unique -- results are keyed by
    name, and silently collapsing two subjects could hand one of them
    the other's (possibly more permissive) view.  With a ``registry``,
    subjects sharing a sub-policy also share compiled automata (and
    their runtime tokens and conditions inside the shared engine).
    """
    if not subjects:
        return {}
    policies: list[CompiledPolicy] = []
    names: list[str] = []
    for subject in subjects:
        name = subject.name if isinstance(subject, Subject) else subject
        if name in names:
            raise ValueError(f"duplicate subject name {name!r}")
        names.append(name)
        if registry is not None:
            policies.append(registry.get(rules, subject, default))
        else:
            policies.append(compile_policy(rules, subject, default))
    evaluator = MultiSubjectEvaluator(policies, mode=mode, stats=stats)
    return dict(zip(names, evaluator.run(events)))


def multicast_view_texts(
    events: Iterable[Event],
    rules: RuleSet,
    subjects: Sequence[Subject | str],
    default: Sign = Sign.DENY,
    mode: ViewMode = ViewMode.SKELETON,
    registry: PolicyRegistry | None = None,
) -> dict[str, str]:
    """Like :func:`multicast_views`, rendered to XML text per subject.

    The shared rendering used by every multicast consumer (the
    dissemination preflight, the trusted-filter baselines): one parse
    pass, ``{subject name: serialized authorized view}``.
    """
    views = multicast_views(
        events, rules, subjects, default=default, mode=mode, registry=registry
    )
    return {name: write_string(view) for name, view in views.items()}
