"""Per-node authorization decisions and conflict resolution.

This module is the paper's *sign stack* generalized to three-valued
logic.  Each open element gets a :class:`DecisionNode` linked to its
parent's; the chain of decision nodes along the open-element path plays
the role of the stack that "keeps on the top the current sign that is
propagated if no other rule applies" (Section 2.3).

Conflict resolution (Section 2.2):

* **Most-Specific-Object-Takes-Precedence** -- a rule matching a node
  directly beats any decision propagated from an ancestor.  Encoded by
  the parent fallback: the parent's decision is consulted only when no
  direct match (definite or still-pending) survives.
* **Denial-Takes-Precedence** -- among direct matches on the same node a
  negative rule wins.  Encoded by the evaluation order below: a possible
  denial keeps the node undecided even when a permission is certain.

The default policy (closed-world) is a virtual root decision of DENY.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.conditions import Condition, Tristate, conjunction_state
from repro.core.rules import Sign

#: Modeled secure-RAM size of one decision node (the sign-stack entry).
DECISION_BYTES = 4


@dataclass(frozen=True, slots=True)
class Resolved:
    """A final decision."""

    sign: Sign


@dataclass(frozen=True, slots=True)
class Pending:
    """An undecided decision, blocked on the given conditions."""

    unknowns: frozenset[Condition]


Status = Resolved | Pending

#: Shared resolution singletons -- ``status()`` runs once or more per
#: element per evaluator, and the two resolved outcomes are value
#: objects (frozen, compared by field), so one instance each suffices.
_RESOLVED_DENY = Resolved(Sign.DENY)
_RESOLVED_PERMIT = Resolved(Sign.PERMIT)


class DecisionNode:
    """Authorization state of one element node.

    Direct matches are recorded at the node's ``open`` (all automata are
    checked there, so the match set is complete immediately); only the
    *conditions* guarding pending matches evolve afterwards.
    """

    __slots__ = ("parent", "_definite_deny", "_definite_permit", "_pending")

    def __init__(self, parent: "DecisionNode | None") -> None:
        self.parent = parent
        self._definite_deny = False
        self._definite_permit = False
        self._pending: list[tuple[frozenset[Condition], Sign]] = []

    @classmethod
    def default_root(cls, sign: Sign) -> "DecisionNode":
        """The virtual decision above the document root (default policy)."""
        root = cls(None)
        if sign is Sign.DENY:
            root._definite_deny = True
        else:
            root._definite_permit = True
        return root

    def add_match(self, sign: Sign, conditions: frozenset[Condition]) -> None:
        """Record a direct rule match on this node."""
        state = conjunction_state(conditions)
        if state is Tristate.FALSE:
            return
        if state is Tristate.TRUE:
            if sign is Sign.DENY:
                self._definite_deny = True
            else:
                self._definite_permit = True
        else:
            self._pending.append((conditions, sign))

    @property
    def has_direct_matches(self) -> bool:
        return bool(self._definite_deny or self._definite_permit or self._pending)

    def status(self) -> Status:
        """Best-knowledge decision under the conflict-resolution policies.

        Monotone: once :class:`Resolved`, later calls return the same
        sign; a :class:`Pending` result lists exactly the conditions
        whose resolution can change the outcome (the delivery engine
        subscribes to them).
        """
        if self._definite_deny:
            return _RESOLVED_DENY
        if not self._pending and not self._definite_permit:
            # Pure fallback node: nothing recorded here can ever decide
            # (the match set is complete at open), so the answer is the
            # nearest ancestor that holds any decision state.  Compress
            # the parent pointer to that ancestor -- repeated status
            # probes on deep chains become O(1) instead of O(depth).
            target = self.parent
            assert target is not None, "virtual root must be definite"
            while (
                target.parent is not None
                and not target._pending
                and not target._definite_deny
                and not target._definite_permit
            ):
                target = target.parent
            self.parent = target
            return target.status()
        unknowns: set[Condition] = set()
        deny_open = False
        for conditions, sign in self._pending:
            if sign is not Sign.DENY:
                continue
            state = conjunction_state(conditions)
            if state is Tristate.TRUE:
                return _RESOLVED_DENY
            if state is Tristate.UNKNOWN:
                deny_open = True
                unknowns.update(
                    c for c in conditions if c.state is Tristate.UNKNOWN
                )
        if deny_open:
            return Pending(frozenset(unknowns))
        if self._definite_permit:
            return _RESOLVED_PERMIT
        permit_open = False
        for conditions, sign in self._pending:
            if sign is not Sign.PERMIT:
                continue
            state = conjunction_state(conditions)
            if state is Tristate.TRUE:
                return _RESOLVED_PERMIT
            if state is Tristate.UNKNOWN:
                permit_open = True
                unknowns.update(
                    c for c in conditions if c.state is Tristate.UNKNOWN
                )
        if permit_open:
            return Pending(frozenset(unknowns))
        # No direct match survives: propagate from the ancestor chain
        # (Most-Specific-Object-Takes-Precedence fallback).
        assert self.parent is not None, "virtual root must be definite"
        return self.parent.status()
