"""Table-driven product automaton over all pure navigational paths.

The legacy :class:`~repro.core.runtime.TokenEngine` interprets every
automaton token on every XML event -- the per-event Python dispatch the
paper's evaluator must avoid to keep pace with streaming decryption.
This module compiles the whole per-subject automata *set* into one
product machine, NFA->DFA on the fly:

* a **product state** is the interned set of live ``(automaton, step)``
  pairs (:class:`_StateEntry`); identical sets share one entry, so the
  machine is a DFA over state *sets* built lazily as tags arrive;
* a **transition** is resolved once per ``(state, tag)`` pair and then
  memoized on the entry (:class:`_Transition`), so a subsequent open of
  the same tag in the same state is one dict hit;
* the per-frame **token multiplicities** (descendant-axis tokens
  duplicate under self-overlapping paths such as ``//a//a``) are kept
  *outside* the interned state as a count vector, and the arithmetic
  for a given ``(transition, counts)`` pair is itself memoized -- the
  steady state of a document replays ``(entry, tag, counts)`` triples
  it has already solved.

The machine is a **wall-clock optimization only**: for every event it
produces the exact :class:`~repro.core.runtime.EngineStats` deltas,
match firings and secure-RAM charges the token engine would have, so
the modeled :class:`~repro.smartcard.resources.SimClock` stays
bit-for-bit identical (guarded by ``tests/integration/
test_wallclock_parity.py`` and the differential suite in
``tests/core/test_product.py``).

Eligibility: only *pure* paths (``CompiledPath.pure`` -- no predicates,
no value tests) run here, because they provably never create
conditions or watchers; :class:`~repro.core.evaluator.StreamingEvaluator`
and :class:`~repro.core.multicast.MultiSubjectEvaluator` fall back to
the token engine otherwise.

Sharing: slots are keyed by compiled-path identity, so two lanes (or
two registry users) carrying the same ``CompiledPolicy`` share one slot
per automaton with a per-sink fan-out -- a 1,000-subscriber broadcast
under one effective policy advances *one* product machine per event.
"""

from __future__ import annotations

from repro.core.conditions import EMPTY_CONDITIONS
from repro.core.nfa import CompiledPath
from repro.core.runtime import (
    FRAME_BYTES,
    TOKEN_BYTES,
    EngineStats,
    MatchSink,
)


class _Totals:
    """Process-wide dispatch counters (``run_experiments.py --profile``)."""

    __slots__ = ("events_pumped", "tokens_touched", "product_states_interned")

    def __init__(self) -> None:
        self.events_pumped = 0
        self.tokens_touched = 0
        self.product_states_interned = 0


_TOTALS = _Totals()


def dispatch_totals() -> dict[str, int]:
    """Cumulative product-machine counters since interpreter start."""
    return {
        "events_pumped": _TOTALS.events_pumped,
        "tokens_touched": _TOTALS.tokens_touched,
        "product_states_interned": _TOTALS.product_states_interned,
    }


class _Slot:
    """One automaton of the product: a compiled path plus its sinks.

    The same path object registered several times (several lanes of a
    shared policy, or one policy seeding several engines' lanes) folds
    into one slot whose ``sinks`` fan a completed match out to every
    registrant -- the token engine would have kept one token per sink;
    here the duplication is a scalar weight.
    """

    __slots__ = ("path", "sinks", "steps")

    def __init__(self, path: CompiledPath) -> None:
        self.path = path
        self.sinks: list[MatchSink] = []
        #: (match_name, descendant) per step, hoisted once.
        self.steps = tuple(
            (step.match_name, step.descendant) for step in path.steps
        )


class _StateEntry:
    """One interned product state: a canonical set of live positions."""

    __slots__ = (
        "positions",  # tuple[(slot_index, step_index), ...] sorted
        "weights",  # per-position sink fan-out (token multiplier)
        "suffixes",  # per-position suffix label sets (skip-index test)
        "transitions",  # tag -> _Transition, built lazily
        "reach_memo",  # tags_inside -> bool, for can_complete_inside
    )

    def __init__(
        self,
        positions: tuple[tuple[int, int], ...],
        weights: tuple[int, ...],
        suffixes: tuple[frozenset[str], ...],
    ) -> None:
        self.positions = positions
        self.weights = weights
        self.suffixes = suffixes
        self.transitions: dict[str, _Transition] = {}
        self.reach_memo: dict[frozenset[str], bool] = {}


class _Transition:
    """The solved effect of one tag on one product state."""

    __slots__ = ("next_entry", "moves", "advance", "matchers", "memo")

    def __init__(
        self,
        next_entry: _StateEntry,
        moves: tuple[tuple[int, int], ...],
        advance: tuple[tuple[int, int], ...],
        matchers: tuple[tuple[int, tuple[MatchSink, ...]], ...],
    ) -> None:
        self.next_entry = next_entry
        #: Per next-state position: (source position in the current
        #: state or -1, +1 if an advance lands there).  Together with
        #: the count vector this reproduces the token engine's frame
        #: contents exactly (stays keep multiplicity, the advance is
        #: deduped to one token per sink).
        self.moves = moves
        #: (current position, weight) pairs whose step matches the tag
        #: -- the token engine's ``token_advances`` increments.
        self.advance = advance
        #: (current position, sinks) pairs whose *final* step matches
        #: -- each sink fires once per token of that position.
        self.matchers = matchers
        #: counts -> (new_counts, new_total, advances, fires) memo.
        self.memo: dict[
            tuple[int, ...],
            tuple[tuple[int, ...], int, int, tuple[MatchSink, ...]],
        ] = {}


class ProductEngine:
    """Drop-in engine for :class:`~repro.core.runtime.TokenEngine`
    restricted to pure navigational paths (see module docstring).

    ``memory`` is the optional secure-RAM meter; charges land in the
    same ``engine`` pool, in the same per-event amounts, as the token
    engine's.
    """

    def __init__(self, memory=None, stats: EngineStats | None = None) -> None:
        self._memory = memory
        self.stats = stats or EngineStats()
        self._slots: list[_Slot] = []
        self._slot_of: dict[int, int] = {}  # id(path) -> slot index
        self._added: list[tuple[CompiledPath, MatchSink]] = []
        self._intern: dict[frozenset[tuple[int, int]], _StateEntry] = {}
        #: Stack of (entry, counts, weighted token total); built from
        #: the registered slots when the root opens.
        self._frames: list[tuple[_StateEntry, tuple[int, ...], int]] | None = None
        self._root_tokens = 0
        self._charge(FRAME_BYTES)

    # -- memory hooks ---------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        if self._memory is not None:
            self._memory.allocate("engine", nbytes)

    def _release(self, nbytes: int) -> None:
        if self._memory is not None:
            self._memory.release("engine", nbytes)

    # -- setup ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current element depth (0 before the root opens)."""
        if self._frames is None:
            return 0
        return len(self._frames) - 1

    def add_automaton(self, path: CompiledPath, sink: MatchSink) -> None:
        """Seed a root slot for an absolute pure path."""
        if self._frames is not None:
            raise RuntimeError("automata must be added before the root opens")
        if not path.pure:
            raise ValueError(
                "ProductEngine only runs pure navigational paths; "
                "predicate-carrying paths need the TokenEngine"
            )
        index = self._slot_of.get(id(path))
        if index is None:
            index = len(self._slots)
            self._slot_of[id(path)] = index
            self._slots.append(_Slot(path))
        self._slots[index].sinks.append(sink)
        self._added.append((path, sink))
        self._root_tokens += 1
        self._charge(TOKEN_BYTES)

    def registered(self) -> list[tuple[CompiledPath, MatchSink]]:
        """The (path, sink) pairs added so far, in registration order."""
        return list(self._added)

    def retire(self) -> None:
        """Release the setup charges so another engine can take over.

        Used when a late-registered impure path demotes the evaluator
        to the token engine before parsing starts -- the replacement
        re-charges the same frame and tokens.
        """
        if self._frames is not None:
            raise RuntimeError("cannot retire after the root opened")
        self._release(FRAME_BYTES + TOKEN_BYTES * self._root_tokens)

    def add_policy(self, policy, sinks: "list[MatchSink]") -> None:
        """Seed every automaton of a prebuilt compiled policy."""
        if len(policy.automata) != len(sinks):
            raise ValueError("one sink per automaton required")
        for path, sink in zip(policy.automata, sinks):
            self.add_automaton(path, sink)

    def _intern_state(
        self, key: frozenset[tuple[int, int]]
    ) -> _StateEntry:
        entry = self._intern.get(key)
        if entry is None:
            positions = tuple(sorted(key))
            slots = self._slots
            entry = _StateEntry(
                positions,
                tuple(len(slots[s].sinks) for s, _ in positions),
                tuple(
                    slots[s].path.suffix_labels[j] for s, j in positions
                ),
            )
            self._intern[key] = entry
            self.stats.product_states_interned += 1
            _TOTALS.product_states_interned += 1
        return entry

    def _seal(self) -> None:
        """Build the root frame from the registered slots."""
        key = frozenset(
            (index, 0) for index in range(len(self._slots))
        )
        entry = self._intern_state(key)
        counts = (1,) * len(entry.positions)
        self._frames = [(entry, counts, self._root_tokens)]

    # -- transition construction ---------------------------------------

    def _build_transition(self, entry: _StateEntry, tag: str) -> _Transition:
        """Solve the effect of ``tag`` on ``entry``, once.

        Reproduces the token engine's ``open()`` loop at the level of
        position sets: a position *stays* when its step rides the
        descendant axis, *advances* when its step accepts the tag
        (wildcard or exact), and *fires* instead of advancing when it
        sits on the final step.  The advance into a given position is
        deduped to one token per sink -- exactly the engine's ``seen``
        set under empty guards.
        """
        slots = self._slots
        positions = entry.positions
        self.stats.tokens_touched += len(positions)
        _TOTALS.tokens_touched += len(positions)
        # target (slot, step) -> [stay source position or -1, advance 0/1]
        targets: dict[tuple[int, int], list[int]] = {}
        advance: list[tuple[int, int]] = []
        matchers: list[tuple[int, tuple[MatchSink, ...]]] = []
        for i, (s, j) in enumerate(positions):
            slot = slots[s]
            name, descendant = slot.steps[j]
            weight = len(slot.sinks)
            if name is None or name == tag:
                advance.append((i, weight))
                if j == len(slot.steps) - 1:
                    matchers.append((i, tuple(slot.sinks)))
                else:
                    cell = targets.get((s, j + 1))
                    if cell is None:
                        targets[(s, j + 1)] = [-1, 1]
                    else:
                        cell[1] = 1
            if descendant:
                cell = targets.get((s, j))
                if cell is None:
                    targets[(s, j)] = [i, 0]
                else:
                    cell[0] = i
        next_entry = self._intern_state(frozenset(targets))
        moves = tuple(
            (targets[position][0], targets[position][1])
            for position in next_entry.positions
        )
        transition = _Transition(
            next_entry, moves, tuple(advance), tuple(matchers)
        )
        entry.transitions[tag] = transition
        return transition

    def _build_memo(
        self, transition: _Transition, counts: tuple[int, ...]
    ) -> tuple[tuple[int, ...], int, int, tuple[MatchSink, ...]]:
        """Solve the count arithmetic of one (transition, counts) pair."""
        self.stats.tokens_touched += len(counts)
        _TOTALS.tokens_touched += len(counts)
        new_counts = tuple(
            (counts[source] + add) if source >= 0 else 1
            for source, add in transition.moves
        )
        new_total = sum(
            weight * count
            for weight, count in zip(transition.next_entry.weights, new_counts)
        )
        advances = sum(
            weight * counts[i] for i, weight in transition.advance
        )
        fires: list[MatchSink] = []
        for i, sinks in transition.matchers:
            count = counts[i]
            if count == 1:
                fires.extend(sinks)
            else:
                for sink in sinks:
                    fires.extend([sink] * count)
        memo = (new_counts, new_total, advances, tuple(fires))
        transition.memo[counts] = memo
        return memo

    # -- event processing ------------------------------------------------

    def open(self, tag: str) -> None:
        """Advance the product machine on an opening tag: one dict hit
        per event in the steady state."""
        frames = self._frames
        if frames is None:
            self._seal()
            frames = self._frames
        entry, counts, total = frames[-1]
        stats = self.stats
        stats.events += 1
        stats.events_pumped += 1
        _TOTALS.events_pumped += 1
        stats.token_checks += total
        transition = entry.transitions.get(tag)
        if transition is None:
            transition = self._build_transition(entry, tag)
        memo = transition.memo.get(counts)
        if memo is None:
            memo = self._build_memo(transition, counts)
        new_counts, new_total, advances, fires = memo
        stats.token_advances += advances
        for sink in fires:
            sink.on_match(EMPTY_CONDITIONS)
        frames.append((transition.next_entry, new_counts, new_total))
        # One combined allocation: the token engine charges the frame
        # then its tokens back to back with no release in between, so
        # the running total (and therefore the high-water mark) is
        # identical.
        if self._memory is not None:
            self._memory.allocate(
                "engine", FRAME_BYTES + TOKEN_BYTES * new_total
            )

    def value(self, text: str) -> None:
        """Text events carry no watchers on pure paths: count and move on."""
        stats = self.stats
        stats.events += 1
        stats.events_pumped += 1
        _TOTALS.events_pumped += 1

    def close(self) -> None:
        """Backtrack: pop the frame and release its modeled RAM."""
        stats = self.stats
        stats.events += 1
        stats.events_pumped += 1
        _TOTALS.events_pumped += 1
        frames = self._frames
        if frames is None or len(frames) <= 1:
            raise RuntimeError("close event without a matching open")
        __, __, total = frames.pop()
        self._release(FRAME_BYTES + TOKEN_BYTES * total)

    # -- skip-index queries ----------------------------------------------

    def can_complete_inside(self, tags_inside: frozenset[str]) -> bool:
        """Reachability test of Section 2.3, memoized per interned state.

        Pure paths carry no conditions, so the token engine's "skip
        suspended rules" filter never removes anything and the answer
        depends only on (state set, tag set) -- cacheable on the entry.
        """
        if self._frames is None:
            self._seal()
        entry = self._frames[-1][0]
        memo = entry.reach_memo
        result = memo.get(tags_inside)
        if result is None:
            result = any(
                needed <= tags_inside for needed in entry.suffixes
            )
            memo[tags_inside] = result
        return result

    def has_watchers_on_top(self) -> bool:
        """Pure paths never register value watchers."""
        return False

    def active_token_count(self) -> int:
        """Number of live tokens (used by RAM benchmarks)."""
        if self._frames is None:
            return self._root_tokens
        return sum(total for __, __, total in self._frames)
