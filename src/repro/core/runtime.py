"""The token-stack engine driving all rule automata.

From Section 2.3:

    "Basically, when an open or a value event is received, all the
    automata are checked and go to their next state.  Upon receiving a
    close event, all the automata backtrack.  To manage these automata
    efficiently, we use a stack that keeps track of active states,
    materializing all the possible paths that can be followed on the
    non-deterministic automata."

A :class:`Token` is one active state of one automaton: the compiled path
it runs, the index of the next step to match, and the conjunction of
predicate :class:`~repro.core.conditions.Condition` objects accumulated
along its match so far.  One :class:`_Frame` per open element holds the
tokens to be tested against that element's children; popping the frame
on ``close`` *is* the backtracking.

Predicate paths run on the same machinery: when a step with predicates
matches, a condition is instantiated per predicate (anchored at the
matched node) and a fresh predicate token is seeded in the new frame;
its completions support the condition.  Value tests (``[x = "v"]`` and
``[. = "v"]``) register *watchers* that accumulate the direct text of
the matched node and fire at its ``close``.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.core.conditions import (
    EMPTY_CONDITIONS,
    Condition,
    Tristate,
    live_conditions,
)
from repro.core.nfa import CompiledPath, CompiledStep
from repro.xpathlib.ast import Comparison

#: Modeled sizes (bytes) of runtime structures inside the card's secure
#: RAM.  Chosen to reflect a compact C implementation on the target
#: hardware; the resource model charges these, not Python object sizes.
TOKEN_BYTES = 8
CONDITION_BYTES = 6
WATCHER_BYTES = 10
FRAME_BYTES = 6


class MatchSink(Protocol):
    """Receives completed matches of a root automaton."""

    def on_match(self, conditions: frozenset[Condition]) -> None:
        """A match completed, guarded by the given pending conditions."""


class _ConditionSink:
    """Routes predicate-path completions into a condition's supports."""

    __slots__ = ("condition",)

    def __init__(self, condition: Condition) -> None:
        self.condition = condition

    def on_match(self, conditions: frozenset[Condition]) -> None:
        self.condition.add_support(conditions)


class Token:
    """One active automaton state (see module docstring)."""

    __slots__ = ("path", "index", "conditions", "sink")

    def __init__(
        self,
        path: CompiledPath,
        index: int,
        conditions: frozenset[Condition],
        sink: MatchSink,
    ) -> None:
        self.path = path
        self.index = index
        self.conditions = conditions
        self.sink = sink

    @property
    def next_step(self) -> CompiledStep:
        return self.path.steps[self.index]


class _Watcher:
    """Collects the direct text of one node, fires a test at its close."""

    __slots__ = ("comparison", "deliver", "conditions", "parts")

    def __init__(
        self,
        comparison: Comparison,
        deliver: Callable[[frozenset[Condition]], None],
        conditions: frozenset[Condition],
    ) -> None:
        self.comparison = comparison
        self.deliver = deliver
        self.conditions = conditions
        self.parts: list[str] = []

    def fire(self) -> None:
        if self.comparison.test("".join(self.parts)):
            self.deliver(self.conditions)


class _Frame:
    """Per-depth record: active tokens, anchored conditions, watchers."""

    __slots__ = ("tokens", "conditions", "watchers")

    def __init__(self) -> None:
        self.tokens: list[Token] = []
        self.conditions: list[Condition] = []
        self.watchers: list[_Watcher] = []


class EngineStats:
    """Counters the resource model turns into card CPU cycles.

    ``events`` through ``watcher_bytes`` feed the *modeled* clock and
    are byte-identical whichever engine runs.  The last three observe
    the *wall-clock* dispatch cost of the table-driven product machine
    (:mod:`repro.core.product`): ``events_pumped`` counts events that
    went through it (zero means the legacy per-token fallback ran),
    ``tokens_touched`` counts the Python-level position work actually
    performed (transition/count builds only -- memoized hits touch
    nothing), and ``product_states_interned`` counts distinct interned
    state sets.  A rising ``tokens_touched / events_pumped`` ratio is a
    dispatch-cost regression.
    """

    __slots__ = (
        "events",
        "token_checks",
        "token_advances",
        "conditions_created",
        "watcher_bytes",
        "events_pumped",
        "tokens_touched",
        "product_states_interned",
    )

    def __init__(self) -> None:
        self.events = 0
        self.token_checks = 0
        self.token_advances = 0
        self.conditions_created = 0
        self.watcher_bytes = 0
        self.events_pumped = 0
        self.tokens_touched = 0
        self.product_states_interned = 0


class TokenEngine:
    """The shared stack machine running every automaton at once.

    ``memory`` is an optional secure-RAM meter (see
    :mod:`repro.smartcard.memory`); when provided, every token, frame,
    condition and watcher is charged against the card's quota.
    """

    def __init__(self, memory=None, stats: EngineStats | None = None) -> None:
        self._memory = memory
        self.stats = stats or EngineStats()
        base = _Frame()
        self._frames: list[_Frame] = [base]
        self._charge(FRAME_BYTES)

    # -- memory hooks ---------------------------------------------------

    def _charge(self, nbytes: int) -> None:
        if self._memory is not None:
            self._memory.allocate("engine", nbytes)

    def _release(self, nbytes: int) -> None:
        if self._memory is not None:
            self._memory.release("engine", nbytes)

    # -- setup ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current element depth (0 before the root opens)."""
        return len(self._frames) - 1

    def add_automaton(self, path: CompiledPath, sink: MatchSink) -> None:
        """Seed a root token for an absolute path before parsing starts."""
        if self.depth != 0:
            raise RuntimeError("automata must be added before the root opens")
        self._frames[0].tokens.append(Token(path, 0, EMPTY_CONDITIONS, sink))
        self._charge(TOKEN_BYTES)

    def add_policy(self, policy, sinks: "list[MatchSink]") -> None:
        """Seed every automaton of a prebuilt compiled policy.

        ``policy`` is a :class:`~repro.core.compiled.CompiledPolicy`
        (duck-typed: anything with an ``automata`` sequence works);
        ``sinks`` supplies one match sink per automaton.  Nothing is
        compiled here -- the same policy object may seed any number of
        engines, including several lanes of one shared engine.
        """
        if len(policy.automata) != len(sinks):
            raise ValueError("one sink per automaton required")
        for path, sink in zip(policy.automata, sinks):
            self.add_automaton(path, sink)

    # -- event processing ------------------------------------------------

    def open(self, tag: str) -> None:
        """Advance all automata on an opening tag.

        This is the per-event inner loop: the step's precomputed
        ``match_name``/``descendant`` transition fields (see
        :class:`~repro.core.nfa.CompiledStep`) replace the method call
        and enum test per token, and hot attributes are hoisted into
        locals.  Counter totals are byte-identical to the seed's
        per-token increments.
        """
        stats = self.stats
        stats.events += 1
        frames = self._frames
        parent_tokens = frames[-1].tokens
        frame = _Frame()
        self._charge(FRAME_BYTES)
        new_depth = len(frames)
        # Dedupe: several parent tokens may advance into an identical
        # state (same automaton, same index, same guards, reporting to
        # the same sink); one suffices.  The sink is part of the state:
        # a compiled path shared by several policies (registry hit, or
        # two lanes of a multi-subject pass) must keep one token per
        # sink or all but the first subject would go silent.
        seen: set[tuple[int, int, int, frozenset[Condition]]] = set()
        # Dedupe: one condition per (predicate path, context node).
        conditions_here: dict[int, Condition] = {}
        stay = frame.tokens.append
        for token in parent_tokens:
            step = token.path.steps[token.index]
            name = step.match_name
            if name is None or name == tag:
                self._advance(token, frame, new_depth, seen, conditions_here)
            if step.descendant:
                # Descendant-axis states stay alive at deeper levels --
                # the self-loop of Figure 2.
                stay(token)
        stats.token_checks += len(parent_tokens)
        frames.append(frame)
        self._charge(TOKEN_BYTES * len(frame.tokens))

    def _advance(
        self,
        token: Token,
        frame: _Frame,
        new_depth: int,
        seen: set[tuple[int, int, int, frozenset[Condition]]],
        conditions_here: dict[int, Condition],
    ) -> None:
        self.stats.token_advances += 1
        step = token.path.steps[token.index]
        guards = set(live_conditions(token.conditions))
        for predicate_path in step.predicates:
            condition = conditions_here.get(id(predicate_path))
            if condition is None:
                condition = Condition(new_depth)
                self.stats.conditions_created += 1
                self._charge(CONDITION_BYTES)
                conditions_here[id(predicate_path)] = condition
                frame.conditions.append(condition)
                seed = Token(
                    predicate_path, 0, EMPTY_CONDITIONS, _ConditionSink(condition)
                )
                frame.tokens.append(seed)
            guards.add(condition)
        for comparison in step.dot_comparisons:
            condition = Condition(new_depth)
            self.stats.conditions_created += 1
            self._charge(CONDITION_BYTES + WATCHER_BYTES)
            frame.conditions.append(condition)
            frame.watchers.append(
                _Watcher(
                    comparison,
                    condition.add_support,
                    EMPTY_CONDITIONS,
                )
            )
            guards.add(condition)
        guard_set = frozenset(guards)
        if token.index == token.path.final_index:
            comparison = token.path.comparison
            if comparison is None:
                token.sink.on_match(guard_set)
            else:
                self._charge(WATCHER_BYTES)
                frame.watchers.append(
                    _Watcher(comparison, token.sink.on_match, guard_set)
                )
            return
        key = (id(token.path), token.index + 1, id(token.sink), guard_set)
        if key in seen:
            return
        seen.add(key)
        frame.tokens.append(Token(token.path, token.index + 1, guard_set, token.sink))

    def value(self, text: str) -> None:
        """Feed a text event to the watchers of the innermost node."""
        self.stats.events += 1
        watchers = self._frames[-1].watchers
        if watchers:
            self.stats.watcher_bytes += len(text) * len(watchers)
            self._charge(len(text) * len(watchers))
            for watcher in watchers:
                watcher.parts.append(text)

    def close(self) -> None:
        """Backtrack: fire watchers, fail open conditions, pop the frame."""
        self.stats.events += 1
        if len(self._frames) <= 1:
            raise RuntimeError("close event without a matching open")
        frame = self._frames.pop()
        for watcher in frame.watchers:
            watcher.fire()
        for condition in frame.conditions:
            condition.finalize()
        freed = (
            FRAME_BYTES
            + TOKEN_BYTES * len(frame.tokens)
            + CONDITION_BYTES * len(frame.conditions)
            + WATCHER_BYTES * len(frame.watchers)
            + sum(
                sum(len(part) for part in watcher.parts)
                for watcher in frame.watchers
            )
        )
        self._release(freed)

    # -- skip-index queries ----------------------------------------------

    def can_complete_inside(self, tags_inside: frozenset[str]) -> bool:
        """Whether any active automaton could reach a final state within
        a subtree containing exactly ``tags_inside`` element tags.

        This is the reachability test of Section 2.3: "to check whether
        an access rule automaton is likely to reach its final state".
        The test is conservative -- wildcard steps contribute no label
        and therefore never rule a subtree out.
        """
        for token in self._frames[-1].tokens:
            if any(
                condition.state is Tristate.FALSE
                for condition in token.conditions
            ):
                # The paper's "suspended rules" optimization: a token
                # whose guards already failed can never contribute.
                continue
            needed = token.path.suffix_labels[token.index]
            if needed <= tags_inside:
                return True
        return False

    def has_watchers_on_top(self) -> bool:
        """Whether the innermost node's text is being collected.

        A subtree whose root carries a value watcher must not be
        skipped: the skip would discard the text under test.
        """
        return bool(self._frames[-1].watchers)

    def active_token_count(self) -> int:
        """Number of live tokens (used by RAM benchmarks)."""
        return sum(len(frame.tokens) for frame in self._frames)
