"""Predicate conditions and the *pending rule* machinery.

From Section 2.3 of the paper:

    "In some cases, the final state of a navigational path may be
    reached while those of its predicate paths are not.  In these
    cases, the rule is said to be *pending*, meaning that the nodes
    upon which it applies are to be delivered only if, later on in the
    parsing, all the predicate paths are found to reach their final
    states."

A :class:`Condition` stands for one predicate instance ``[p]`` anchored
at a specific context node.  It is three-valued:

* ``UNKNOWN`` while the context node is still open,
* ``TRUE`` as soon as some instance of the predicate path completes
  (including its own nested conditions),
* ``FALSE`` at the ``close`` of the context node if it never completed
  -- predicate paths are relative, so nothing past that point can
  satisfy them.

Conjunction sets of conditions guard pending matches; listeners fire on
every resolution so decisions and buffered output refresh eagerly.
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Iterable

_condition_counter = itertools.count(1)


class Tristate(enum.Enum):
    UNKNOWN = "unknown"
    TRUE = "true"
    FALSE = "false"


class Condition:
    """One predicate instance anchored at a context node.

    ``depth`` is the document depth of the context node; the runtime
    finalizes (fails) all conditions of depth ``d`` when the element at
    depth ``d`` closes.
    """

    __slots__ = ("condition_id", "depth", "state", "_listeners", "_supports")

    def __init__(self, depth: int) -> None:
        self.condition_id = next(_condition_counter)
        self.depth = depth
        self.state = Tristate.UNKNOWN
        self._listeners: list[Callable[[Condition], None]] = []
        # Each support is a set of nested conditions; the condition
        # becomes TRUE when any support has all members TRUE.
        self._supports: list[frozenset[Condition]] = []

    # -- wiring --------------------------------------------------------

    def add_listener(self, listener: Callable[["Condition"], None]) -> None:
        """Register a callback invoked once on resolution."""
        if self.state is not Tristate.UNKNOWN:
            listener(self)
        else:
            self._listeners.append(listener)

    def _notify(self) -> None:
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            listener(self)

    # -- resolution ----------------------------------------------------

    def add_support(self, nested: frozenset["Condition"]) -> None:
        """Record a completed predicate-path match guarded by ``nested``.

        With no nested conditions the condition resolves TRUE at once.
        """
        if self.state is not Tristate.UNKNOWN:
            return
        live = frozenset(c for c in nested if c.state is not Tristate.TRUE)
        if any(c.state is Tristate.FALSE for c in live):
            return
        if not live:
            self.state = Tristate.TRUE
            self._notify()
            return
        self._supports.append(live)
        for nested_condition in live:
            nested_condition.add_listener(self._on_nested_resolution)

    def _on_nested_resolution(self, _: "Condition") -> None:
        if self.state is not Tristate.UNKNOWN:
            return
        for support in self._supports:
            if all(c.state is Tristate.TRUE for c in support):
                self.state = Tristate.TRUE
                self._supports.clear()
                self._notify()
                return
        # Prune supports that can no longer confirm.
        self._supports = [
            support
            for support in self._supports
            if not any(c.state is Tristate.FALSE for c in support)
        ]

    def finalize(self) -> None:
        """Close the condition's window: UNKNOWN becomes FALSE.

        Called at the ``close`` event of the context node.  Nested
        conditions live strictly inside the context subtree, so they
        are already resolved here and no support can still confirm.
        """
        if self.state is Tristate.UNKNOWN:
            self.state = Tristate.FALSE
            self._supports.clear()
            self._notify()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Condition(#{self.condition_id}@{self.depth}:{self.state.value})"


EMPTY_CONDITIONS: frozenset[Condition] = frozenset()


def conjunction_state(conditions: Iterable[Condition]) -> Tristate:
    """State of a conjunction: FALSE dominates, then UNKNOWN, then TRUE."""
    saw_unknown = False
    for condition in conditions:
        if condition.state is Tristate.FALSE:
            return Tristate.FALSE
        if condition.state is Tristate.UNKNOWN:
            saw_unknown = True
    return Tristate.UNKNOWN if saw_unknown else Tristate.TRUE


def live_conditions(conditions: Iterable[Condition]) -> frozenset[Condition]:
    """Drop already-TRUE members of a conjunction (they cannot regress)."""
    return frozenset(c for c in conditions if c.state is not Tristate.TRUE)
