"""Access-control model: ``<sign, subject, object>`` rules.

From Section 2.2 of the paper:

    "access control rules, or access rules for short, take the form of a
    3-uple <sign, subject, object>.  Sign denotes either a permission
    (positive rule) or a prohibition (negative rule) for the read
    operation.  Subject is self-explanatory.  Object corresponds to
    elements or subtrees in the XML document, identified by an XPath
    expression [in] XP{[],*,//}."

Rules propagate to descendants; conflicts are resolved by the two
policies implemented in :mod:`repro.core.decisions`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.xpathlib.ast import Path
from repro.xpathlib.parser import parse_path

_rule_counter = itertools.count(1)


class Sign(enum.Enum):
    """Permission or prohibition for the read operation."""

    PERMIT = "+"
    DENY = "-"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Subject:
    """An access-control subject: a user together with its groups.

    The demo paper keeps subjects abstract; we follow the common
    user/group scheme of its underlying models ([1], [3]): a rule whose
    subject names either the user itself or one of its groups applies.
    """

    name: str
    groups: frozenset[str] = field(default=frozenset())

    def covers(self, rule_subject: str) -> bool:
        """Whether a rule written for ``rule_subject`` applies to us."""
        return rule_subject == self.name or rule_subject in self.groups


@dataclass(frozen=True, slots=True)
class AccessRule:
    """A single access rule ``<sign, subject, object>``."""

    sign: Sign
    subject: str
    object: Path
    rule_id: str

    def __post_init__(self) -> None:
        if not self.object.absolute:
            raise ValueError("rule objects must be absolute paths")

    @classmethod
    def parse(
        cls,
        sign: Sign | str,
        subject: str,
        xpath: str,
        rule_id: str | None = None,
    ) -> "AccessRule":
        """Build a rule from textual components.

        ``sign`` accepts a :class:`Sign` or the characters ``'+'``/``'-'``.
        """
        if isinstance(sign, str):
            sign = Sign(sign)
        if rule_id is None:
            rule_id = f"R{next(_rule_counter)}"
        return cls(sign, subject, parse_path(xpath), rule_id)

    def __str__(self) -> str:
        return f"<{self.sign}, {self.subject}, {self.object}>"


class RuleSet:
    """An ordered collection of access rules (a policy).

    The set is what the DSP stores encrypted and what the card applies;
    :meth:`for_subject` extracts the rules relevant to one subject,
    which is what actually gets compiled into automata.
    """

    def __init__(self, rules: Iterable[AccessRule] = ()) -> None:
        self._rules: list[AccessRule] = list(rules)
        ids = [rule.rule_id for rule in self._rules]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate rule identifiers in rule set")

    def __iter__(self) -> Iterator[AccessRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def add(self, rule: AccessRule) -> None:
        """Append a rule (policies are dynamic -- the paper's point)."""
        if any(existing.rule_id == rule.rule_id for existing in self._rules):
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._rules.append(rule)

    def remove(self, rule_id: str) -> AccessRule:
        """Remove and return the rule with the given id."""
        for index, rule in enumerate(self._rules):
            if rule.rule_id == rule_id:
                return self._rules.pop(index)
        raise KeyError(rule_id)

    def for_subject(self, subject: Subject | str) -> "RuleSet":
        """The sub-policy applying to ``subject``."""
        if isinstance(subject, str):
            subject = Subject(subject)
        return RuleSet(r for r in self._rules if subject.covers(r.subject))

    def label_set(self) -> frozenset[str]:
        """Union of all tag names the rules mention (skip-index filter)."""
        labels: set[str] = set()
        for rule in self._rules:
            labels.update(rule.object.label_set())
        return frozenset(labels)

    def signs(self) -> tuple[Sign, ...]:
        return tuple(rule.sign for rule in self._rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)
