"""Access-control model: ``<sign, subject, object>`` rules.

From Section 2.2 of the paper:

    "access control rules, or access rules for short, take the form of a
    3-uple <sign, subject, object>.  Sign denotes either a permission
    (positive rule) or a prohibition (negative rule) for the read
    operation.  Subject is self-explanatory.  Object corresponds to
    elements or subtrees in the XML document, identified by an XPath
    expression [in] XP{[],*,//}."

Rules propagate to descendants; conflicts are resolved by the two
policies implemented in :mod:`repro.core.decisions`.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.xpathlib.ast import Path
from repro.xpathlib.parser import parse_path

_rule_counter = itertools.count(1)


class Sign(enum.Enum):
    """Permission or prohibition for the read operation."""

    PERMIT = "+"
    DENY = "-"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Subject:
    """An access-control subject: a user together with its groups.

    The demo paper keeps subjects abstract; we follow the common
    user/group scheme of its underlying models ([1], [3]): a rule whose
    subject names either the user itself or one of its groups applies.
    """

    name: str
    groups: frozenset[str] = field(default=frozenset())

    def covers(self, rule_subject: str) -> bool:
        """Whether a rule written for ``rule_subject`` applies to us."""
        return rule_subject == self.name or rule_subject in self.groups


@dataclass(frozen=True, slots=True)
class AccessRule:
    """A single access rule ``<sign, subject, object>``."""

    sign: Sign
    subject: str
    object: Path
    rule_id: str

    def __post_init__(self) -> None:
        if not self.object.absolute:
            raise ValueError("rule objects must be absolute paths")

    @classmethod
    def parse(
        cls,
        sign: Sign | str,
        subject: str,
        xpath: str,
        rule_id: str | None = None,
    ) -> "AccessRule":
        """Build a rule from textual components.

        ``sign`` accepts a :class:`Sign` or the characters ``'+'``/``'-'``.
        """
        if isinstance(sign, str):
            sign = Sign(sign)
        if rule_id is None:
            rule_id = f"R{next(_rule_counter)}"
        return cls(sign, subject, parse_path(xpath), rule_id)

    def __str__(self) -> str:
        return f"<{self.sign}, {self.subject}, {self.object}>"


class RuleSet:
    """An ordered collection of access rules (a policy).

    The set is what the DSP stores encrypted and what the card applies;
    :meth:`for_subject` extracts the rules relevant to one subject,
    which is what actually gets compiled into automata.
    """

    #: How many superseded fingerprints a rule set remembers (see
    #: :meth:`fingerprint_history`).
    _HISTORY_LIMIT = 16

    def __init__(self, rules: Iterable[AccessRule] = ()) -> None:
        self._rules: list[AccessRule] = list(rules)
        self._past_fingerprints: list[str] = []
        self._fingerprint: str | None = None
        ids = [rule.rule_id for rule in self._rules]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate rule identifiers in rule set")

    def __iter__(self) -> Iterator[AccessRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def _record_fingerprint(self) -> None:
        """Remember the pre-mutation fingerprint, drop the memo."""
        fingerprint = self.fingerprint()
        if fingerprint not in self._past_fingerprints:
            self._past_fingerprints.append(fingerprint)
            del self._past_fingerprints[: -self._HISTORY_LIMIT]
        self._fingerprint = None

    def add(self, rule: AccessRule) -> None:
        """Append a rule (policies are dynamic -- the paper's point)."""
        if any(existing.rule_id == rule.rule_id for existing in self._rules):
            raise ValueError(f"duplicate rule id {rule.rule_id!r}")
        self._record_fingerprint()
        self._rules.append(rule)

    def remove(self, rule_id: str) -> AccessRule:
        """Remove and return the rule with the given id."""
        for index, rule in enumerate(self._rules):
            if rule.rule_id == rule_id:
                self._record_fingerprint()
                return self._rules.pop(index)
        raise KeyError(rule_id)

    def for_subject(self, subject: Subject | str) -> "RuleSet":
        """The sub-policy applying to ``subject``."""
        if isinstance(subject, str):
            subject = Subject(subject)
        return RuleSet(r for r in self._rules if subject.covers(r.subject))

    def fingerprint(self) -> str:
        """Content hash of the policy (order-sensitive, id-insensitive).

        Two rule sets with the same ``<sign, subject, object>`` triples
        in the same order fingerprint identically, whatever their rule
        ids -- evaluation never looks at ids.  The
        :class:`~repro.core.compiled.PolicyRegistry` keys its cache on
        this, so any policy churn (add/remove/change) produces a fresh
        fingerprint and misses the cache.

        Fields are length-prefixed before hashing: separator characters
        inside a subject or object string cannot forge a collision with
        a differently-split policy.  The result is memoized; ``add`` /
        ``remove`` (the only mutators) drop the memo.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            for rule in self._rules:
                for part in (str(rule.sign), rule.subject, str(rule.object)):
                    data = part.encode("utf-8")
                    digest.update(len(data).to_bytes(4, "big"))
                    digest.update(data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def fingerprint_history(self) -> tuple[str, ...]:
        """Fingerprints this set carried before in-place churn.

        ``add``/``remove`` record the pre-mutation fingerprint (up to
        the last :data:`_HISTORY_LIMIT` generations), so a
        :class:`~repro.core.compiled.PolicyRegistry` can evict the
        superseded generations of a rule set that was mutated in place
        -- by the time ``invalidate(rules)`` runs, the current
        fingerprint alone would no longer match them.
        """
        return tuple(self._past_fingerprints)

    def label_set(self) -> frozenset[str]:
        """Union of all tag names the rules mention (skip-index filter)."""
        labels: set[str] = set()
        for rule in self._rules:
            labels.update(rule.object.label_set())
        return frozenset(labels)

    def signs(self) -> tuple[Sign, ...]:
        return tuple(rule.sign for rule in self._rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)
