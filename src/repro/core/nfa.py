"""Compiled form of the access-rule automata (Figure 2 of the paper).

Each rule object (an XPath in ``XP{[],*,//}``) compiles into a
:class:`CompiledPath`: the *navigational path* is the sequence of
compiled steps (white states in Figure 2), and every predicate of a step
is itself a compiled (relative) path attached to that step (gray states
in Figure 2).  The construction is recursive, so nested branches such as
``//a[b[c]]/d`` are supported.

Beyond the structure itself, compilation precomputes per-state *suffix
label sets*: the set of tag names that must still appear for the
navigational path to complete from a given state.  The skip index
compares these sets against a subtree's tag bitmap to decide whether an
automaton can possibly progress inside the subtree -- "to check whether
an access rule automaton is likely to reach its final state"
(Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xpathlib.ast import Axis, Comparison, NodeTest, Path, Predicate

#: Running count of :func:`compile_path` invocations (predicate
#: sub-compilations included).  The compile/evaluate split is asserted
#: against this: a cached policy must add zero to it.
_compile_calls = 0


def compile_call_count() -> int:
    """Total ``compile_path`` calls since interpreter start."""
    return _compile_calls


@dataclass(frozen=True, slots=True)
class CompiledStep:
    """One navigational state transition.

    ``predicates`` holds the compiled predicate paths instantiated when
    this step matches; ``dot_comparisons`` holds ``[. op literal]``
    value tests on the matched node itself.

    ``match_name`` and ``descendant`` are the step's transition table,
    flattened at compile time: the token engine's ``open()`` decides
    advance/stay per token with two attribute loads instead of a method
    call and an enum identity test per event.  (A real tag->state dict
    is impossible here -- wildcard steps accept an unbounded alphabet --
    so the "dict" degenerates to its two precomputed entries.)
    """

    axis: Axis
    test: NodeTest
    predicates: tuple["CompiledPath", ...] = field(default=())
    dot_comparisons: tuple[Comparison, ...] = field(default=())
    #: Tag accepted by this step, ``None`` for the wildcard (derived).
    match_name: str | None = field(init=False, repr=False, compare=False)
    #: Whether the step rides the descendant axis (derived).
    descendant: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "match_name", self.test.name)
        object.__setattr__(self, "descendant", self.axis is Axis.DESCENDANT)


@dataclass(frozen=True, slots=True)
class CompiledPath:
    """A compiled navigational path with predicate sub-automata.

    ``comparison`` is a value test applied to the text of nodes matched
    by the final step (used by predicate paths such as
    ``[price < "10"]``); rule and query spines never carry one.

    ``suffix_labels[i]`` is the set of non-wildcard tag names mentioned
    by steps ``i..`` of the spine -- the labels that must all occur in a
    subtree for the automaton to complete inside it.
    """

    steps: tuple[CompiledStep, ...]
    comparison: Comparison | None
    suffix_labels: tuple[frozenset[str], ...]
    #: Whether the path is purely navigational -- no predicates, no
    #: value tests anywhere.  Pure paths never instantiate conditions
    #: or watchers, which makes them eligible for the table-driven
    #: product machine (:mod:`repro.core.product`); anything else runs
    #: on the legacy token engine.  Derived at compile time.
    pure: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "pure",
            self.comparison is None
            and all(
                not step.predicates and not step.dot_comparisons
                for step in self.steps
            ),
        )

    @property
    def final_index(self) -> int:
        return len(self.steps) - 1

    def state_count(self) -> int:
        """Number of navigational states, including sub-automata."""
        count = len(self.steps) + 1
        for step in self.steps:
            for predicate in step.predicates:
                count += predicate.state_count()
        return count


def _compile_predicate(predicate: Predicate) -> "CompiledPath":
    assert predicate.path is not None
    return compile_path(predicate.path, comparison=predicate.comparison)


def compile_path(path: Path, comparison: Comparison | None = None) -> CompiledPath:
    """Compile a parsed path into its automaton form.

    ``comparison`` attaches a trailing value test (predicate paths
    only).  The same routine compiles absolute rule/query objects and
    relative predicate paths; the distinction lives in how the runtime
    seeds the initial token.
    """
    global _compile_calls
    _compile_calls += 1
    steps: list[CompiledStep] = []
    for step in path.steps:
        predicate_paths: list[CompiledPath] = []
        dot_comparisons: list[Comparison] = []
        for predicate in step.predicates:
            if predicate.path is None:
                assert predicate.comparison is not None
                dot_comparisons.append(predicate.comparison)
            else:
                predicate_paths.append(_compile_predicate(predicate))
        steps.append(
            CompiledStep(
                axis=step.axis,
                test=step.test,
                predicates=tuple(predicate_paths),
                dot_comparisons=tuple(dot_comparisons),
            )
        )
    suffix: list[frozenset[str]] = [frozenset()] * (len(steps) + 1)
    running: frozenset[str] = frozenset()
    for index in range(len(steps) - 1, -1, -1):
        name = steps[index].test.name
        if name is not None:
            running = running | {name}
        suffix[index] = running
    return CompiledPath(
        steps=tuple(steps),
        comparison=comparison,
        suffix_labels=tuple(suffix),
    )
