"""Static analysis of rule sets (policy authoring support).

The paper notes that "some rules may be inhibited by others according
to the conflict resolution policies, thereby optimizations such as
suspending evaluations of rules can be devised" (Section 2.3).  This
module performs the *static* part of that reasoning with the sound
containment test of :mod:`repro.xpathlib.containment`:

* a PERMIT rule is **shadowed** when a DENY rule provably selects every
  node it selects -- Denial-Takes-Precedence then inhibits it on every
  document, so it can be dropped before compilation;
* two same-signed rules where one contains the other make the contained
  one **redundant** only when their decisions agree everywhere; because
  the contained rule still changes *which* node carries the direct
  match (Most-Specific-Object), we only drop exact duplicates by
  equivalence, which is always safe;
* :func:`minimize` applies the safe reductions and reports what it
  removed, so publishers can keep policies small -- fewer automata means
  less secure RAM on the card (experiment E5's rule axis).

All reductions are conservative: containment is only *proven*, never
guessed, and anything unproven is kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rules import AccessRule, RuleSet, Sign
from repro.xpathlib.ast import Axis, NodeTest, Path, Step
from repro.xpathlib.containment import contains, equivalent


def _region(path: Path) -> Path:
    """The path selecting every *strict descendant* of ``path``'s nodes.

    Together with ``path`` itself this covers the rule's propagation
    region (cascading rules apply to objects and all their
    descendants).
    """
    return Path(
        path.steps + (Step(Axis.DESCENDANT, NodeTest(None)),),
        absolute=path.absolute,
    )


def region_contains(p: Path, q: Path) -> bool:
    """Sound test: every node selected by ``q`` lies in ``p``'s
    propagation region (on ``p``'s nodes or strictly below them)."""
    return contains(p, q) or contains(_region(p), q)


@dataclass(frozen=True, slots=True)
class PolicyReport:
    """Outcome of analysing one subject's rule list."""

    kept: tuple[AccessRule, ...]
    shadowed: tuple[AccessRule, ...] = field(default=())
    duplicates: tuple[AccessRule, ...] = field(default=())

    @property
    def removed_count(self) -> int:
        return len(self.shadowed) + len(self.duplicates)


def _is_shadowed(rule: AccessRule, denies: list[AccessRule]) -> bool:
    """PERMIT rule provably dominated by a DENY on the same node set.

    If ``deny.object ⊇ rule.object`` then every node the permit selects
    also carries the deny as a *direct* match, and Denial-Takes-
    Precedence inhibits the permit on every possible document.
    """
    return any(contains(deny.object, rule.object) for deny in denies)


def _is_duplicate(rule: AccessRule, kept: list[AccessRule]) -> bool:
    """Exact semantic duplicate (same sign, equivalent object)."""
    return any(
        rule.sign is other.sign and equivalent(rule.object, other.object)
        for other in kept
    )


def analyse(rules: RuleSet) -> PolicyReport:
    """Classify a subject's rules into kept / shadowed / duplicates.

    The input must already be subject-specific (as compiled on the
    card); rules for different subjects never interact.
    """
    denies = [rule for rule in rules if rule.sign is Sign.DENY]
    kept: list[AccessRule] = []
    shadowed: list[AccessRule] = []
    duplicates: list[AccessRule] = []
    for rule in rules:
        if rule.sign is Sign.PERMIT and _is_shadowed(rule, denies):
            shadowed.append(rule)
            continue
        if _is_duplicate(rule, kept):
            duplicates.append(rule)
            continue
        kept.append(rule)
    return PolicyReport(
        kept=tuple(kept),
        shadowed=tuple(shadowed),
        duplicates=tuple(duplicates),
    )


def minimize(rules: RuleSet) -> tuple[RuleSet, PolicyReport]:
    """Drop provably inert rules; the views are unchanged by design."""
    report = analyse(rules)
    return RuleSet(report.kept), report


def conflicts(rules: RuleSet) -> list[tuple[AccessRule, AccessRule]]:
    """Pairs (permit, deny) whose *propagation regions* provably
    overlap -- one rule's nodes lie inside the other's region.

    A deny inside a permit region (or vice versa) usually means the
    policy intentionally carves an exception; authors still want the
    list when auditing, because each such pair is a place where
    conflict resolution actually decides something.
    """
    permits = [rule for rule in rules if rule.sign is Sign.PERMIT]
    denies = [rule for rule in rules if rule.sign is Sign.DENY]
    pairs: list[tuple[AccessRule, AccessRule]] = []
    for permit in permits:
        for deny in denies:
            if region_contains(permit.object, deny.object) or region_contains(
                deny.object, permit.object
            ):
                pairs.append((permit, deny))
    return pairs
