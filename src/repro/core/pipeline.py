"""High-level composition: rule evaluation + query + delivery.

:class:`AccessController` is the pure, in-memory form of the engine the
card applet runs -- the applet adds crypto, the skip index and resource
accounting around this same object.  :func:`authorized_view` is the
one-call convenience API used by examples and tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.compiled import CompiledPolicy, PolicyRegistry, compile_policy
from repro.core.delivery import DeliveryEngine, ViewMode
from repro.core.evaluator import StreamingEvaluator
from repro.core.nfa import CompiledPath, compile_path
from repro.core.rules import RuleSet, Sign, Subject
from repro.core.runtime import EngineStats
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent
from repro.xpathlib.ast import Path
from repro.xpathlib.parser import parse_path


class AccessController:
    """Streaming access-control pipeline for one (document, subject) pair.

    Feed it the document's events; collect authorized output as it
    becomes available::

        controller = AccessController(rules, subject="alice")
        for event in events:
            output.extend(controller.feed(event))
        output.extend(controller.finish())

    ``rules`` may be a plain :class:`RuleSet` (compiled on the spot, or
    through ``registry`` when one is given) or a prebuilt
    :class:`~repro.core.compiled.CompiledPolicy`, in which case
    construction performs zero compilation -- the hot path for serving
    many documents or subscribers under one policy.  Likewise ``query``
    accepts a prebuilt :class:`~repro.core.nfa.CompiledPath`.

    A :class:`CompiledPolicy` carries its subject and default sign;
    passing a conflicting ``subject`` or ``default`` alongside one is
    an error (the policy would silently win otherwise).
    """

    def __init__(
        self,
        rules: RuleSet | CompiledPolicy,
        subject: Subject | str | None = None,
        query: Path | str | CompiledPath | None = None,
        mode: ViewMode = ViewMode.SKELETON,
        default: Sign | None = None,
        memory=None,
        stats: EngineStats | None = None,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.stats = stats or EngineStats()
        if isinstance(rules, CompiledPolicy):
            policy = rules  # subject and default are baked in
            if subject is not None:
                raise ValueError(
                    "subject is baked into a CompiledPolicy; "
                    "compile the policy for the right subject instead"
                )
            if default is not None and default is not policy.default:
                raise ValueError(
                    f"default {default} conflicts with the compiled "
                    f"policy's default {policy.default}"
                )
        elif registry is not None:
            policy = registry.get(rules, subject, default if default is not None else Sign.DENY)
        else:
            policy = compile_policy(rules, subject, default if default is not None else Sign.DENY)
        self.compiled_policy = policy
        self._policy = StreamingEvaluator.from_compiled(
            policy, memory=memory, stats=self.stats
        )
        self.compiled_query: CompiledPath | None = None
        if query is not None:
            if isinstance(query, CompiledPath):
                compiled_query = query
            elif registry is not None:
                compiled_query = registry.get_query(query)
            else:
                if isinstance(query, str):
                    query = parse_path(query)
                compiled_query = compile_path(query)
            self.compiled_query = compiled_query
        self._query = (
            StreamingEvaluator.for_query(
                self.compiled_query, memory=memory, stats=self.stats
            )
            if self.compiled_query is not None
            else None
        )
        self._delivery = DeliveryEngine(mode, memory=memory)
        self._depth = 0
        self._finished = False

    # -- streaming interface ------------------------------------------------

    def feed(self, event: Event) -> list[Event]:
        """Process one event; return output events released by it.

        Exact-type dispatch first (the event classes are final in
        practice), with the isinstance chain kept as a fallback for
        duck-typed subclasses.
        """
        if self._finished:
            raise RuntimeError("controller already finished")
        cls = type(event)
        if cls is OpenEvent or isinstance(event, OpenEvent):
            auth = self._policy.open(event.tag)
            query = self._query.open(event.tag) if self._query else None
            self._delivery.open(event, auth, query)
            self._depth += 1
        elif cls is ValueEvent or isinstance(event, ValueEvent):
            if self._depth == 0:
                raise ValueError("text event outside the root element")
            self._policy.value(event.text)
            if self._query:
                self._query.value(event.text)
            self._delivery.value(event)
        elif cls is CloseEvent or isinstance(event, CloseEvent):
            if self._depth == 0:
                raise ValueError("unbalanced close event")
            self._delivery.close(event)
            self._policy.close()
            if self._query:
                self._query.close()
            self._depth -= 1
        else:  # pragma: no cover - defensive
            raise TypeError(f"not an event: {event!r}")
        return self._delivery.drain()

    def finish(self) -> list[Event]:
        """Signal end of document; return the final output events."""
        if self._depth != 0:
            raise ValueError("document ended with unclosed elements")
        self._finished = True
        return self._delivery.finish()

    # -- skip-index interface (used by the card applet) -----------------------

    def subtree_is_irrelevant(self, tags_inside: frozenset[str]) -> bool:
        """Whether a subtree of the innermost node can be skipped
        *semantically*: no automaton (rule or query) can complete inside
        and no value predicate is collecting the node's text.

        The applet combines this with the delivery status (a subtree is
        only actually skipped when it is also not being delivered).
        """
        if self._policy.can_complete_inside(tags_inside):
            return False
        if self._policy.has_watchers_on_top():
            return False
        if self._query is not None:
            if self._query.can_complete_inside(tags_inside):
                return False
            if self._query.has_watchers_on_top():
                return False
        return True

    def current_status(self):
        """Combined delivery status of the innermost open element.

        Returns ``(kind, unknowns)`` where kind is one of the
        ``_Record`` constants (``"deliver"``, ``"drop"``, ``"pending"``).
        """
        auth = self._policy.current_decision()
        query = self._query.current_decision() if self._query else None
        return self._delivery._combined_status(auth, query)

    def current_decision_nodes(self):
        """The (auth, query) decision nodes of the innermost element."""
        auth = self._policy.current_decision()
        query = self._query.current_decision() if self._query else None
        return auth, query

    def status_of(self, auth, query):
        """Combined status for externally held decision nodes (refetch)."""
        return self._delivery._combined_status(auth, query)

    @property
    def max_pending_bytes(self) -> int:
        return self._delivery.max_pending_bytes

    def active_token_count(self) -> int:
        count = self._policy.active_token_count()
        if self._query is not None:
            count += self._query.active_token_count()
        return count


def authorized_view(
    events: Iterable[Event],
    rules: RuleSet | CompiledPolicy,
    subject: Subject | str | None = None,
    query: Path | str | None = None,
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign | None = None,
    registry: PolicyRegistry | None = None,
) -> list[Event]:
    """Compute the authorized view of a document in one call."""
    controller = AccessController(
        rules,
        subject=subject,
        query=query,
        mode=mode,
        default=default,
        registry=registry,
    )
    output: list[Event] = []
    for event in events:
        output.extend(controller.feed(event))
    output.extend(controller.finish())
    return output


def stream_authorized_view(
    events: Iterable[Event],
    rules: RuleSet | CompiledPolicy,
    subject: Subject | str | None = None,
    query: Path | str | None = None,
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign | None = None,
    registry: PolicyRegistry | None = None,
) -> Iterator[Event]:
    """Like :func:`authorized_view` but yields output incrementally."""
    controller = AccessController(
        rules,
        subject=subject,
        query=query,
        mode=mode,
        default=default,
        registry=registry,
    )
    for event in events:
        yield from controller.feed(event)
    yield from controller.finish()
