"""The streaming access-rights evaluator.

Binds together the token engine (:mod:`repro.core.runtime`) and the
decision chain (:mod:`repro.core.decisions`): on every ``open`` all
automata advance and the direct matches reported for the new node are
folded into a fresh :class:`DecisionNode`; ``close`` backtracks the
automata, finalizes the predicate conditions anchored at the node and
pops the decision.

The same class evaluates the user *query* (pull scenarios): a query is
compiled exactly like a single positive rule under a closed-world
default, so "the authorized subpart matching the query" (Section 2) is
the conjunction of two evaluator instances, taken by the delivery
engine.
"""

from __future__ import annotations

from repro.core.compiled import CompiledPolicy, compile_policy
from repro.core.conditions import Condition
from repro.core.decisions import DECISION_BYTES, DecisionNode
from repro.core.nfa import CompiledPath, compile_path
from repro.core.product import ProductEngine
from repro.core.rules import RuleSet, Sign, Subject
from repro.core.runtime import EngineStats, MatchSink, TokenEngine
from repro.xpathlib.ast import Path


class _RuleSink:
    """Routes completed rule matches to the node being opened."""

    __slots__ = ("evaluator", "sign")

    def __init__(self, evaluator: "StreamingEvaluator", sign: Sign) -> None:
        self.evaluator = evaluator
        self.sign = sign

    def on_match(self, conditions: frozenset[Condition]) -> None:
        self.evaluator._report(self.sign, conditions)


class StreamingEvaluator:
    """Evaluates a set of signed paths over an event stream.

    For access control, construct with :meth:`for_policy`; for query
    selection, with :meth:`for_query`.

    The engine behind the facade is chosen per path set: a purely
    navigational set (no predicates, no value tests -- every E1
    workload) runs on the table-driven
    :class:`~repro.core.product.ProductEngine`; anything with
    conditions falls back to the legacy
    :class:`~repro.core.runtime.TokenEngine`.  Both produce identical
    decisions, stats and modeled RAM charges; the choice only moves
    wall-clock time.  Registration is buffered until the set is known
    (the named constructors realize the engine immediately after
    seeding, so the secure-RAM charge order matches the seed's).
    """

    def __init__(
        self,
        default: Sign,
        memory=None,
        stats: EngineStats | None = None,
    ) -> None:
        self._stats = stats or EngineStats()
        self._engine: ProductEngine | TokenEngine | None = None
        self._pending: list[tuple[CompiledPath, MatchSink]] = []
        self._memory = memory
        root = DecisionNode.default_root(default)
        self._decisions: list[DecisionNode] = [root]
        self._collected: list[tuple[Sign, frozenset[Condition]]] = []
        self._sealed = False

    def _realize(self) -> "ProductEngine | TokenEngine":
        """Pick and build the engine for the registered path set."""
        engine = self._engine
        if engine is None:
            cls = (
                ProductEngine
                if all(path.pure for path, __ in self._pending)
                else TokenEngine
            )
            engine = cls(memory=self._memory, stats=self._stats)
            for path, sink in self._pending:
                engine.add_automaton(path, sink)
            self._pending.clear()
            self._engine = engine
        return engine

    # -- construction -----------------------------------------------------

    @classmethod
    def from_compiled(
        cls,
        policy: CompiledPolicy,
        memory=None,
        stats: EngineStats | None = None,
    ) -> "StreamingEvaluator":
        """Build an evaluator around prebuilt automata.

        This is the hot construction path: it seeds one token per
        automaton and allocates nothing else -- no parsing, no NFA
        compilation.  The same :class:`CompiledPolicy` may back any
        number of concurrent evaluators.
        """
        evaluator = cls(policy.default, memory=memory, stats=stats)
        for path, sign in zip(policy.automata, policy.signs):
            evaluator.add_compiled_path(path, sign)
        evaluator._realize()
        return evaluator

    @classmethod
    def for_policy(
        cls,
        rules: RuleSet,
        subject: Subject | str | None = None,
        default: Sign = Sign.DENY,
        memory=None,
        stats: EngineStats | None = None,
    ) -> "StreamingEvaluator":
        """Build the access-control evaluator for one subject.

        Thin wrapper over :meth:`from_compiled` that compiles the
        policy on the spot.  Callers that evaluate the same policy many
        times should compile once (or use a
        :class:`~repro.core.compiled.PolicyRegistry`) and call
        :meth:`from_compiled` instead.

        ``subject=None`` means the rule set is already subject-specific
        (that is how the card receives it: the DSP stores per-subject
        encrypted rule sets).
        """
        return cls.from_compiled(
            compile_policy(rules, subject, default), memory=memory, stats=stats
        )

    @classmethod
    def for_query(
        cls,
        query: Path | CompiledPath,
        memory=None,
        stats: EngineStats | None = None,
    ) -> "StreamingEvaluator":
        """Build a selector: nodes in the query's subtrees are PERMIT."""
        evaluator = cls(Sign.DENY, memory=memory, stats=stats)
        if isinstance(query, CompiledPath):
            evaluator.add_compiled_path(query, Sign.PERMIT)
        else:
            evaluator.add_rule_path(query, Sign.PERMIT)
        evaluator._realize()
        return evaluator

    def add_rule_path(self, path: Path, sign: Sign) -> None:
        """Compile and register one signed path (before parsing starts)."""
        self.add_compiled_path(compile_path(path), sign)

    def add_compiled_path(self, path: CompiledPath, sign: Sign) -> None:
        """Register one prebuilt signed automaton (before parsing starts)."""
        if self._sealed:
            raise RuntimeError("cannot add rules after parsing started")
        sink = _RuleSink(self, sign)
        if self._engine is None:
            self._pending.append((path, sink))
        else:
            # Engine already chosen (named constructor, or a pre-parse
            # stats probe); a late impure path demotes it to the token
            # engine, re-seeding the paths it held.
            if isinstance(self._engine, ProductEngine) and not path.pure:
                self._pending = self._engine.registered() + [(path, sink)]
                self._engine.retire()
                self._engine = None
                self._realize()
            else:
                self._engine.add_automaton(path, sink)

    # -- events -------------------------------------------------------------

    def _report(self, sign: Sign, conditions: frozenset[Condition]) -> None:
        self._collected.append((sign, conditions))

    def open(self, tag: str) -> DecisionNode:
        """Advance automata on an open; return the new node's decision."""
        self._sealed = True
        self._collected.clear()
        engine = self._engine
        if engine is None:
            engine = self._realize()
        engine.open(tag)
        node = DecisionNode(parent=self._decisions[-1])
        if self._memory is not None:
            self._memory.allocate("signs", DECISION_BYTES)
        for sign, conditions in self._collected:
            node.add_match(sign, conditions)
        self._decisions.append(node)
        return node

    def value(self, text: str) -> None:
        (self._engine or self._realize()).value(text)

    def close(self) -> None:
        (self._engine or self._realize()).close()
        self._decisions.pop()
        if self._memory is not None:
            self._memory.release("signs", DECISION_BYTES)

    # -- skip-index interface -------------------------------------------------

    def can_complete_inside(self, tags_inside: frozenset[str]) -> bool:
        """Whether any automaton could reach a final state in a subtree
        containing exactly the given element tags."""
        return (self._engine or self._realize()).can_complete_inside(tags_inside)

    def has_watchers_on_top(self) -> bool:
        """Whether the current node's text feeds a value predicate."""
        return (self._engine or self._realize()).has_watchers_on_top()

    def current_decision(self) -> DecisionNode:
        """Decision of the innermost open element (or the default)."""
        return self._decisions[-1]

    def active_token_count(self) -> int:
        if self._engine is None:
            return len(self._pending)
        return self._engine.active_token_count()

    @property
    def stats(self) -> EngineStats:
        return self._stats
