"""Construction of the authorized output stream.

The delivery engine turns per-element decisions into the *authorized
view* of the document, coping with decisions that are still pending.

View semantics (mirrored exactly by ``reference.py``, the test oracle):

* an element whose decision is PERMIT (and which is query-selected) is
  delivered in full: tag, attributes and its direct text;
* an element whose decision is DENY is not delivered, **but** if some
  descendant is delivered the element appears as a *skeleton* -- bare
  tag, no attributes, no text -- so that authorized parts keep their
  position in the hierarchy (``ViewMode.SKELETON``, the default).
  ``ViewMode.PRUNE`` instead re-parents delivered descendants under the
  nearest delivered ancestor;
* a pending element buffers its output in a *hole* until its conditions
  resolve -- this is the paper's "pending" delivery, and the buffered
  bytes are exactly what experiment E10 measures.

Implementation note: denied elements and pending elements share one
mechanism.  Both become :class:`_Hole` buffers in their parent's output;
a denied element's hole is born already resolved to DENY ("emit a
skeleton iff any real content ends up inside"), a pending element's hole
resolves when its conditions do.  Holes are created lazily -- a denied
element with no delivered descendant never allocates one.

Output order is document order: a hole blocks the emission of
everything behind it until it resolves (all holes resolve by the close
of the document root at the latest).
"""

from __future__ import annotations

import enum
from typing import Union

from repro.core.conditions import Condition
from repro.core.decisions import DecisionNode, Resolved
from repro.core.rules import Sign
from repro.xmlstream.events import (
    CloseEvent,
    Event,
    OpenEvent,
    ValueEvent,
    event_size,
)


class ViewMode(enum.Enum):
    """How denied ancestors of delivered content are rendered."""

    SKELETON = "skeleton"
    PRUNE = "prune"


#: Shared empty condition set for resolved statuses.
_NO_CONDITIONS: frozenset[Condition] = frozenset()


class _SelfText:
    """Text of a pending element; kept only if it resolves to PERMIT."""

    __slots__ = ("event",)

    def __init__(self, event: ValueEvent) -> None:
        self.event = event


class _Hole:
    """Buffered, possibly undecided output of one element.

    Contributes to its parent buffer once (a) the element has closed,
    (b) its decision resolved, and (c) for a DENY resolution, emptiness
    is decidable.
    """

    __slots__ = ("open_event", "items", "closed", "final_sign", "_memory", "charged")

    def __init__(
        self, open_event: OpenEvent, memory, final_sign: Sign | None = None
    ) -> None:
        self.open_event = open_event
        self.items: list[Item] = []
        self.closed = False
        self.final_sign = final_sign
        self._memory = memory
        self.charged = 0

    def append(self, item: "Item") -> None:
        self.items.append(item)
        if self._memory is not None:
            nbytes = _item_bytes(item)
            self.charged += nbytes
            self._memory.allocate("pending", nbytes)

    def discharge(self) -> None:
        """Release the modeled RAM held by this hole's buffered items."""
        if self._memory is not None and self.charged:
            self._memory.release("pending", self.charged)
            self.charged = 0


Item = Union[Event, _SelfText, _Hole]


def _item_bytes(item: "Item") -> int:
    if isinstance(item, _SelfText):
        return len(item.event.text)
    if isinstance(item, _Hole):
        return 0  # nested holes charge their own items
    return event_size(item)


class _Sink:
    """Destination for one element's delivery items.

    ``deliver`` sinks forward to the parent buffer directly.  ``deny``
    sinks stay silent until content flows through them; then:

    * plain content materializes the bare skeleton tag eagerly and the
      sink becomes a pass-through -- delivered descendants of denied
      ancestors stream with **zero** buffering;
    * a pending hole arriving first forces a buffered *shell* (a hole
      pre-resolved to DENY), because whether the skeleton appears at
      all depends on whether the pending content materializes.
    """

    __slots__ = ("_target", "_parent", "_shell_open", "_memory", "shell", "materialized")

    def __init__(
        self,
        target: "list[Item] | _Hole | None" = None,
        parent: "_Sink | None" = None,
        shell_open: OpenEvent | None = None,
        memory=None,
        prune: bool = False,
    ) -> None:
        self._target = target
        self._parent = parent
        self._shell_open = shell_open if not prune else None
        self._memory = memory
        self.shell: _Hole | None = None
        self.materialized = prune and shell_open is not None

    def append(self, item: Item) -> None:
        if self._shell_open is not None and not self.materialized and self.shell is None:
            if isinstance(item, _Hole):
                self.shell = _Hole(
                    self._shell_open, self._memory, final_sign=Sign.DENY
                )
                assert self._parent is not None
                self._parent.append(self.shell)
            else:
                self.materialized = True
                assert self._parent is not None
                self._parent.append(OpenEvent(self._shell_open.tag))
        if self.shell is not None:
            self.shell.append(item)
        elif self._parent is not None:
            self._parent.append(item)
        else:
            assert self._target is not None
            self._target.append(item)


class _Record:
    """Per-open-element delivery state."""

    DELIVER = "deliver"
    DROP = "drop"
    PENDING = "pending"

    __slots__ = ("kind", "sink", "hole", "open_event")

    def __init__(self, kind: str, sink: _Sink, open_event: OpenEvent) -> None:
        self.kind = kind
        self.sink = sink
        self.hole: _Hole | None = None
        self.open_event = open_event


class DeliveryEngine:
    """Streams the authorized view, buffering only undecided regions."""

    def __init__(self, mode: ViewMode = ViewMode.SKELETON, memory=None) -> None:
        self.mode = mode
        self._memory = memory
        self._root_items: list[Item] = []
        self._root_sink = _Sink(target=self._root_items)
        self._records: list[_Record] = []
        self.max_pending_bytes = 0
        #: Set the first time a pending hole is created; until then the
        #: root buffer provably holds plain events only (shell holes
        #: are only ever triggered by a pending hole flowing through),
        #: so :meth:`drain` can skip the hole scan and the pending-RAM
        #: sample (the "pending" pool is exactly the holes' charges).
        self._hole_born = False

    # -- decision combination ---------------------------------------------

    def _combined_status(
        self, auth: DecisionNode, query: DecisionNode | None
    ) -> tuple[str, frozenset[Condition]]:
        """Fold authorization and query selection into a delivery kind.

        A definite DENY on either side drops the element regardless of
        the other side; both must be definitively PERMIT to deliver.
        The two sides are folded directly (no list materialization --
        this runs at least once per element per session).
        """
        auth_status = auth.status()
        query_status = query.status() if query is not None else None
        if isinstance(auth_status, Resolved):
            if auth_status.sign is Sign.DENY:
                return _Record.DROP, _NO_CONDITIONS
            auth_unknowns = None
        else:
            auth_unknowns = auth_status.unknowns
        if query_status is None:
            if auth_unknowns:
                return _Record.PENDING, auth_unknowns
            return _Record.DELIVER, _NO_CONDITIONS
        if isinstance(query_status, Resolved):
            if query_status.sign is Sign.DENY:
                return _Record.DROP, _NO_CONDITIONS
            query_unknowns = None
        else:
            query_unknowns = query_status.unknowns
        if not auth_unknowns and not query_unknowns:
            return _Record.DELIVER, _NO_CONDITIONS
        unknowns: set[Condition] = set()
        if auth_unknowns:
            unknowns.update(auth_unknowns)
        if query_unknowns:
            unknowns.update(query_unknowns)
        return _Record.PENDING, frozenset(unknowns)

    # -- events -------------------------------------------------------------

    def open(
        self,
        event: OpenEvent,
        auth: DecisionNode,
        query: DecisionNode | None = None,
    ) -> None:
        """Process an element open with its (possibly pending) decisions."""
        parent_sink = self._records[-1].sink if self._records else self._root_sink
        kind, unknowns = self._combined_status(auth, query)
        if kind == _Record.DELIVER:
            parent_sink.append(event)
            record = _Record(kind, parent_sink, event)
        elif kind == _Record.DROP:
            sink = _Sink(
                parent=parent_sink,
                shell_open=event,
                memory=self._memory,
                prune=self.mode is ViewMode.PRUNE,
            )
            record = _Record(kind, sink, event)
        else:
            hole = _Hole(event, self._memory)
            self._hole_born = True
            parent_sink.append(hole)
            record = _Record(kind, _Sink(target=hole), event)
            record.hole = hole
            self._watch(hole, auth, query, unknowns)
        self._records.append(record)

    def _watch(
        self,
        hole: _Hole,
        auth: DecisionNode,
        query: DecisionNode | None,
        unknowns: frozenset[Condition],
    ) -> None:
        """Subscribe the hole to the conditions its decision hangs on."""
        subscribed: set[int] = {c.condition_id for c in unknowns}

        def refresh(_: Condition) -> None:
            if hole.final_sign is not None:
                return
            kind, new_unknowns = self._combined_status(auth, query)
            if kind == _Record.DELIVER:
                hole.final_sign = Sign.PERMIT
            elif kind == _Record.DROP:
                hole.final_sign = Sign.DENY
            else:
                for condition in new_unknowns:
                    if condition.condition_id not in subscribed:
                        subscribed.add(condition.condition_id)
                        condition.add_listener(refresh)

        for condition in unknowns:
            condition.add_listener(refresh)

    def value(self, event: ValueEvent) -> None:
        """Process a text event (owned by the innermost open element)."""
        record = self._records[-1]
        if record.kind == _Record.DELIVER:
            record.sink.append(event)
        elif record.kind == _Record.PENDING:
            assert record.hole is not None
            record.hole.append(_SelfText(event))
        # DROP: text is never delivered.

    def close(self, event: CloseEvent) -> None:
        """Process an element close."""
        record = self._records.pop()
        if record.kind == _Record.DELIVER:
            record.sink.append(event)
        elif record.kind == _Record.DROP:
            if record.sink.shell is not None:
                record.sink.shell.closed = True
            elif record.sink.materialized and self.mode is ViewMode.SKELETON:
                record.sink.append(CloseEvent(event.tag))
        else:
            assert record.hole is not None
            record.hole.closed = True

    # -- output ---------------------------------------------------------------

    def _hole_contribution(self, hole: _Hole) -> list[Item] | None:
        """Finalized contribution of a hole, or None if not decidable yet."""
        if not hole.closed or hole.final_sign is None:
            return None
        self._settle(hole.items)
        if hole.final_sign is Sign.PERMIT:
            out: list[Item] = [hole.open_event]
            for item in hole.items:
                out.append(item.event if isinstance(item, _SelfText) else item)
            out.append(CloseEvent(hole.open_event.tag))
            hole.discharge()
            return out
        # DENY: keep only content contributed by delivered descendants.
        content: list[Item] = [
            item for item in hole.items if not isinstance(item, _SelfText)
        ]
        has_nested_hole = any(isinstance(item, _Hole) for item in content)
        has_plain = any(not isinstance(item, _Hole) for item in content)
        if has_nested_hole and not has_plain:
            return None  # emptiness unknown until nested holes resolve
        if not content:
            hole.discharge()
            return []
        hole.discharge()
        if self.mode is ViewMode.PRUNE:
            return content
        skeleton: list[Item] = [OpenEvent(hole.open_event.tag)]
        skeleton.extend(content)
        skeleton.append(CloseEvent(hole.open_event.tag))
        return skeleton

    def _settle(self, items: list[Item]) -> None:
        """Replace finalizable holes with their contributions, in place."""
        if not any(isinstance(item, _Hole) for item in items):
            return  # hot path: nothing pending, no list rebuild
        changed = True
        while changed:
            changed = False
            new_items: list[Item] = []
            for item in items:
                if isinstance(item, _Hole):
                    contribution = self._hole_contribution(item)
                    if contribution is not None:
                        new_items.extend(contribution)
                        changed = True
                        continue
                new_items.append(item)
            items[:] = new_items

    def drain(self) -> list[Event]:
        """Emit every event no longer order-blocked by a pending hole."""
        root_items = self._root_items
        if not self._hole_born:
            # Hot path: no hole was ever created, so nothing is
            # order-blocked and nothing was charged to "pending".
            if not root_items:
                return []
            emitted = list(root_items)
            root_items.clear()
            return emitted
        if self._memory is not None:
            self.max_pending_bytes = max(
                self.max_pending_bytes, self._memory.usage("pending")
            )
        self._settle(self._root_items)
        emitted: list[Event] = []
        count = 0
        for item in self._root_items:
            if isinstance(item, _Hole):
                break
            assert not isinstance(item, _SelfText)
            emitted.append(item)
            count += 1
        del self._root_items[:count]
        return emitted

    def finish(self) -> list[Event]:
        """Drain after end of document; every hole must have resolved."""
        remaining = self.drain()
        if self._root_items:
            raise RuntimeError("unresolved pending output at end of document")
        return remaining
