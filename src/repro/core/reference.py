"""Non-streaming oracle for differential testing.

Implements the access-control semantics of Section 2.2 directly on a
materialized tree, with none of the streaming machinery: rule node sets
come from the reference XPath evaluator, decisions from a literal
reading of the conflict-resolution policies, and the view from a
recursive walk.  The streaming engine must agree with this module on
every document -- that equivalence is the central property test of the
repository.
"""

from __future__ import annotations

from repro.core.delivery import ViewMode
from repro.core.rules import RuleSet, Sign, Subject
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent
from repro.xmlstream.tree import Element
from repro.xpathlib.ast import Path
from repro.xpathlib.evaluator import evaluate_path
from repro.xpathlib.parser import parse_path


def _direct_matches(
    rules: RuleSet, root: Element
) -> dict[int, list[Sign]]:
    matches: dict[int, list[Sign]] = {}
    for rule in rules:
        for node in evaluate_path(rule.object, root):
            matches.setdefault(id(node), []).append(rule.sign)
    return matches


def _decide(
    node: Element,
    matches: dict[int, list[Sign]],
    default: Sign,
    cache: dict[int, Sign],
) -> Sign:
    """Decision for ``node``: direct matches with Denial-Takes-Precedence,
    else the nearest ancestor decision (Most-Specific-Object)."""
    cached = cache.get(id(node))
    if cached is not None:
        return cached
    direct = matches.get(id(node))
    if direct:
        decision = Sign.DENY if Sign.DENY in direct else Sign.PERMIT
    elif node.parent is not None:
        decision = _decide(node.parent, matches, default, cache)
    else:
        decision = default
    cache[id(node)] = decision
    return decision


def reference_view(
    root: Element,
    rules: RuleSet,
    subject: Subject | str | None = None,
    query: Path | str | None = None,
    mode: ViewMode = ViewMode.SKELETON,
    default: Sign = Sign.DENY,
) -> list[Event]:
    """Compute the authorized view on a materialized tree.

    Semantics (identical to the streaming engine's):

    * ``delivered(n)`` iff decision(n) is PERMIT and ``n`` lies in a
      query-selected subtree (every node is selected when there is no
      query);
    * ``retained(n)`` iff delivered(n) or some descendant is retained;
    * delivered nodes appear with attributes and direct text, retained
      but undelivered nodes appear as bare skeletons (SKELETON mode) or
      vanish with their children spliced upward (PRUNE mode).
    """
    if subject is not None:
        rules = rules.for_subject(subject)
    if isinstance(query, str):
        query = parse_path(query)
    matches = _direct_matches(rules, root)
    decision_cache: dict[int, Sign] = {}

    selected: set[int] | None = None
    if query is not None:
        selected = set()
        for node in evaluate_path(query, root):
            for member in node.iter():
                selected.add(id(member))

    def delivered(node: Element) -> bool:
        if selected is not None and id(node) not in selected:
            return False
        return _decide(node, matches, default, decision_cache) is Sign.PERMIT

    def contribution(node: Element) -> list[Event]:
        child_events: list[Event] = []
        is_delivered = delivered(node)
        for child in node.children:
            if isinstance(child, Element):
                child_events.extend(contribution(child))
            elif is_delivered and child:
                child_events.append(ValueEvent(child))
        if is_delivered:
            open_event = OpenEvent(node.tag, tuple(node.attributes.items()))
            return [open_event, *child_events, CloseEvent(node.tag)]
        if not child_events:
            return []
        if mode is ViewMode.PRUNE:
            return child_events
        return [OpenEvent(node.tag), *child_events, CloseEvent(node.tag)]

    return contribution(root)
