"""Incremental, event-based XML parser.

The parser is deliberately written as a pull pipeline: it accepts either
a complete string or an iterable of text chunks and yields
:class:`~repro.xmlstream.events.Event` objects as soon as they are
complete.  Nothing is ever materialized beyond the current token, which
mirrors the streaming constraint of the Secure Operating Environment.

Supported XML subset (sufficient for the paper's data model):

* elements with attributes (single- or double-quoted),
* text content with the five predefined entities and character
  references,
* CDATA sections, comments, processing instructions and a DOCTYPE
  declaration (the last three are skipped),
* no namespace processing (``:`` is treated as a plain name character).

Scanning is find/regex-based rather than character-at-a-time: names,
text runs, whitespace and markup delimiters are located with
:meth:`str.find` and compiled patterns (one C-level scan per token),
and the buffer is consumed through a read cursor with batched chunk
joins, so total buffering cost stays linear in the input even when a
single token spans many chunks.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.xmlstream.escape import resolve_entity
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent

#: Name production of the supported subset: ``:`` is a plain name
#: character, no Unicode classes (workload documents are ASCII).
_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_:.\-]*")
#: First non-whitespace character (whitespace per the XML subset).
_NON_WS_RE = re.compile(r"[^ \t\r\n]")


class XMLSyntaxError(ValueError):
    """Raised on malformed input, with the offset of the error."""

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (at offset {offset})")
        self.offset = offset


class _Scanner:
    """Buffered scanner over an iterator of text chunks.

    The buffer is consumed through ``_pos`` (no per-take prefix
    slicing); incoming chunks are merged with one ``join`` per refill
    instead of repeated ``+=``, so memory traffic is bounded by the
    input length plus the largest single token.
    """

    __slots__ = ("_chunks", "_buffer", "_pos", "_consumed", "_eof")

    def __init__(self, chunks: Iterable[str]) -> None:
        self._chunks = iter(chunks)
        self._buffer = ""
        self._pos = 0  # index of the next unconsumed character
        self._consumed = 0  # absolute offset of _buffer[_pos]
        self._eof = False

    @property
    def offset(self) -> int:
        """Absolute offset of the scanner position in the input."""
        return self._consumed

    def _fill(self, length: int) -> bool:
        """Make ``length`` unconsumed characters available, or hit EOF."""
        available = len(self._buffer) - self._pos
        if available >= length:
            return True
        if self._eof:
            return False
        parts = [self._buffer[self._pos:]] if available else []
        while available < length:
            try:
                chunk = next(self._chunks)
            except StopIteration:
                self._eof = True
                break
            parts.append(chunk)
            available += len(chunk)
        self._buffer = "".join(parts)
        self._pos = 0
        return available >= length

    def peek(self, index: int = 0) -> str:
        """Return the character at ``index`` or '' at EOF."""
        if not self._fill(index + 1):
            return ""
        return self._buffer[self._pos + index]

    def startswith(self, prefix: str) -> bool:
        if not self._fill(len(prefix)):
            return False
        return self._buffer.startswith(prefix, self._pos)

    def take(self, count: int) -> str:
        """Consume and return exactly ``count`` characters."""
        if not self._fill(count):
            raise XMLSyntaxError("unexpected end of input", self.offset)
        position = self._pos
        text = self._buffer[position:position + count]
        self._pos = position + count
        self._consumed += count
        return text

    def take_until(self, marker: str, *, error: str) -> str:
        """Consume text up to ``marker`` and the marker itself.

        Returns the text before the marker.  When the marker is not yet
        buffered, chunks are scanned as they arrive (searching only the
        boundary overlap plus the new chunk), so cost is linear in the
        bytes consumed rather than quadratic in the token length.
        """
        index = self._buffer.find(marker, self._pos)
        if index >= 0:
            text = self._buffer[self._pos:index]
            self._pos = index + len(marker)
            self._consumed += len(text) + len(marker)
            return text
        overlap = len(marker) - 1
        parts = [self._buffer[self._pos:]]
        total = len(parts[0])
        # ``tail`` rolls the last overlap characters of everything
        # accumulated so far, so a marker split across any number of
        # tiny chunks is still found.
        tail = parts[0][-overlap:] if overlap else ""
        while True:
            try:
                chunk = next(self._chunks)
            except StopIteration:
                self._eof = True
                raise XMLSyntaxError(error, self.offset) from None
            probe = tail + chunk
            hit = probe.find(marker)
            if hit >= 0:
                start = total - len(tail) + hit  # marker start, accumulated
                parts.append(chunk)
                whole = "".join(parts)
                self._buffer = whole[start + len(marker):]
                self._pos = 0
                self._consumed += start + len(marker)
                return whole[:start]
            parts.append(chunk)
            total += len(chunk)
            if overlap:
                tail = probe[-overlap:]

    def take_name(self) -> str:
        """Consume one XML name (find-based, spanning chunk boundaries)."""
        if not self._fill(1):
            raise XMLSyntaxError("expected a name, found ''", self.offset)
        while True:
            match = _NAME_RE.match(self._buffer, self._pos)
            if match is None:
                found = self._buffer[self._pos]
                raise XMLSyntaxError(
                    f"expected a name, found {found!r}", self.offset
                )
            end = match.end()
            if end < len(self._buffer) or self._eof:
                break
            # The name may continue into the next chunk: refill, then
            # rematch from the top -- _fill compacts the buffer (moving
            # the cursor), so pre-refill coordinates are always stale.
            self._fill(len(self._buffer) - self._pos + 1)
        name = self._buffer[self._pos:end]
        self._consumed += end - self._pos
        self._pos = end
        return name

    def take_text(self) -> str:
        """Consume raw text up to (excluding) the next ``<`` or EOF."""
        if not self._fill(1):
            return ""
        parts: list[str] = []
        while True:
            index = self._buffer.find("<", self._pos)
            if index >= 0:
                parts.append(self._buffer[self._pos:index])
                self._consumed += index - self._pos
                self._pos = index
                break
            parts.append(self._buffer[self._pos:])
            self._consumed += len(self._buffer) - self._pos
            self._buffer = ""
            self._pos = 0
            if not self._fill(1):
                break
        return "".join(parts)

    def skip_whitespace(self) -> None:
        while True:
            match = _NON_WS_RE.search(self._buffer, self._pos)
            if match is not None:
                self._consumed += match.start() - self._pos
                self._pos = match.start()
                return
            self._consumed += len(self._buffer) - self._pos
            self._buffer = ""
            self._pos = 0
            if not self._fill(1):
                return

    def at_eof(self) -> bool:
        return not self._fill(1)


def _read_name(scanner: _Scanner) -> str:
    return scanner.take_name()


def _decode_entities(text: str, offset: int) -> str:
    """Replace entity and character references in ``text``."""
    if "&" not in text:
        return text
    parts: list[str] = []
    position = 0
    while True:
        amp = text.find("&", position)
        if amp < 0:
            parts.append(text[position:])
            return "".join(parts)
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XMLSyntaxError("unterminated entity reference", offset + amp)
        replacement = resolve_entity(text[amp + 1:semi])
        if replacement is None:
            raise XMLSyntaxError(
                f"unknown entity &{text[amp + 1:semi]};", offset + amp
            )
        parts.append(text[position:amp])
        parts.append(replacement)
        position = semi + 1


def _read_attributes(
    scanner: _Scanner,
) -> tuple[tuple[tuple[str, str], ...], bool]:
    """Parse attributes up to ``>`` or ``/>``.

    Returns ``(attributes, self_closing)``.
    """
    attributes: list[tuple[str, str]] = []
    while True:
        scanner.skip_whitespace()
        char = scanner.peek()
        if char == ">":
            scanner.take(1)
            return tuple(attributes), False
        if char == "/":
            if not scanner.startswith("/>"):
                raise XMLSyntaxError("expected '/>'", scanner.offset)
            scanner.take(2)
            return tuple(attributes), True
        if not char:
            raise XMLSyntaxError("unexpected end of tag", scanner.offset)
        name = scanner.take_name()
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise XMLSyntaxError(
                f"expected '=' after attribute {name!r}", scanner.offset
            )
        scanner.take(1)
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XMLSyntaxError("attribute value must be quoted", scanner.offset)
        scanner.take(1)
        value_offset = scanner.offset
        raw = scanner.take_until(quote, error="unterminated attribute value")
        attributes.append((name, _decode_entities(raw, value_offset)))


def parse_events(
    source: str | Iterable[str],
    *,
    keep_whitespace: bool = False,
) -> Iterator[Event]:
    """Parse ``source`` into a stream of events.

    ``source`` may be a complete document string or any iterable of text
    chunks (the chunks may split the document at arbitrary positions).
    Whitespace-only text nodes are dropped unless ``keep_whitespace`` is
    true; adjacent text (including across CDATA boundaries) is merged
    into a single :class:`ValueEvent`.
    """
    if isinstance(source, str):
        source = (source,)
    scanner = _Scanner(source)
    depth = 0
    open_tags: list[str] = []
    seen_root = False
    pending_text: list[str] = []

    def flush_text() -> Iterator[Event]:
        if not pending_text:
            return
        text = "".join(pending_text)
        pending_text.clear()
        if depth == 0:
            if text.strip():
                raise XMLSyntaxError("text outside the root element", scanner.offset)
            return
        if text.strip() or keep_whitespace:
            yield ValueEvent(text)

    while True:
        if scanner.at_eof():
            break
        if scanner.peek() != "<":
            text_offset = scanner.offset
            raw = scanner.take_text()
            pending_text.append(_decode_entities(raw, text_offset))
            continue
        # Markup.
        if scanner.startswith("<![CDATA["):
            scanner.take(9)
            pending_text.append(
                scanner.take_until("]]>", error="unterminated CDATA section")
            )
            continue
        yield from flush_text()
        if scanner.startswith("<!--"):
            scanner.take(4)
            scanner.take_until("-->", error="unterminated comment")
            continue
        if scanner.startswith("<?"):
            scanner.take(2)
            scanner.take_until("?>", error="unterminated processing instruction")
            continue
        if scanner.startswith("<!"):
            scanner.take(2)
            scanner.take_until(">", error="unterminated declaration")
            continue
        if scanner.startswith("</"):
            scanner.take(2)
            name = scanner.take_name()
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise XMLSyntaxError("malformed closing tag", scanner.offset)
            scanner.take(1)
            if depth == 0:
                raise XMLSyntaxError(
                    f"unmatched closing tag </{name}>", scanner.offset
                )
            expected = open_tags.pop()
            if expected != name:
                raise XMLSyntaxError(
                    f"closing tag </{name}> does not match <{expected}>",
                    scanner.offset,
                )
            depth -= 1
            yield CloseEvent(name)
            continue
        scanner.take(1)  # '<'
        name = scanner.take_name()
        attributes, self_closing = _read_attributes(scanner)
        if depth == 0 and seen_root:
            raise XMLSyntaxError("multiple root elements", scanner.offset)
        seen_root = True
        yield OpenEvent(name, attributes)
        if self_closing:
            yield CloseEvent(name)
        else:
            depth += 1
            open_tags.append(name)

    yield from flush_text()
    if depth != 0:
        raise XMLSyntaxError("unclosed elements at end of input", scanner.offset)
    if not seen_root:
        raise XMLSyntaxError("document has no root element", scanner.offset)


def parse_string(text: str, *, keep_whitespace: bool = False) -> list[Event]:
    """Parse a complete document and return the event list."""
    return list(parse_events(text, keep_whitespace=keep_whitespace))
