"""Incremental, event-based XML parser.

The parser is deliberately written as a pull pipeline: it accepts either
a complete string or an iterable of text chunks and yields
:class:`~repro.xmlstream.events.Event` objects as soon as they are
complete.  Nothing is ever materialized beyond the current token, which
mirrors the streaming constraint of the Secure Operating Environment.

Supported XML subset (sufficient for the paper's data model):

* elements with attributes (single- or double-quoted),
* text content with the five predefined entities and character
  references,
* CDATA sections, comments, processing instructions and a DOCTYPE
  declaration (the last three are skipped),
* no namespace processing (``:`` is treated as a plain name character).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.xmlstream.escape import resolve_entity
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class XMLSyntaxError(ValueError):
    """Raised on malformed input, with the offset of the error."""

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (at offset {offset})")
        self.offset = offset


class _Scanner:
    """Buffered scanner over an iterator of text chunks.

    Grows its buffer on demand and discards consumed prefixes, so memory
    use is bounded by the largest single token.
    """

    def __init__(self, chunks: Iterable[str]) -> None:
        self._chunks = iter(chunks)
        self._buffer = ""
        self._consumed = 0  # total characters discarded so far
        self._eof = False

    @property
    def offset(self) -> int:
        """Absolute offset of the scanner position in the input."""
        return self._consumed

    def _pull(self) -> bool:
        """Append one more chunk to the buffer; return False at EOF."""
        if self._eof:
            return False
        try:
            self._buffer += next(self._chunks)
            return True
        except StopIteration:
            self._eof = True
            return False

    def ensure(self, length: int) -> bool:
        """Ensure at least ``length`` characters are buffered."""
        while len(self._buffer) < length:
            if not self._pull():
                return False
        return True

    def peek(self, index: int = 0) -> str:
        """Return the character at ``index`` or '' at EOF."""
        if not self.ensure(index + 1):
            return ""
        return self._buffer[index]

    def startswith(self, prefix: str) -> bool:
        if not self.ensure(len(prefix)):
            return False
        return self._buffer.startswith(prefix)

    def take(self, count: int) -> str:
        """Consume and return exactly ``count`` characters."""
        if not self.ensure(count):
            raise XMLSyntaxError("unexpected end of input", self.offset)
        text, self._buffer = self._buffer[:count], self._buffer[count:]
        self._consumed += count
        return text

    def take_until(self, marker: str, *, error: str) -> str:
        """Consume text up to ``marker`` and the marker itself.

        Returns the text before the marker.
        """
        start = 0
        while True:
            index = self._buffer.find(marker, start)
            if index >= 0:
                text = self._buffer[:index]
                self._buffer = self._buffer[index + len(marker):]
                self._consumed += index + len(marker)
                return text
            start = max(0, len(self._buffer) - len(marker) + 1)
            if not self._pull():
                raise XMLSyntaxError(error, self.offset)

    def skip_whitespace(self) -> None:
        while True:
            stripped = self._buffer.lstrip(" \t\r\n")
            self._consumed += len(self._buffer) - len(stripped)
            self._buffer = stripped
            if self._buffer or not self._pull():
                return

    def at_eof(self) -> bool:
        return not self.ensure(1)


def _read_name(scanner: _Scanner) -> str:
    first = scanner.peek()
    if first not in _NAME_START:
        raise XMLSyntaxError(f"expected a name, found {first!r}", scanner.offset)
    length = 1
    while scanner.peek(length) in _NAME_CHARS and scanner.peek(length):
        length += 1
    return scanner.take(length)


def _decode_entities(text: str, offset: int) -> str:
    """Replace entity and character references in ``text``."""
    if "&" not in text:
        return text
    parts: list[str] = []
    position = 0
    while True:
        amp = text.find("&", position)
        if amp < 0:
            parts.append(text[position:])
            return "".join(parts)
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XMLSyntaxError("unterminated entity reference", offset + amp)
        replacement = resolve_entity(text[amp + 1:semi])
        if replacement is None:
            raise XMLSyntaxError(
                f"unknown entity &{text[amp + 1:semi]};", offset + amp
            )
        parts.append(text[position:amp])
        parts.append(replacement)
        position = semi + 1


def _read_attributes(
    scanner: _Scanner,
) -> tuple[tuple[tuple[str, str], ...], bool]:
    """Parse attributes up to ``>`` or ``/>``.

    Returns ``(attributes, self_closing)``.
    """
    attributes: list[tuple[str, str]] = []
    while True:
        scanner.skip_whitespace()
        char = scanner.peek()
        if char == ">":
            scanner.take(1)
            return tuple(attributes), False
        if char == "/":
            if not scanner.startswith("/>"):
                raise XMLSyntaxError("expected '/>'", scanner.offset)
            scanner.take(2)
            return tuple(attributes), True
        if not char:
            raise XMLSyntaxError("unexpected end of tag", scanner.offset)
        name = _read_name(scanner)
        scanner.skip_whitespace()
        if scanner.peek() != "=":
            raise XMLSyntaxError(
                f"expected '=' after attribute {name!r}", scanner.offset
            )
        scanner.take(1)
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XMLSyntaxError("attribute value must be quoted", scanner.offset)
        scanner.take(1)
        value_offset = scanner.offset
        raw = scanner.take_until(quote, error="unterminated attribute value")
        attributes.append((name, _decode_entities(raw, value_offset)))


def parse_events(
    source: str | Iterable[str],
    *,
    keep_whitespace: bool = False,
) -> Iterator[Event]:
    """Parse ``source`` into a stream of events.

    ``source`` may be a complete document string or any iterable of text
    chunks (the chunks may split the document at arbitrary positions).
    Whitespace-only text nodes are dropped unless ``keep_whitespace`` is
    true; adjacent text (including across CDATA boundaries) is merged
    into a single :class:`ValueEvent`.
    """
    if isinstance(source, str):
        source = (source,)
    scanner = _Scanner(source)
    depth = 0
    open_tags: list[str] = []
    seen_root = False
    pending_text: list[str] = []

    def flush_text() -> Iterator[Event]:
        if not pending_text:
            return
        text = "".join(pending_text)
        pending_text.clear()
        if depth == 0:
            if text.strip():
                raise XMLSyntaxError("text outside the root element", scanner.offset)
            return
        if text.strip() or keep_whitespace:
            yield ValueEvent(text)

    while True:
        if scanner.at_eof():
            break
        if scanner.peek() != "<":
            text_offset = scanner.offset
            raw = _take_text(scanner)
            pending_text.append(_decode_entities(raw, text_offset))
            continue
        # Markup.
        if scanner.startswith("<![CDATA["):
            scanner.take(9)
            pending_text.append(
                scanner.take_until("]]>", error="unterminated CDATA section")
            )
            continue
        yield from flush_text()
        if scanner.startswith("<!--"):
            scanner.take(4)
            scanner.take_until("-->", error="unterminated comment")
            continue
        if scanner.startswith("<?"):
            scanner.take(2)
            scanner.take_until("?>", error="unterminated processing instruction")
            continue
        if scanner.startswith("<!"):
            scanner.take(2)
            scanner.take_until(">", error="unterminated declaration")
            continue
        if scanner.startswith("</"):
            scanner.take(2)
            name = _read_name(scanner)
            scanner.skip_whitespace()
            if scanner.peek() != ">":
                raise XMLSyntaxError("malformed closing tag", scanner.offset)
            scanner.take(1)
            if depth == 0:
                raise XMLSyntaxError(
                    f"unmatched closing tag </{name}>", scanner.offset
                )
            expected = open_tags.pop()
            if expected != name:
                raise XMLSyntaxError(
                    f"closing tag </{name}> does not match <{expected}>",
                    scanner.offset,
                )
            depth -= 1
            yield CloseEvent(name)
            continue
        scanner.take(1)  # '<'
        name = _read_name(scanner)
        attributes, self_closing = _read_attributes(scanner)
        if depth == 0 and seen_root:
            raise XMLSyntaxError("multiple root elements", scanner.offset)
        seen_root = True
        yield OpenEvent(name, attributes)
        if self_closing:
            yield CloseEvent(name)
        else:
            depth += 1
            open_tags.append(name)

    yield from flush_text()
    if depth != 0:
        raise XMLSyntaxError("unclosed elements at end of input", scanner.offset)
    if not seen_root:
        raise XMLSyntaxError("document has no root element", scanner.offset)


def _take_text(scanner: _Scanner) -> str:
    """Consume raw text up to (excluding) the next ``<`` or EOF."""
    length = 0
    while True:
        char = scanner.peek(length)
        if not char or char == "<":
            return scanner.take(length)
        length += 1


def parse_string(text: str, *, keep_whitespace: bool = False) -> list[Event]:
    """Parse a complete document and return the event list."""
    return list(parse_events(text, keep_whitespace=keep_whitespace))
