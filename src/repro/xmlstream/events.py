"""SAX-like event model for streaming XML.

The paper assumes "the evaluator is fed by an event-based parser (e.g.,
SAX) raising open, value and close events respectively for each opening,
text and closing tag in the input document".  These three event classes
are the common currency of the whole system: the parser produces them,
the skip-index encoder serializes them, the card applet consumes them and
the delivery module re-emits the authorized subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union


@dataclass(frozen=True, slots=True)
class OpenEvent:
    """An opening tag ``<tag attr="...">``.

    Attributes are kept as an ordered tuple of ``(name, value)`` pairs so
    events are hashable and round-trip deterministically.
    """

    tag: str
    attributes: tuple[tuple[str, str], ...] = field(default=())

    def attribute(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute ``name`` or ``default``."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass(frozen=True, slots=True)
class ValueEvent:
    """A text node.  Adjacent text is merged into a single event."""

    text: str


@dataclass(frozen=True, slots=True)
class CloseEvent:
    """A closing tag ``</tag>``."""

    tag: str


Event = Union[OpenEvent, ValueEvent, CloseEvent]


class EventStreamError(ValueError):
    """Raised when an event stream violates well-formedness."""


def validate_event_stream(events: Iterable[Event]) -> Iterator[Event]:
    """Yield ``events`` while checking well-formedness.

    The checks are the structural invariants every component of the
    pipeline relies on: tags balance, text never appears at top level,
    and there is exactly one root element.

    Raises :class:`EventStreamError` on the first violation.
    """
    stack: list[str] = []
    seen_root = False
    for event in events:
        if isinstance(event, OpenEvent):
            if not stack and seen_root:
                raise EventStreamError(
                    f"second root element <{event.tag}> in stream"
                )
            seen_root = True
            stack.append(event.tag)
        elif isinstance(event, CloseEvent):
            if not stack:
                raise EventStreamError(f"unmatched closing tag </{event.tag}>")
            expected = stack.pop()
            if expected != event.tag:
                raise EventStreamError(
                    f"closing tag </{event.tag}> does not match <{expected}>"
                )
        elif isinstance(event, ValueEvent):
            if not stack:
                raise EventStreamError("text outside of the root element")
        else:  # pragma: no cover - defensive
            raise EventStreamError(f"unknown event type: {event!r}")
        yield event
    if stack:
        raise EventStreamError(f"unclosed elements at end of stream: {stack}")
    if not seen_root:
        raise EventStreamError("empty event stream (no root element)")


def events_to_paths(events: Iterable[Event]) -> Iterator[tuple[str, ...]]:
    """Yield the absolute tag path of every element, in document order.

    Useful in tests to compare a delivered stream against an expected
    projection of the input document.
    """
    stack: list[str] = []
    for event in events:
        if isinstance(event, OpenEvent):
            stack.append(event.tag)
            yield tuple(stack)
        elif isinstance(event, CloseEvent):
            stack.pop()


def event_size(event: Event) -> int:
    """Approximate serialized size of ``event`` in bytes.

    Used by resource accounting when an exact encoded form is not at
    hand (for example when charging the card output buffer).
    """
    if isinstance(event, OpenEvent):
        size = len(event.tag) + 2
        for name, value in event.attributes:
            size += len(name) + len(value) + 4
        return size
    if isinstance(event, ValueEvent):
        return len(event.text)
    return len(event.tag) + 3
