"""Serialize event streams back to XML text.

The writer is the exact inverse of :mod:`repro.xmlstream.parser` for the
supported subset, which gives the round-trip property exploited by the
test suite: ``parse(write(events)) == events``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.xmlstream.escape import escape_attribute, escape_text
from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent


def write_events(
    events: Iterable[Event],
    *,
    indent: str | None = None,
) -> Iterator[str]:
    """Yield text fragments serializing ``events``.

    With ``indent`` set (e.g. ``"  "``), a pretty-printed form is
    produced: element-only content is placed on indented lines while
    mixed/text content keeps its exact spacing.  The default compact
    form is byte-faithful for round-tripping.
    """
    if indent is None:
        yield from _write_compact(events)
    else:
        yield from _write_pretty(events, indent)


def _open_tag_text(event: OpenEvent) -> str:
    if not event.attributes:
        return f"<{event.tag}>"
    parts = ["<", event.tag]
    for name, value in event.attributes:
        parts.append(f' {name}="{escape_attribute(value)}"')
    parts.append(">")
    return "".join(parts)


def _write_compact(events: Iterable[Event]) -> Iterator[str]:
    for event in events:
        if isinstance(event, OpenEvent):
            yield _open_tag_text(event)
        elif isinstance(event, ValueEvent):
            yield escape_text(event.text)
        elif isinstance(event, CloseEvent):
            yield f"</{event.tag}>"
        else:  # pragma: no cover - defensive
            raise TypeError(f"not an event: {event!r}")


def _write_pretty(events: Iterable[Event], indent: str) -> Iterator[str]:
    depth = 0
    # A small lookahead lets <leaf>text</leaf> stay on one line.
    buffered: list[Event] = []
    stream = iter(events)

    def pull() -> Event | None:
        if buffered:
            return buffered.pop()
        return next(stream, None)

    first = True
    while True:
        event = pull()
        if event is None:
            break
        if isinstance(event, OpenEvent):
            if not first:
                yield "\n"
            first = False
            yield indent * depth
            yield _open_tag_text(event)
            nxt = pull()
            if isinstance(nxt, ValueEvent):
                after = pull()
                if isinstance(after, CloseEvent):
                    yield escape_text(nxt.text)
                    yield f"</{after.tag}>"
                    continue
                if after is not None:
                    buffered.append(after)
                buffered.append(nxt)
            elif isinstance(nxt, CloseEvent):
                yield f"</{nxt.tag}>"
                continue
            elif nxt is not None:
                buffered.append(nxt)
            depth += 1
        elif isinstance(event, ValueEvent):
            yield "\n"
            yield indent * depth
            yield escape_text(event.text)
        elif isinstance(event, CloseEvent):
            depth -= 1
            yield "\n"
            yield indent * depth
            yield f"</{event.tag}>"
    yield "\n"


def write_string(events: Iterable[Event], *, indent: str | None = None) -> str:
    """Serialize ``events`` to a single string.

    The compact form is built with an explicit loop (the applet calls
    this once per released output batch, usually with a handful of
    events -- generator dispatch would double the per-event cost).
    """
    if indent is not None:
        return "".join(write_events(events, indent=indent))
    parts: list[str] = []
    append = parts.append
    for event in events:
        cls = type(event)
        if cls is OpenEvent:
            append(_open_tag_text(event))
        elif cls is ValueEvent:
            append(escape_text(event.text))
        elif cls is CloseEvent:
            append(f"</{event.tag}>")
        else:
            append("".join(_write_compact((event,))))
    return "".join(parts)
