"""Text escaping for the XML subset used throughout the system.

Only the five predefined XML entities are supported; documents produced
by the workload generators and accepted by the parser stay within this
subset.
"""

from __future__ import annotations

_ESCAPE_TEXT = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ESCAPE_ATTR = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&apos;",
}

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(text: str) -> str:
    """Escape ``text`` for use as element content."""
    return "".join(_ESCAPE_TEXT.get(ch, ch) for ch in text)


def escape_attribute(text: str) -> str:
    """Escape ``text`` for use inside a double-quoted attribute value."""
    return "".join(_ESCAPE_ATTR.get(ch, ch) for ch in text)


def resolve_entity(name: str) -> str | None:
    """Return the replacement for entity ``name`` or ``None`` if unknown.

    Character references (``#xNN`` / ``#NN``) are resolved numerically.
    """
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            return None
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            return None
    return _ENTITIES.get(name)
