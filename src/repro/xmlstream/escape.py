"""Text escaping for the XML subset used throughout the system.

Only the five predefined XML entities are supported; documents produced
by the workload generators and accepted by the parser stay within this
subset.

Escaping runs through :meth:`str.translate` with precomputed tables --
one C-level pass over the string -- behind an even cheaper membership
probe that returns the input unchanged (no copy) when nothing needs
escaping, which is the overwhelmingly common case for document text.
"""

from __future__ import annotations

_ESCAPE_TEXT = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}

_ESCAPE_ATTR = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
    '"': "&quot;",
    "'": "&apos;",
}

#: ``str.translate`` tables (codepoint -> replacement string).
_TEXT_TABLE = {ord(ch): repl for ch, repl in _ESCAPE_TEXT.items()}
_ATTR_TABLE = {ord(ch): repl for ch, repl in _ESCAPE_ATTR.items()}

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(text: str) -> str:
    """Escape ``text`` for use as element content."""
    if "&" not in text and "<" not in text and ">" not in text:
        return text
    return text.translate(_TEXT_TABLE)


def escape_attribute(text: str) -> str:
    """Escape ``text`` for use inside a double-quoted attribute value."""
    if (
        "&" not in text
        and "<" not in text
        and ">" not in text
        and '"' not in text
        and "'" not in text
    ):
        return text
    return text.translate(_ATTR_TABLE)


def resolve_entity(name: str) -> str | None:
    """Return the replacement for entity ``name`` or ``None`` if unknown.

    Character references (``#xNN`` / ``#NN``) are resolved numerically.
    """
    if name.startswith("#x") or name.startswith("#X"):
        try:
            return chr(int(name[2:], 16))
        except ValueError:
            return None
    if name.startswith("#"):
        try:
            return chr(int(name[1:]))
        except ValueError:
            return None
    return _ENTITIES.get(name)
