"""A small in-memory XML tree.

The tree model is used on the *untrusted* sides of the architecture only
-- the workload generators build documents with it and the test suite's
reference oracle evaluates access control on it.  The simulated smart
card never constructs a tree: its whole point is streaming evaluation in
bounded memory.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.xmlstream.events import CloseEvent, Event, OpenEvent, ValueEvent


class Element:
    """An XML element with attributes and ordered children.

    Children are either :class:`Element` instances or plain strings
    (text nodes).
    """

    __slots__ = ("tag", "attributes", "children", "parent")

    def __init__(
        self,
        tag: str,
        attributes: dict[str, str] | None = None,
        parent: "Element | None" = None,
    ) -> None:
        self.tag = tag
        self.attributes: dict[str, str] = dict(attributes or {})
        self.children: list[Element | str] = []
        self.parent = parent

    # -- construction -------------------------------------------------

    def child(self, tag: str, text: str | None = None, **attributes: str) -> "Element":
        """Append and return a new child element (builder style)."""
        node = Element(tag, attributes, parent=self)
        self.children.append(node)
        if text is not None:
            node.children.append(text)
        return node

    def add_text(self, text: str) -> "Element":
        """Append a text node and return self."""
        self.children.append(text)
        return self

    # -- navigation ---------------------------------------------------

    @property
    def element_children(self) -> list["Element"]:
        """Child elements only, in document order."""
        return [c for c in self.children if isinstance(c, Element)]

    @property
    def text(self) -> str:
        """Concatenation of the direct text children."""
        return "".join(c for c in self.children if isinstance(c, str))

    def iter(self) -> Iterator["Element"]:
        """Iterate over this element and all descendants, document order."""
        yield self
        for child in self.children:
            if isinstance(child, Element):
                yield from child.iter()

    def ancestors(self) -> Iterator["Element"]:
        """Iterate over ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def path(self) -> tuple[str, ...]:
        """Absolute tag path from the root to this element."""
        tags = [self.tag]
        tags.extend(a.tag for a in self.ancestors())
        return tuple(reversed(tags))

    def depth(self) -> int:
        """Depth of this element (the root has depth 1)."""
        return sum(1 for _ in self.ancestors()) + 1

    def find_all(self, tag: str) -> list["Element"]:
        """All descendants (excluding self) with the given tag."""
        return [node for node in self.iter() if node is not self and node.tag == tag]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Element({self.tag!r}, children={len(self.children)})"


def tree_to_events(root: Element) -> Iterator[Event]:
    """Serialize a tree to the event stream the card would consume."""
    yield OpenEvent(root.tag, tuple(root.attributes.items()))
    for child in root.children:
        if isinstance(child, Element):
            yield from tree_to_events(child)
        else:
            if child:
                yield ValueEvent(child)
    yield CloseEvent(root.tag)


def events_to_tree(events: Iterable[Event]) -> Element:
    """Build a tree from a well-formed event stream."""
    root: Element | None = None
    current: Element | None = None
    for event in events:
        if isinstance(event, OpenEvent):
            node = Element(event.tag, dict(event.attributes), parent=current)
            if current is None:
                if root is not None:
                    raise ValueError("multiple root elements in stream")
                root = node
            else:
                current.children.append(node)
            current = node
        elif isinstance(event, ValueEvent):
            if current is None:
                raise ValueError("text outside the root element")
            current.children.append(event.text)
        elif isinstance(event, CloseEvent):
            if current is None or current.tag != event.tag:
                raise ValueError(f"unbalanced close tag </{event.tag}>")
            current = current.parent
    if root is None or current is not None:
        raise ValueError("incomplete event stream")
    return root


def parse_tree(text: str) -> Element:
    """Parse XML text directly into a tree."""
    from repro.xmlstream.parser import parse_events

    return events_to_tree(parse_events(text))


def tree_size(root: Element) -> int:
    """Number of element nodes in the tree."""
    return sum(1 for _ in root.iter())
