"""Streaming XML substrate.

The smart-card engine of the paper consumes XML as a stream of SAX-like
events (``open``, ``value``, ``close``) because the Secure Operating
Environment cannot materialize a DOM.  This package provides:

* :mod:`repro.xmlstream.events` -- the event model,
* :mod:`repro.xmlstream.parser` -- an incremental event parser,
* :mod:`repro.xmlstream.writer` -- the inverse serializer,
* :mod:`repro.xmlstream.tree`   -- a small tree model used by generators
  and by the *reference* (non-streaming) access-control oracle; the tree
  is never used inside the simulated card.
"""

from repro.xmlstream.events import (
    CloseEvent,
    Event,
    OpenEvent,
    ValueEvent,
    events_to_paths,
    validate_event_stream,
)
from repro.xmlstream.parser import XMLSyntaxError, parse_events, parse_string
from repro.xmlstream.tree import Element, parse_tree, tree_to_events
from repro.xmlstream.writer import write_events, write_string

__all__ = [
    "CloseEvent",
    "Element",
    "Event",
    "OpenEvent",
    "ValueEvent",
    "XMLSyntaxError",
    "events_to_paths",
    "parse_events",
    "parse_string",
    "parse_tree",
    "tree_to_events",
    "validate_event_stream",
    "write_events",
    "write_string",
]
