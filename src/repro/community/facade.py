"""The :class:`Community` facade and its :class:`Member` /
:class:`Document` handles.

One ``Community`` owns the shared infrastructure the paper's scenarios
always wire by hand -- a simulated PKI, an untrusted store behind a
:class:`~repro.dsp.server.DSPServer`, one simulated clock and one
compiled-policy :class:`~repro.core.compiled.PolicyRegistry` -- and
hands out object handles instead:

* ``community.enroll(name)`` -> :class:`Member` (a PKI identity plus a
  lazily created publisher endpoint and smart-card terminal);
* ``member.publish(xml, rules, to=[...])`` -> :class:`Document` (an
  owner-side handle whose ``update_rules``/``grant``/``revoke``
  delegate to the paper's re-seal semantics: policy changes never
  re-encrypt the document or redistribute keys);
* ``member.open(document)`` -> :class:`~repro.community.session.Session`
  (a context manager running pull sessions through the member's card);
* ``community.channel(document)`` ->
  :class:`~repro.community.channels.Channel` (the push/carousel path
  under the same handle model).

The facade also owns the **deployment topology** (the DSP is an
untrusted *service*, not a Python object):

* ``Community()`` -- in-process and volatile, the historical default;
* ``Community(store_path="dsp.db")`` -- the DSP's disk is a durable
  SQLite file; ``Community.open(path)`` reopens it in a fresh process
  with every document, rule version and wrapped key intact;
* ``community.serve()`` -- expose the DSP over TCP, by default through
  the event-loop :class:`~repro.dsp.reactor.ReactorDSPServer` with
  admission control (``server="threaded"`` keeps the
  thread-per-connection baseline);
  ``Community.attach(RemoteDSP.connect(addr))`` builds a reader-side
  community in another process whose terminals pull from it.

Because every member's card shares the community's policy registry,
repeated sessions -- and whole subscriber fleets on the same tier --
compile each distinct sub-policy exactly once.

Failures surface as the :mod:`repro.errors` taxonomy, never as bare
``KeyError``/``ValueError``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from repro.cache.viewcache import ViewCache
from repro.community.channels import Channel
from repro.community.session import Session
from repro.core.compiled import PolicyRegistry
from repro.core.delivery import ViewMode
from repro.core.rules import AccessRule, RuleSet
from repro.crypto.container import DocumentContainer
from repro.crypto.pki import SimulatedPKI
from repro.dsp.backends import SQLiteBackend, StoreBackend
from repro.dsp.client import DSPClient
from repro.dsp.reactor import AdmissionPolicy, ReactorDSPServer
from repro.dsp.remote import DSPSocketServer
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.errors import PolicyError, UnknownDocument
from repro.feeds.feed import Feed
from repro.feeds.subscriber import FeedSubscriberHandle
from repro.feeds.tiers import TierSpec
from repro.skipindex.encoder import IndexMode
from repro.smartcard.resources import LinkModel, NetworkModel, SimClock
from repro.terminal.api import Publisher, PublishReceipt
from repro.terminal.session import Terminal
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.events import Event
from repro.xmlstream.parser import parse_string

#: What ``member.publish`` accepts as the document: XML text or an
#: already-parsed event stream.
DocumentSource = Union[str, Iterable[Event]]

#: What ``member.publish`` accepts as one rule: a parsed
#: :class:`AccessRule` or a terse ``(sign, subject, xpath)`` triple.
RuleLike = Union[AccessRule, "tuple[str, str, str]"]

#: What ``member.publish`` accepts as the policy.
RulesLike = Union[RuleSet, Iterable[RuleLike]]

#: The ``meta`` key the deployment manifest is stored under in a
#: durable backend.
_MANIFEST_KEY = "community:manifest"


def _as_events(source: DocumentSource) -> list[Event]:
    if isinstance(source, str):
        return parse_string(source)
    return list(source)


def _as_rules(rules: RulesLike) -> RuleSet:
    if isinstance(rules, RuleSet):
        return rules
    parsed: list[AccessRule] = []
    for rule in rules:
        if isinstance(rule, AccessRule):
            parsed.append(rule)
        else:
            sign, subject, xpath = rule
            parsed.append(AccessRule.parse(sign, subject, xpath))
    return RuleSet(parsed)


class Community:
    """A community of members sharing documents through one DSP.

    The facade owns the infrastructure every scenario needs exactly
    once: ``pki``, ``store``, ``dsp``, ``clock`` and the shared
    compiled-policy ``registry``.  All of them remain reachable as
    attributes, so code that needs the lower layers (benchmarks,
    tamper injection) can still touch them directly.

    Topology knobs: ``store_path`` (or a prebuilt ``backend``) makes
    the DSP's disk a durable SQLite file; ``client`` *attaches* the
    community to a DSP served elsewhere, in which case there is no
    local ``store`` and ``dsp`` is the given
    :class:`~repro.dsp.client.DSPClient`.  Attached communities read
    (``adopt`` + ``member.open``); publishing needs the process that
    owns the store.
    """

    def __init__(
        self,
        *,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
        store: DSPStore | None = None,
        registry: PolicyRegistry | None = None,
        store_path: "str | Path | None" = None,
        backend: StoreBackend | None = None,
        client: DSPClient | None = None,
        view_cache: ViewCache | None = None,
    ) -> None:
        given = [
            name
            for name, value in (
                ("store", store),
                ("store_path", store_path),
                ("backend", backend),
                ("client", client),
            )
            if value is not None
        ]
        if len(given) > 1:
            raise PolicyError(
                "pass at most one of store/store_path/backend/client "
                f"(got {', '.join(given)})"
            )
        self.store: DSPStore | None
        self.dsp: DSPClient
        if client is not None:
            if network is not None:
                raise PolicyError(
                    "network= models the served DSP's transport and is "
                    "ignored by an attached client; configure it on the "
                    "serving community"
                )
            self.store = None
            self.dsp = client
            self.clock = clock if clock is not None else client.clock
        else:
            if backend is not None:
                store = DSPStore(backend)
            elif store_path is not None:
                store = DSPStore(SQLiteBackend(store_path))
            elif store is None:
                store = DSPStore()
            self.store = store
            self.clock = clock if clock is not None else SimClock()
            self.dsp = DSPServer(store, network=network, clock=self.clock)
        self.pki = SimulatedPKI()
        #: The terminal-side authorized-view cache, OFF by default --
        #: warm sessions then cost one ``GET_META`` probe instead of a
        #: full pull, but the simulated clocks gain that probe, so the
        #: bit-for-bit parity baselines keep it disabled.  Enable with
        #: ``Community(view_cache=ViewCache())`` or
        #: :meth:`enable_view_cache`.
        self.view_cache = view_cache
        self.registry = registry if registry is not None else PolicyRegistry()
        self._members: dict[str, Member] = {}
        self._documents: dict[str, Document] = {}
        self._channels: dict[str, Channel] = {}
        self._feeds: dict[str, Feed] = {}
        self._doc_sequence = 0
        self._servers: list[ReactorDSPServer | DSPSocketServer] = []
        self._restoring = False

    # -- topology ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: "str | Path",
        *,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
        registry: PolicyRegistry | None = None,
    ) -> "Community":
        """Reopen a community persisted to a SQLite store file.

        Everything the DSP held -- documents, rule versions, wrapped
        keys -- is intact, and the deployment manifest (member names
        and card configs, document owners and recipients) is restored,
        so reader sessions work immediately: the simulated PKI derives
        each principal's key pair deterministically from its name, so
        re-enrolled members unwrap their stored wrapped keys.

        Owner *plaintext* state (document events, rules, the publisher
        secrets) is deliberately not persisted at the untrusted store;
        restored :class:`Document` handles are **sealed** -- pull
        sessions and broadcasts work, ``update_rules``/``grant``/
        ``preview`` need the original owner process.
        """
        if not Path(path).exists():
            raise PolicyError(
                f"no community store at {path} (Community.open reopens an "
                "existing file; pass store_path= to create one)"
            )
        community = cls(
            store_path=path, clock=clock, network=network, registry=registry
        )
        meta = community._meta_backend()
        raw = meta.get_meta(_MANIFEST_KEY) if meta is not None else None
        if raw is not None:
            manifest = json.loads(raw)
            community._restoring = True
            try:
                for name, config in manifest.get("members", {}).items():
                    community.enroll(
                        name,
                        ram_quota=config.get("ram_quota"),
                        strict_memory=bool(config.get("strict_memory", True)),
                    )
                for doc_id, info in manifest.get("documents", {}).items():
                    community.adopt(doc_id, info["owner"])
                    community._documents[doc_id].recipients = list(
                        info.get("recipients", [])
                    )
                for name, feed_info in manifest.get("feeds", {}).items():
                    # Tier *rules* are never in the manifest (policy is
                    # sealed at the DSP, exactly like document rules);
                    # only names and quotas -- shapes the DSP observes
                    # from the broadcast anyway -- are restored, and the
                    # feed comes back sealed: catch-up works, owner
                    # operations need the publishing process.
                    community._feeds[name] = Feed(
                        community,
                        name,
                        community.member(feed_info["owner"]),
                        [
                            TierSpec(
                                name=tier["name"], quota=tier.get("quota")
                            )
                            for tier in feed_info.get("tiers", [])
                        ],
                        sealed=True,
                        doc_ids=list(feed_info.get("docs", [])),
                    )
                community._doc_sequence = int(
                    manifest.get("doc_sequence", 0)
                )
            finally:
                community._restoring = False
        return community

    @classmethod
    def attach(
        cls,
        client: DSPClient,
        *,
        registry: PolicyRegistry | None = None,
    ) -> "Community":
        """A reader-side community over a DSP served elsewhere.

        ``client`` is typically
        ``RemoteDSP.connect(server.address)``.  Members enrolled here
        derive the same deterministic key pairs as in the serving
        process, so a member the owner granted a key to can ``adopt``
        the document and open pull sessions from this process.  The
        client stays caller-owned: closing the community does not
        close it.
        """
        return cls(client=client, registry=registry)

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        server: str = "reactor",
        loops: int = 1,
        admission: AdmissionPolicy | None = None,
        idle_timeout: float | None = None,
    ) -> "ReactorDSPServer | DSPSocketServer":
        """Expose this community's DSP over TCP.

        ``server`` picks the serving architecture: ``"reactor"`` (the
        default) is the non-blocking event-loop
        :class:`~repro.dsp.reactor.ReactorDSPServer` -- buffered
        writes so slow readers never stall the fleet, ``loops`` loop
        workers, ``admission`` capacity limits rejecting over-capacity
        requests with typed :class:`~repro.errors.ResourceExhausted`
        frames; ``"threaded"`` is the thread-per-connection
        :class:`~repro.dsp.remote.DSPSocketServer` kept as the
        comparison baseline.  Either way ``server.address`` is the
        bound endpoint (``port=0`` picks an ephemeral port),
        ``idle_timeout`` reaps abandoned connections, many remote
        terminals can pull concurrently, and the server is also closed
        by :meth:`close`.
        """
        dsp = self.dsp
        if not isinstance(dsp, DSPServer):
            raise PolicyError(
                "this community is attached to a remote DSP; only the "
                "process that owns the store can serve it"
            )
        endpoint: ReactorDSPServer | DSPSocketServer
        if server == "reactor":
            endpoint = ReactorDSPServer(
                dsp,
                host=host,
                port=port,
                loops=loops,
                admission=admission,
                idle_timeout=idle_timeout,
            )
        elif server == "threaded":
            if loops != 1 or admission is not None:
                raise PolicyError(
                    "loops= and admission= are reactor features; the "
                    "threaded baseline takes only idle_timeout="
                )
            endpoint = DSPSocketServer(
                dsp, host=host, port=port, idle_timeout=idle_timeout
            )
        else:
            raise PolicyError(
                f"unknown server architecture {server!r} "
                "(choose 'reactor' or 'threaded')"
            )
        self._servers.append(endpoint)
        return endpoint

    def enable_view_cache(
        self,
        cache: ViewCache | None = None,
        *,
        max_entries: int = 256,
        max_bytes: int = 16 << 20,
    ) -> ViewCache:
        """Turn on the terminal-side authorized-view cache.

        Every subsequent ``session.query`` starts with one tiny
        ``GET_META`` freshness probe: unchanged documents replay their
        cached view (zero chunk requests, zero card time), a version or
        rules bump falls through to a live pull, and a revoked subject
        is refused with :class:`~repro.errors.KeyNotGranted` -- never
        served from cache or from the card's retained copy.  Returns
        the active cache (its ``stats`` carry hit/miss/invalidation
        counters).
        """
        if self.view_cache is None:
            self.view_cache = (
                cache
                if cache is not None
                else ViewCache(max_entries=max_entries, max_bytes=max_bytes)
            )
        elif cache is not None and cache is not self.view_cache:
            raise PolicyError(
                "a view cache is already enabled on this community"
            )
        return self.view_cache

    def _invalidate_views(self, doc_id: str) -> None:
        """Owner-side eviction on republish / rules change.

        Defense in depth: the freshness probe would catch the staleness
        anyway, but local mutations may as well free the bytes now.
        """
        if self.view_cache is not None:
            self.view_cache.invalidate_document(doc_id)

    def _invalidate_subject_views(self, doc_id: str, subject: str) -> None:
        if self.view_cache is not None:
            self.view_cache.invalidate_subject(doc_id, subject)

    def close(self) -> None:
        """Shut down served endpoints and the durable store (idempotent)."""
        for server in self._servers:
            server.close()
        self._servers.clear()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "Community":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_store(self) -> DSPStore:
        if self.store is None:
            raise PolicyError(
                "this community is attached to a remote DSP; the store "
                "lives in the serving process"
            )
        return self.store

    def _meta_backend(self) -> SQLiteBackend | None:
        if self.store is None:
            return None
        backend = self.store.backend
        return backend if isinstance(backend, SQLiteBackend) else None

    def _save_manifest(self) -> None:
        """Persist the deployment manifest next to a durable store.

        Only names and grant lists -- data the untrusted DSP already
        learns from uploads and wrapped-key recipients -- never key
        material or plaintext.
        """
        if self._restoring:
            return
        meta = self._meta_backend()
        if meta is None:
            return
        manifest = {
            "members": {
                name: {
                    "ram_quota": member._card_config[0],
                    "strict_memory": member._card_config[1],
                }
                for name, member in self._members.items()
            },
            "documents": {
                doc_id: {
                    "owner": document.owner.name,
                    "recipients": list(document.recipients),
                }
                for doc_id, document in self._documents.items()
            },
            "feeds": {
                name: {
                    "owner": feed.owner.name,
                    "tiers": [
                        {"name": spec.name, "quota": spec.quota}
                        for spec in feed.tiers
                    ],
                    "docs": [doc.doc_id for doc in feed.documents],
                }
                for name, feed in self._feeds.items()
            },
            "doc_sequence": self._doc_sequence,
        }
        meta.put_meta(_MANIFEST_KEY, json.dumps(manifest, sort_keys=True))

    # -- membership -------------------------------------------------------

    def enroll(
        self,
        name: str,
        *,
        ram_quota: int | None = 1024,
        strict_memory: bool = True,
        link: LinkModel | None = None,
    ) -> "Member":
        """Enroll a principal (idempotent) and return its handle.

        The card options pin the member's simulated smart card; they
        must match on a repeated enroll of the same name (enrolling is
        not key rotation -- rotate through ``community.pki`` directly
        if that is what you need).
        """
        existing = self._members.get(name)
        card_config = (ram_quota, strict_memory, link)
        if existing is not None:
            if existing._card_config != card_config:
                raise PolicyError(
                    f"member {name!r} is already enrolled with a "
                    "different card configuration",
                    subject=name,
                )
            return existing
        self.pki.enroll(name)
        member = Member(self, name, card_config)
        self._members[name] = member
        self._save_manifest()
        return member

    def member(self, name: str) -> "Member":
        """The handle of an enrolled member."""
        member = self._members.get(name)
        if member is None:
            raise PolicyError(
                f"{name!r} is not enrolled in this community", subject=name
            )
        return member

    @property
    def members(self) -> "list[Member]":
        return list(self._members.values())

    # -- documents --------------------------------------------------------

    def document(self, doc_id: str) -> "Document":
        """The handle of a published document."""
        document = self._documents.get(doc_id)
        if document is None:
            raise UnknownDocument(
                f"no document {doc_id!r} was published in this community",
                doc_id=doc_id,
            )
        return document

    @property
    def documents(self) -> "list[Document]":
        return list(self._documents.values())

    def adopt(self, doc_id: str, owner: "Member | str") -> "Document":
        """A sealed handle for a document published elsewhere.

        Used by attached communities (the document lives at the served
        DSP) and by :meth:`open` while restoring the manifest.  The
        handle supports the reader side -- ``member.open`` sessions,
        broadcasts from the stored container -- but carries no owner
        plaintext: ``update_rules``/``grant``/``preview`` raise
        :class:`~repro.errors.PolicyError` until the owning process
        does them.  Enrolls ``owner`` on demand (deterministic PKI
        keys make that match the serving process).
        """
        existing = self._documents.get(doc_id)
        if isinstance(owner, Member):
            owner_member = owner
        else:
            # An already-enrolled owner keeps its card config; enroll
            # with defaults only a principal this community never saw.
            member = self._members.get(owner)
            owner_member = member if member is not None else self.enroll(owner)
        if existing is not None:
            if existing.owner is not owner_member:
                raise PolicyError(
                    f"document {doc_id!r} belongs to "
                    f"{existing.owner.name!r}, not {owner_member.name!r}",
                    doc_id=doc_id,
                    subject=owner_member.name,
                )
            return existing
        document = Document(owner_member, doc_id, None, None, [], None)
        self._documents[doc_id] = document
        self._save_manifest()
        return document

    def _next_doc_id(self, owner: str) -> str:
        self._doc_sequence += 1
        return f"{owner}-doc-{self._doc_sequence}"

    # -- dissemination ----------------------------------------------------

    def channel(self, document: "Document | str") -> Channel:
        """The broadcast channel handle for one document (cached)."""
        if isinstance(document, str):
            document = self.document(document)
        channel = self._channels.get(document.doc_id)
        if channel is None:
            channel = Channel(self, document)
            self._channels[document.doc_id] = channel
        return channel

    def feed(
        self,
        name: str,
        *,
        owner: "Member | str | None" = None,
        tiers: Sequence[TierSpec] | None = None,
    ) -> Feed:
        """Create or fetch the tiered feed handle named ``name``.

        With ``owner=`` and ``tiers=`` it creates a new feed (group-key
        hierarchy written to the DSP, one lane per tier); without them
        it returns the existing handle.  A feed restored by
        :meth:`open` comes back sealed -- ``catch_up`` works, owner
        operations need the publishing process.
        """
        existing = self._feeds.get(name)
        if existing is not None:
            if owner is not None or tiers is not None:
                raise PolicyError(
                    f"feed {name!r} already exists; call "
                    f"community.feed({name!r}) without owner/tiers for "
                    "its handle",
                    subject=existing.owner.name,
                )
            return existing
        if owner is None or tiers is None:
            raise PolicyError(
                f"no feed {name!r} in this community "
                "(pass owner= and tiers= to create one)"
            )
        owner_member = owner if isinstance(owner, Member) else self.member(owner)
        feed = Feed(self, name, owner_member, list(tiers))
        self._feeds[name] = feed
        self._save_manifest()
        return feed

    @property
    def feeds(self) -> "list[Feed]":
        return list(self._feeds.values())


class Member:
    """One enrolled principal: an identity, a publisher, a card.

    Handles are cheap; the underlying
    :class:`~repro.terminal.api.Publisher` and
    :class:`~repro.terminal.session.Terminal` (which allocates the
    simulated card) are created on first use and then persist, so a
    member keeps one card across sessions -- version registers and
    unlocked documents behave like the paper's personalized card.
    """

    def __init__(
        self,
        community: Community,
        name: str,
        card_config: "tuple[int | None, bool, LinkModel | None]",
    ) -> None:
        self.community = community
        self.name = name
        self._card_config = card_config
        self._publisher: Publisher | None = None
        self._terminal: Terminal | None = None

    def __repr__(self) -> str:
        return f"Member({self.name!r})"

    @property
    def publisher(self) -> Publisher:
        """The member's owner-side publishing endpoint (lazy)."""
        if self._publisher is None:
            self._publisher = Publisher(
                self.name,
                self.community._require_store(),
                self.community.pki,
                _warn=False,
            )
        return self._publisher

    @property
    def terminal(self) -> Terminal:
        """The member's terminal with its smart card (lazy)."""
        if self._terminal is None:
            ram_quota, strict_memory, link = self._card_config
            self._terminal = Terminal(
                self.name,
                self.community.dsp,
                self.community.pki,
                link=link,
                ram_quota=ram_quota,
                strict_memory=strict_memory,
                registry=self.community.registry,
                _warn=False,
            )
        return self._terminal

    # -- owner side -------------------------------------------------------

    def publish(
        self,
        source: DocumentSource,
        rules: RulesLike,
        to: "Sequence[Member | str]" = (),
        *,
        doc_id: str | None = None,
        index_mode: IndexMode = IndexMode.RECURSIVE,
        chunk_size: int = 96,
    ) -> "Document":
        """Seal and upload a document; returns its handle.

        ``source`` is XML text or an event stream; ``rules`` a
        :class:`RuleSet`, parsed rules, or terse ``(sign, subject,
        xpath)`` triples; ``to`` the members granted the document
        secret.  Publishing the same ``doc_id`` again re-seals a new
        version under the same handle (owner only).
        """
        community = self.community
        recipients = [
            m.name if isinstance(m, Member) else community.member(m).name
            for m in to
        ]
        if doc_id is None:
            doc_id = community._next_doc_id(self.name)
        existing = community._documents.get(doc_id)
        if existing is not None and existing.owner is not self:
            raise PolicyError(
                f"document {doc_id!r} belongs to "
                f"{existing.owner.name!r}, not {self.name!r}",
                doc_id=doc_id,
                subject=self.name,
            )
        events = _as_events(source)
        ruleset = _as_rules(rules)
        receipt = self.publisher.publish(
            doc_id,
            events,
            ruleset,
            recipients,
            index_mode=index_mode,
            chunk_size=chunk_size,
        )
        if existing is not None:
            existing._update(events, ruleset, recipients, receipt)
            community._invalidate_views(doc_id)
            community._save_manifest()
            return existing
        document = Document(self, doc_id, events, ruleset, recipients, receipt)
        community._documents[doc_id] = document
        community._save_manifest()
        return document

    # -- reader side ------------------------------------------------------

    def subscribe(
        self,
        feed: "Feed | str",
        tier: str,
        *,
        view_mode: ViewMode = ViewMode.SKELETON,
        transfer: TransferPolicy | None = None,
    ) -> FeedSubscriberHandle:
        """Join a tier of a feed (``community.feed(...)`` sugar).

        One PKI wrap now, zero per-cycle cost after: the returned
        handle accumulates this member's authorized views as the feed
        broadcasts.
        """
        if isinstance(feed, str):
            feed = self.community.feed(feed)
        return feed.subscribe(
            self, tier, view_mode=view_mode, transfer=transfer
        )

    def open(
        self,
        document: "Document | str",
        *,
        transfer: TransferPolicy | None = None,
        groups: frozenset[str] = frozenset(),
    ) -> Session:
        """Open a pull session on a document (a context manager).

        Unlocks the document on the member's card (fetching and
        unwrapping the wrapped secret through the PKI) and returns a
        :class:`Session` whose ``query`` hands back incremental
        :class:`~repro.community.session.ViewStream` views.  ``transfer``
        overrides the chunk transport plan for this session only;
        ``groups`` carries the member's roles.
        """
        if isinstance(document, str):
            document = self.community.document(document)
        return Session(self, document, transfer=transfer, groups=groups)


class Document:
    """Owner-side handle of one published document.

    Mutating operations delegate to the paper's re-seal semantics:
    ``update_rules`` re-seals only the rule records (zero document
    bytes, zero keys), ``grant`` wraps the existing secret for one more
    member, ``revoke`` removes a member's wrapped key from the DSP.
    The handle retains the owner's plaintext events and current rules
    -- the owner has them by definition -- so dissemination previews
    can run without touching ciphertext.

    A handle restored by ``Community.open`` or created by
    ``Community.adopt`` is **sealed**: ``events``/``rules``/``receipt``
    are ``None`` (the owner's plaintext is never persisted at the
    untrusted store), so only the reader-side operations work.
    """

    def __init__(
        self,
        owner: Member,
        doc_id: str,
        events: "list[Event] | None",
        rules: RuleSet | None,
        recipients: list[str],
        receipt: PublishReceipt | None,
    ) -> None:
        self.owner = owner
        self.doc_id = doc_id
        self.events = events
        self.rules = rules
        self.recipients = list(recipients)
        self.receipt = receipt

    def __repr__(self) -> str:
        return f"Document({self.doc_id!r}, owner={self.owner.name!r})"

    @property
    def sealed(self) -> bool:
        """Whether this handle lacks the owner's plaintext state."""
        return self.events is None

    def _update(
        self,
        events: list[Event],
        rules: RuleSet,
        recipients: list[str],
        receipt: PublishReceipt,
    ) -> None:
        self.events = events
        self.rules = rules
        for recipient in recipients:
            if recipient not in self.recipients:
                self.recipients.append(recipient)
        self.receipt = receipt

    @property
    def container(self) -> DocumentContainer:
        """The sealed container as stored at the DSP."""
        return (
            self.owner.community._require_store().get(self.doc_id).container
        )

    def update_rules(self, rules: RulesLike) -> PublishReceipt:
        """Change the policy; re-seals ONLY the tiny rule records."""
        ruleset = _as_rules(rules)
        receipt = self.owner.publisher.update_rules(self.doc_id, ruleset)
        self.rules = ruleset
        self.receipt = receipt
        self.owner.community._invalidate_views(self.doc_id)
        return receipt

    def grant(self, member: "Member | str") -> None:
        """Wrap the document secret for one more member."""
        name = member.name if isinstance(member, Member) else member
        self.owner.community.member(name)  # must be enrolled
        self.owner.publisher.grant_access(self.doc_id, name)
        if name not in self.recipients:
            self.recipients.append(name)
        self.owner.community._save_manifest()

    def revoke(self, member: "Member | str") -> bool:
        """Remove a member's wrapped key from the DSP.

        Returns whether a key was removed.  A card that already
        unlocked the document keeps its provisioned copy, so durable
        revocation pairs this with an :meth:`update_rules` denying the
        member -- exactly the paper's dissociation of rights from
        encryption.
        """
        name = member.name if isinstance(member, Member) else member
        removed = self.owner.community._require_store().remove_wrapped_key(
            self.doc_id, name
        )
        if name in self.recipients:
            self.recipients.remove(name)
        self.owner.community._invalidate_subject_views(self.doc_id, name)
        self.owner.community._save_manifest()
        return removed
