"""The :class:`Community` facade and its :class:`Member` /
:class:`Document` handles.

One ``Community`` owns the shared infrastructure the paper's scenarios
always wire by hand -- a simulated PKI, an untrusted store behind a
:class:`~repro.dsp.server.DSPServer`, one simulated clock and one
compiled-policy :class:`~repro.core.compiled.PolicyRegistry` -- and
hands out object handles instead:

* ``community.enroll(name)`` -> :class:`Member` (a PKI identity plus a
  lazily created publisher endpoint and smart-card terminal);
* ``member.publish(xml, rules, to=[...])`` -> :class:`Document` (an
  owner-side handle whose ``update_rules``/``grant``/``revoke``
  delegate to the paper's re-seal semantics: policy changes never
  re-encrypt the document or redistribute keys);
* ``member.open(document)`` -> :class:`~repro.community.session.Session`
  (a context manager running pull sessions through the member's card);
* ``community.channel(document)`` ->
  :class:`~repro.community.channels.Channel` (the push/carousel path
  under the same handle model).

Because every member's card shares the community's policy registry,
repeated sessions -- and whole subscriber fleets on the same tier --
compile each distinct sub-policy exactly once.

Failures surface as the :mod:`repro.errors` taxonomy, never as bare
``KeyError``/``ValueError``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.community.channels import Channel
from repro.community.session import Session
from repro.core.compiled import PolicyRegistry
from repro.core.rules import AccessRule, RuleSet
from repro.crypto.container import DocumentContainer
from repro.crypto.pki import SimulatedPKI
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.errors import PolicyError, UnknownDocument
from repro.skipindex.encoder import IndexMode
from repro.smartcard.resources import LinkModel, NetworkModel, SimClock
from repro.terminal.api import Publisher, PublishReceipt
from repro.terminal.session import Terminal
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.events import Event
from repro.xmlstream.parser import parse_string

#: What ``member.publish`` accepts as the document: XML text or an
#: already-parsed event stream.
DocumentSource = Union[str, Iterable[Event]]

#: What ``member.publish`` accepts as one rule: a parsed
#: :class:`AccessRule` or a terse ``(sign, subject, xpath)`` triple.
RuleLike = Union[AccessRule, "tuple[str, str, str]"]

#: What ``member.publish`` accepts as the policy.
RulesLike = Union[RuleSet, Iterable[RuleLike]]


def _as_events(source: DocumentSource) -> list[Event]:
    if isinstance(source, str):
        return parse_string(source)
    return list(source)


def _as_rules(rules: RulesLike) -> RuleSet:
    if isinstance(rules, RuleSet):
        return rules
    parsed: list[AccessRule] = []
    for rule in rules:
        if isinstance(rule, AccessRule):
            parsed.append(rule)
        else:
            sign, subject, xpath = rule
            parsed.append(AccessRule.parse(sign, subject, xpath))
    return RuleSet(parsed)


class Community:
    """A community of members sharing documents through one DSP.

    The facade owns the infrastructure every scenario needs exactly
    once: ``pki``, ``store``, ``dsp``, ``clock`` and the shared
    compiled-policy ``registry``.  All of them remain reachable as
    attributes, so code that needs the lower layers (benchmarks,
    tamper injection) can still touch them directly.
    """

    def __init__(
        self,
        *,
        clock: SimClock | None = None,
        network: NetworkModel | None = None,
        store: DSPStore | None = None,
        registry: PolicyRegistry | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.store = store if store is not None else DSPStore()
        self.dsp = DSPServer(self.store, network=network, clock=self.clock)
        self.pki = SimulatedPKI()
        self.registry = registry if registry is not None else PolicyRegistry()
        self._members: dict[str, Member] = {}
        self._documents: dict[str, Document] = {}
        self._channels: dict[str, Channel] = {}
        self._doc_sequence = 0

    # -- membership -------------------------------------------------------

    def enroll(
        self,
        name: str,
        *,
        ram_quota: int | None = 1024,
        strict_memory: bool = True,
        link: LinkModel | None = None,
    ) -> "Member":
        """Enroll a principal (idempotent) and return its handle.

        The card options pin the member's simulated smart card; they
        must match on a repeated enroll of the same name (enrolling is
        not key rotation -- rotate through ``community.pki`` directly
        if that is what you need).
        """
        existing = self._members.get(name)
        card_config = (ram_quota, strict_memory, link)
        if existing is not None:
            if existing._card_config != card_config:
                raise PolicyError(
                    f"member {name!r} is already enrolled with a "
                    "different card configuration",
                    subject=name,
                )
            return existing
        self.pki.enroll(name)
        member = Member(self, name, card_config)
        self._members[name] = member
        return member

    def member(self, name: str) -> "Member":
        """The handle of an enrolled member."""
        member = self._members.get(name)
        if member is None:
            raise PolicyError(
                f"{name!r} is not enrolled in this community", subject=name
            )
        return member

    @property
    def members(self) -> "list[Member]":
        return list(self._members.values())

    # -- documents --------------------------------------------------------

    def document(self, doc_id: str) -> "Document":
        """The handle of a published document."""
        document = self._documents.get(doc_id)
        if document is None:
            raise UnknownDocument(
                f"no document {doc_id!r} was published in this community",
                doc_id=doc_id,
            )
        return document

    @property
    def documents(self) -> "list[Document]":
        return list(self._documents.values())

    def _next_doc_id(self, owner: str) -> str:
        self._doc_sequence += 1
        return f"{owner}-doc-{self._doc_sequence}"

    # -- dissemination ----------------------------------------------------

    def channel(self, document: "Document | str") -> Channel:
        """The broadcast channel handle for one document (cached)."""
        if isinstance(document, str):
            document = self.document(document)
        channel = self._channels.get(document.doc_id)
        if channel is None:
            channel = Channel(self, document)
            self._channels[document.doc_id] = channel
        return channel


class Member:
    """One enrolled principal: an identity, a publisher, a card.

    Handles are cheap; the underlying
    :class:`~repro.terminal.api.Publisher` and
    :class:`~repro.terminal.session.Terminal` (which allocates the
    simulated card) are created on first use and then persist, so a
    member keeps one card across sessions -- version registers and
    unlocked documents behave like the paper's personalized card.
    """

    def __init__(
        self,
        community: Community,
        name: str,
        card_config: "tuple[int | None, bool, LinkModel | None]",
    ) -> None:
        self.community = community
        self.name = name
        self._card_config = card_config
        self._publisher: Publisher | None = None
        self._terminal: Terminal | None = None

    def __repr__(self) -> str:
        return f"Member({self.name!r})"

    @property
    def publisher(self) -> Publisher:
        """The member's owner-side publishing endpoint (lazy)."""
        if self._publisher is None:
            self._publisher = Publisher(
                self.name,
                self.community.store,
                self.community.pki,
                _warn=False,
            )
        return self._publisher

    @property
    def terminal(self) -> Terminal:
        """The member's terminal with its smart card (lazy)."""
        if self._terminal is None:
            ram_quota, strict_memory, link = self._card_config
            self._terminal = Terminal(
                self.name,
                self.community.dsp,
                self.community.pki,
                link=link,
                ram_quota=ram_quota,
                strict_memory=strict_memory,
                registry=self.community.registry,
                _warn=False,
            )
        return self._terminal

    # -- owner side -------------------------------------------------------

    def publish(
        self,
        source: DocumentSource,
        rules: RulesLike,
        to: "Sequence[Member | str]" = (),
        *,
        doc_id: str | None = None,
        index_mode: IndexMode = IndexMode.RECURSIVE,
        chunk_size: int = 96,
    ) -> "Document":
        """Seal and upload a document; returns its handle.

        ``source`` is XML text or an event stream; ``rules`` a
        :class:`RuleSet`, parsed rules, or terse ``(sign, subject,
        xpath)`` triples; ``to`` the members granted the document
        secret.  Publishing the same ``doc_id`` again re-seals a new
        version under the same handle (owner only).
        """
        community = self.community
        recipients = [
            m.name if isinstance(m, Member) else community.member(m).name
            for m in to
        ]
        if doc_id is None:
            doc_id = community._next_doc_id(self.name)
        existing = community._documents.get(doc_id)
        if existing is not None and existing.owner is not self:
            raise PolicyError(
                f"document {doc_id!r} belongs to "
                f"{existing.owner.name!r}, not {self.name!r}",
                doc_id=doc_id,
                subject=self.name,
            )
        events = _as_events(source)
        ruleset = _as_rules(rules)
        receipt = self.publisher.publish(
            doc_id,
            events,
            ruleset,
            recipients,
            index_mode=index_mode,
            chunk_size=chunk_size,
        )
        if existing is not None:
            existing._update(events, ruleset, recipients, receipt)
            return existing
        document = Document(self, doc_id, events, ruleset, recipients, receipt)
        community._documents[doc_id] = document
        return document

    # -- reader side ------------------------------------------------------

    def open(
        self,
        document: "Document | str",
        *,
        transfer: TransferPolicy | None = None,
        groups: frozenset[str] = frozenset(),
    ) -> Session:
        """Open a pull session on a document (a context manager).

        Unlocks the document on the member's card (fetching and
        unwrapping the wrapped secret through the PKI) and returns a
        :class:`Session` whose ``query`` hands back incremental
        :class:`~repro.community.session.ViewStream` views.  ``transfer``
        overrides the chunk transport plan for this session only;
        ``groups`` carries the member's roles.
        """
        if isinstance(document, str):
            document = self.community.document(document)
        return Session(self, document, transfer=transfer, groups=groups)


class Document:
    """Owner-side handle of one published document.

    Mutating operations delegate to the paper's re-seal semantics:
    ``update_rules`` re-seals only the rule records (zero document
    bytes, zero keys), ``grant`` wraps the existing secret for one more
    member, ``revoke`` removes a member's wrapped key from the DSP.
    The handle retains the owner's plaintext events and current rules
    -- the owner has them by definition -- so dissemination previews
    can run without touching ciphertext.
    """

    def __init__(
        self,
        owner: Member,
        doc_id: str,
        events: list[Event],
        rules: RuleSet,
        recipients: list[str],
        receipt: PublishReceipt,
    ) -> None:
        self.owner = owner
        self.doc_id = doc_id
        self.events = events
        self.rules = rules
        self.recipients = list(recipients)
        self.receipt = receipt

    def __repr__(self) -> str:
        return f"Document({self.doc_id!r}, owner={self.owner.name!r})"

    def _update(
        self,
        events: list[Event],
        rules: RuleSet,
        recipients: list[str],
        receipt: PublishReceipt,
    ) -> None:
        self.events = events
        self.rules = rules
        for recipient in recipients:
            if recipient not in self.recipients:
                self.recipients.append(recipient)
        self.receipt = receipt

    @property
    def container(self) -> DocumentContainer:
        """The sealed container as stored at the DSP."""
        return self.owner.publisher.container(self.doc_id)

    def update_rules(self, rules: RulesLike) -> PublishReceipt:
        """Change the policy; re-seals ONLY the tiny rule records."""
        ruleset = _as_rules(rules)
        receipt = self.owner.publisher.update_rules(self.doc_id, ruleset)
        self.rules = ruleset
        self.receipt = receipt
        return receipt

    def grant(self, member: "Member | str") -> None:
        """Wrap the document secret for one more member."""
        name = member.name if isinstance(member, Member) else member
        self.owner.community.member(name)  # must be enrolled
        self.owner.publisher.grant_access(self.doc_id, name)
        if name not in self.recipients:
            self.recipients.append(name)

    def revoke(self, member: "Member | str") -> bool:
        """Remove a member's wrapped key from the DSP.

        Returns whether a key was removed.  A card that already
        unlocked the document keeps its provisioned copy, so durable
        revocation pairs this with an :meth:`update_rules` denying the
        member -- exactly the paper's dissociation of rights from
        encryption.
        """
        name = member.name if isinstance(member, Member) else member
        removed = self.owner.community.store.remove_wrapped_key(
            self.doc_id, name
        )
        if name in self.recipients:
            self.recipients.remove(name)
        return removed
