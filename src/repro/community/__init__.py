"""``repro.community`` -- the facade API over the whole architecture.

The paper's pitch is an *end-user* system: a community of members
safely sharing and disseminating XML through smart devices.  This
package is that surface.  One :class:`Community` owns the shared
infrastructure (simulated PKI, DSP store + server, one clock, one
compiled-policy registry) and hands out composable handles::

    from repro.community import Community

    community = Community()
    alice = community.enroll("alice")
    bob = community.enroll("bob")
    doc = alice.publish(
        "<notes><work>plan</work><diary>secret</diary></notes>",
        [("+", "bob", "/notes"), ("-", "bob", "//diary")],
        to=[bob],
    )
    with bob.open(doc) as session:
        print(session.query().text())   # bob's authorized view

Handles:

=================  ====================================================
:class:`Community`  shared infrastructure; ``enroll``/``channel``
:class:`Member`     a principal: ``publish``/``open`` + its card
:class:`Document`   owner handle: ``update_rules``/``grant``/``revoke``
:class:`Session`    one pull session (context manager), ``query``
:class:`ViewStream` incremental authorized view; ``text``/``events``
:class:`Channel`    push/carousel path; ``subscribe``/``broadcast``
:class:`Feed`       tiered dissemination; ``publish``/``subscribe``/
                    ``broadcast``/``catch_up``/``revoke``
=================  ====================================================

Views stream: ``session.query(xpath)`` returns a :class:`ViewStream`
whose first fragment is available before the document has been fully
pulled from the DSP, and whose refetched subtrees settle by document
position.  Failures raise the :mod:`repro.errors` taxonomy.
"""

from repro.cache.viewcache import ViewCache
from repro.community.channels import Channel, SubscriberHandle
from repro.community.facade import Community, Document, Member
from repro.community.session import Session, ViewStream
from repro.feeds import Feed, FeedSubscriberHandle, TierSpec
from repro.terminal.proxy import ViewPiece

__all__ = [
    "Channel",
    "Community",
    "Document",
    "Feed",
    "FeedSubscriberHandle",
    "Member",
    "Session",
    "SubscriberHandle",
    "TierSpec",
    "ViewCache",
    "ViewPiece",
    "ViewStream",
]
