"""Pull sessions and streaming views for the community facade.

A :class:`Session` is what ``member.open(document)`` returns: a context
manager bound to the member's card with the document unlocked, whose
``query`` runs one pull evaluation and hands back a
:class:`ViewStream`.

The stream is the facade's replacement for the buffer-everything
``AuthorizedResult``: an *incremental* iterator of authorized
fragments.  Pieces surface as soon as the card's output drain produces
them -- before later chunks are even fetched from the DSP -- and
refetched pending subtrees settle lazily, by document position rather
than arrival order.  ``text()`` and ``events()`` materialize the
settled view when a caller does want it whole.
"""

from __future__ import annotations

from types import TracebackType
from typing import TYPE_CHECKING, Iterator

from repro.cache.viewcache import CachedView, CacheKey, ViewCache
from repro.core.delivery import ViewMode
from repro.errors import KeyNotGranted, PolicyError, UnknownDocument
from repro.smartcard.applet import PendingStrategy
from repro.smartcard.resources import SessionMetrics
from repro.terminal.api import AuthorizedResult
from repro.terminal.proxy import QueryOutcome, ViewPiece
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.events import Event
from repro.xmlstream.parser import parse_string

if TYPE_CHECKING:
    from repro.community.facade import Document, Member


def _parse_view_text(text: str) -> list[Event]:
    """Parse view text that may be empty or hold several subtrees.

    ``ViewMode.PRUNE`` can re-parent content so a view is not always a
    single-rooted document; wrapping in a synthetic root and stripping
    it afterwards parses every shape a view can take.
    """
    if not text:
        return []
    events = parse_string(f"<v>{text}</v>")
    return events[1:-1]


class ViewStream:
    """An incremental iterator over one authorized view.

    Iterating yields :class:`~repro.terminal.proxy.ViewPiece` items:
    in-order slices of the main pass first (each available before the
    next chunk window is pulled), then refetched pending subtrees.
    Pieces are cached, so the stream may be iterated again or
    materialized after consumption:

    * :meth:`text` -- the settled complete view (main view, then
      fragments ordered by their document position);
    * :meth:`events` -- the same, as parsed XML events;
    * :meth:`result` -- a legacy ``AuthorizedResult`` bridge;
    * :attr:`metrics` -- the session metrics (drains the stream).
    """

    def __init__(
        self, pieces: "Iterator[ViewPiece]", outcome: QueryOutcome
    ) -> None:
        self._live = pieces
        self._outcome = outcome
        self._cached: list[ViewPiece] = []
        self._finished = False
        self._error: BaseException | None = None

    # -- iteration --------------------------------------------------------

    def __iter__(self) -> "Iterator[ViewPiece]":
        index = 0
        while True:
            while index < len(self._cached):
                yield self._cached[index]
                index += 1
            if self._finished:
                return
            if self._advance() is None:
                return

    def _advance(self) -> ViewPiece | None:
        try:
            piece = next(self._live)
        except StopIteration:
            self._finished = True
            return None
        except BaseException as exc:
            # A failed pull must not leave a half-driven generator
            # around: record the failure, close the generator (its
            # ``finally`` blocks run now, not at GC time), and refuse
            # to ever deliver the partial view.
            self._error = exc
            self._finished = True
            self._close_live()
            raise
        self._cached.append(piece)
        return piece

    def _close_live(self) -> None:
        close = getattr(self._live, "close", None)
        if close is not None:
            try:
                close()
            except Exception:
                pass

    def abort(self) -> None:
        """Abandon the stream without raising (idempotent).

        Closes the underlying generator so the card pass unwinds now;
        materializing a stream that failed still re-raises its error.
        """
        if not self._finished:
            self._finished = True
            self._close_live()

    def finish(self) -> "ViewStream":
        """Drain the stream to completion (idempotent).

        A stream that failed mid-pull re-raises its recorded error on
        every ``finish`` (and therefore on every materializer): a
        partial view is never delivered as if it were the document.
        """
        while not self._finished:
            self._advance()
        if self._error is not None:
            raise self._error
        return self

    @property
    def closed(self) -> bool:
        """Whether the underlying session pass has completed."""
        return self._finished

    @property
    def error(self) -> BaseException | None:
        """The failure that ended the stream, if any."""
        return self._error

    # -- materializers ----------------------------------------------------

    @property
    def pieces(self) -> "list[ViewPiece]":
        """Every piece of the view (drains the stream)."""
        self.finish()
        return list(self._cached)

    @property
    def fragments(self) -> "list[ViewPiece]":
        """Refetched subtrees, settled by document position."""
        self.finish()
        return sorted(
            (p for p in self._cached if p.kind == "fragment"),
            key=lambda p: p.position,
        )

    def text(self) -> str:
        """The settled complete view as one string.

        The main view comes first (it is already in document order);
        refetched fragments follow ordered by the absolute document
        position of their subtree, whatever order the transport
        replayed them in.
        """
        self.finish()
        parts = [self._outcome.xml]
        parts.extend(piece.text for piece in self.fragments)
        return "".join(parts)

    def events(self) -> list[Event]:
        """The settled view parsed back into XML events."""
        self.finish()
        events = _parse_view_text(self._outcome.xml)
        for piece in self.fragments:
            events.extend(_parse_view_text(piece.text))
        return events

    def result(self) -> AuthorizedResult:
        """Bridge to the deprecated buffer-everything result type."""
        self.finish()
        return AuthorizedResult(
            xml=self._outcome.xml, fragments=list(self._outcome.fragments)
        )

    @property
    def metrics(self) -> SessionMetrics:
        """Session metrics; drains the stream to finalize them."""
        self.finish()
        return self._outcome.metrics


class Session:
    """One member's pull session on one document (a context manager).

    Opening unlocks the document on the member's card (one wrapped-key
    fetch + unwrap, skipped if already unlocked).  The session's
    ``transfer`` plan rides along with each query -- terminal state is
    never mutated, so overlapping sessions on one member cannot leak or
    clobber each other's transport plans.  Closing drains any stream
    still in flight, so the card never stays parked mid-document.
    """

    def __init__(
        self,
        member: "Member",
        document: "Document",
        *,
        transfer: TransferPolicy | None = None,
        groups: frozenset[str] = frozenset(),
    ) -> None:
        self.member = member
        self.document = document
        self.transfer = transfer
        self.groups = groups
        self._streams: list[ViewStream] = []
        self._closed = False
        member.terminal.unlock_document(document.doc_id, document.owner.name)

    # -- context management ----------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def close(self) -> None:
        """Finish any in-flight stream (idempotent).

        A stream that already failed (or fails while draining) is
        aborted rather than re-raised -- its consumer saw the error
        when it happened; teardown must not resurrect it.
        """
        if self._closed:
            return
        self._closed = True
        for stream in self._streams:
            try:
                stream.finish()
            except Exception:
                stream.abort()

    # -- queries ----------------------------------------------------------

    def query(
        self,
        xpath: str | None = None,
        *,
        strategy: PendingStrategy = PendingStrategy.BUFFER,
        view_mode: ViewMode = ViewMode.SKELETON,
    ) -> ViewStream:
        """Run one pull evaluation; returns a fresh :class:`ViewStream`.

        ``xpath`` restricts the view to matching subtrees (the paper's
        pull queries); ``strategy`` picks how pending subtrees are
        handled and ``view_mode`` how denied ancestors render.
        """
        if self._closed:
            raise PolicyError(
                f"session on {self.document.doc_id!r} is closed",
                doc_id=self.document.doc_id,
                subject=self.member.name,
            )
        # One card runs one evaluation at a time: a still-streaming
        # earlier view must complete before the next BEGIN_SESSION.
        # An earlier stream that failed -- or fails while being
        # drained here -- is aborted instead of poisoning this query;
        # the card resets its session state on the next BEGIN anyway.
        for stream in self._streams:
            try:
                stream.finish()
            except Exception:
                stream.abort()
        self._streams = [s for s in self._streams if not s.closed]
        cache = self.member.community.view_cache
        key: CacheKey | None = None
        probe_cost = 0
        if cache is not None:
            key = CacheKey(
                doc_id=self.document.doc_id,
                subject=self.member.name,
                query=xpath,
                strategy=strategy.value,
                view_mode=view_mode.value,
                groups=self.groups,
            )
            cached = self._consult_cache(cache, key)
            if isinstance(cached, ViewStream):
                self._streams.append(cached)
                return cached
            probe_cost = cached
        outcome = QueryOutcome(xml="")
        pieces = self.member.terminal.proxy.stream_query(
            self.document.doc_id,
            self.member.name,
            query=xpath,
            strategy=strategy,
            view_mode=view_mode,
            groups=self.groups,
            outcome=outcome,
            transfer=self.transfer,
        )
        if cache is not None and key is not None:
            # The probe that failed to answer still crossed the wire:
            # charge it to this session, not to nobody.
            outcome.metrics.dsp_requests += 1
            outcome.metrics.bytes_from_dsp += probe_cost
            pieces = self._recording(cache, key, pieces, outcome)
        stream = ViewStream(pieces, outcome)
        self._streams.append(stream)
        return stream

    # -- view cache --------------------------------------------------------

    def _consult_cache(
        self, cache: ViewCache, key: CacheKey
    ) -> "ViewStream | int":
        """Probe freshness and try to answer from cache.

        Returns a replayed :class:`ViewStream` on a hit, or the probe's
        byte cost (to charge onto the live pull) on a miss.  A probe
        reporting the subject's wrapped key gone purges the subject's
        entries and raises :class:`~repro.errors.KeyNotGranted`: with
        the cache enabled, the freshness probe doubles as a revocation
        check, and a revoked subject is never served -- from cache *or*
        from the card's retained copy.
        """
        doc_id = self.document.doc_id
        subject = self.member.name
        try:
            meta = self.member.terminal.dsp.get_meta(doc_id, subject)
        except UnknownDocument:
            cache.invalidate_document(doc_id)
            raise
        cache.count("probes")
        if not meta.has_key:
            cache.refuse_revoked(doc_id, subject)
            raise KeyNotGranted(
                f"document {doc_id!r} no longer has a key wrapped for "
                f"{subject!r} (revoked); refusing to serve a cached or "
                "retained view",
                doc_id=doc_id,
                subject=subject,
            )
        found = cache.lookup(key, meta)
        if found is None:
            return meta.wire_size
        entry, semantic_hit = found
        return self._replay(entry, semantic_hit, meta.wire_size)

    def _replay(
        self, entry: CachedView, semantic_hit: bool, probe_cost: int
    ) -> ViewStream:
        """A :class:`ViewStream` serving a cached view byte-for-byte.

        The fabricated metrics show the session's true cost: one DSP
        round trip (the probe), zero card cycles, zero link traffic.
        """
        metrics = SessionMetrics()
        metrics.dsp_requests = 1
        metrics.bytes_from_dsp = probe_cost
        if semantic_hit:
            metrics.cache_semantic_hit = 1
        else:
            metrics.cache_hit = 1
        outcome = QueryOutcome(
            xml=entry.xml,
            fragments=list(entry.fragments),
            metrics=metrics,
            doc_version=entry.doc_version,
            rules_version=entry.rules_version,
        )

        def replayed() -> "Iterator[ViewPiece]":
            for kind, text, position, entry_id in entry.pieces:
                yield ViewPiece(kind, text, position, entry_id)

        return ViewStream(replayed(), outcome)

    def _recording(
        self,
        cache: ViewCache,
        key: CacheKey,
        pieces: "Iterator[ViewPiece]",
        outcome: QueryOutcome,
    ) -> "Iterator[ViewPiece]":
        """Tee a live pull into the cache -- on clean completion only.

        The entry is recorded after the underlying generator exhausts
        normally; a pull that raises or is aborted (``GeneratorExit``)
        leaves the cache untouched, so a partial view can never be
        served later as if it were the document.
        """
        recorded: list[tuple[str, str, int, "int | None"]] = []
        try:
            for piece in pieces:
                recorded.append(
                    (piece.kind, piece.text, piece.position, piece.entry_id)
                )
                yield piece
        finally:
            close = getattr(pieces, "close", None)
            if close is not None:
                close()
        cache.record(
            key,
            xml=outcome.xml,
            pieces=tuple(recorded),
            fragments=tuple(outcome.fragments),
            doc_version=outcome.doc_version,
            rules_version=outcome.rules_version,
        )
