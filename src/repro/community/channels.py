"""Push-mode dissemination under the facade's handle model.

``community.channel(document)`` returns the :class:`Channel` for one
published document: subscribe members, broadcast (optionally for
several carousel cycles), and read each subscriber's filtered view off
its :class:`SubscriberHandle`.

Two sharing effects make wide audiences cheap here:

* every subscriber card uses the community's compiled-policy registry,
  so a tier of subscribers whose effective sub-policy is identical
  (same group, same rules) compiles its automata exactly once for the
  whole fleet -- a 10-subscriber broadcast adds zero
  ``compile_path`` calls over a 1-subscriber one;
* :meth:`Channel.preview` computes every subscriber's authorized view
  in ONE shared evaluation pass over the plaintext
  (:func:`~repro.core.multicast.multicast_view_texts` via the stream
  publisher), the head-end amortization of the dissemination paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.delivery import ViewMode
from repro.core.rules import Sign, Subject
from repro.dissemination.carousel import LateJoiningSubscriber
from repro.dissemination.channel import BroadcastChannel
from repro.dissemination.publisher import StreamPublisher
from repro.dissemination.subscriber import Subscriber
from repro.errors import PolicyError
from repro.smartcard.resources import SessionMetrics
from repro.terminal.transfer import TransferPolicy

if TYPE_CHECKING:
    from repro.community.facade import Community, Document, Member


class SubscriberHandle:
    """One member's receiving end of a broadcast channel."""

    def __init__(
        self,
        member: "Member",
        subscriber: Subscriber,
        late: "LateJoiningSubscriber | None" = None,
    ) -> None:
        self.member = member
        self.subscriber = subscriber
        self._late = late

    def __repr__(self) -> str:
        return f"SubscriberHandle({self.member.name!r})"

    @property
    def view(self) -> str:
        """The authorized view received so far."""
        return self.subscriber.view

    @property
    def ok(self) -> bool:
        return self.subscriber.ok

    @property
    def metrics(self) -> SessionMetrics:
        return self.subscriber.metrics

    @property
    def frames_missed(self) -> int:
        """Frames of the partial first cycle a late joiner discarded."""
        return self._late.frames_missed if self._late is not None else 0

    def require_ok(self) -> None:
        """Raise the typed error behind a failed session, if any."""
        self.subscriber.require_ok()


class Channel:
    """The broadcast/carousel path for one document.

    Owned by the community (``community.channel(doc)`` always returns
    the same handle for the same document); the underlying unsecured
    :class:`BroadcastChannel` and head-end
    :class:`StreamPublisher` stay reachable as ``broadcast_channel``
    and ``publisher`` for tamper injection and bandwidth accounting.
    """

    def __init__(self, community: "Community", document: "Document") -> None:
        self.community = community
        self.document = document
        self.broadcast_channel = BroadcastChannel(clock=community.clock)
        self.publisher = StreamPublisher(
            self.broadcast_channel, registry=community.registry
        )
        self._handles: list[SubscriberHandle] = []
        self.cycles_sent = 0

    # -- audience ---------------------------------------------------------

    def subscribe(
        self,
        member: "Member | str",
        *,
        groups: frozenset[str] = frozenset(),
        view_mode: ViewMode = ViewMode.SKELETON,
        transfer: TransferPolicy | None = None,
        late: bool = False,
    ) -> SubscriberHandle:
        """Attach a member's card to the channel.

        The member's card is provisioned with the document secret
        through the normal unlock path (wrapped key at the DSP), then
        listens on the channel; ``groups`` carries its subscription
        tiers, ``late`` wraps it as a late joiner that only engages
        from the next carousel cycle's header.
        """
        if isinstance(member, str):
            member = self.community.member(member)
        if any(h.member is member for h in self._handles):
            # Two Subscribers on one card would interleave their
            # sessions and silently corrupt both views.
            raise PolicyError(
                f"{member.name!r} is already subscribed to "
                f"{self.document.doc_id!r}",
                doc_id=self.document.doc_id,
                subject=member.name,
            )
        doc = self.document
        member.terminal.unlock_document(doc.doc_id, doc.owner.name)
        stored = self.community._require_store().get(doc.doc_id)
        subscriber = Subscriber(
            member.name,
            member.terminal.card,
            stored.rules_version,
            list(stored.rule_records),
            clock=self.broadcast_channel.clock,
            view_mode=view_mode,
            registry=self.community.registry,
            transfer=transfer,
            groups=groups,
        )
        late_wrapper: LateJoiningSubscriber | None = None
        if late:
            late_wrapper = LateJoiningSubscriber(subscriber)
            self.broadcast_channel.subscribe(late_wrapper.on_frame)
        else:
            self.broadcast_channel.subscribe(subscriber.on_frame)
        handle = SubscriberHandle(member, subscriber, late_wrapper)
        self._handles.append(handle)
        return handle

    @property
    def handles(self) -> "list[SubscriberHandle]":
        return list(self._handles)

    # -- head-end ---------------------------------------------------------

    def broadcast(self, cycles: int = 1) -> None:
        """Send ``cycles`` complete repetitions of the sealed document.

        Every byte is sent exactly once per cycle regardless of the
        audience size; each subscriber's card filters the stream
        against its own rights.
        """
        if cycles < 1:
            raise PolicyError("a broadcast needs at least one cycle")
        container = self.document.container
        for __ in range(cycles):
            self.publisher.broadcast_document(container)
            self.cycles_sent += 1

    def preview(
        self, mode: ViewMode = ViewMode.SKELETON
    ) -> "dict[str, str]":
        """Every subscriber's view, computed in ONE evaluation pass.

        The head-end holds plaintext and policy before sealing, so it
        can preflight the whole audience with a single
        multi-subject pump over the document -- N views for the price
        of one parse, against the same compiled-policy registry the
        cards use.
        """
        events = self.document.events
        rules = self.document.rules
        if events is None or rules is None:
            raise PolicyError(
                f"document {self.document.doc_id!r} is a sealed handle; "
                "previews need the owner's plaintext, which only the "
                "publishing process holds",
                doc_id=self.document.doc_id,
            )
        subjects = [
            Subject(handle.member.name, handle.subscriber.groups)
            for handle in self._handles
        ]
        return self.publisher.preview_views(
            events,
            rules,
            subjects,
            default=Sign.DENY,
            mode=mode,
        )

    def set_tamper(
        self, tamper: "Callable[[str, int, bytes], bytes] | None"
    ) -> None:
        """Install (or clear) an in-channel adversary."""
        self.broadcast_channel.set_tamper(tamper)
