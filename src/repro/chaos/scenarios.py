"""Hostile-world scenarios: faults composed with live workloads.

Each scenario builds a small community (the docgen hospital corpus),
arms a :class:`~repro.chaos.plan.FaultPlan`, runs a real workload
through the faulted seam and checks the chaos invariant:

* every injected failure surfaces as the documented
  :mod:`repro.errors` type -- never a bare ``OSError``, never a hang;
* any view that *is* delivered is byte-identical to the fault-free
  golden (for races spanning a republish: to one coherent version's
  golden, never a splice);
* the system recovers -- a clean operation after the faulted one
  succeeds and is golden again.

:func:`run_matrix` executes the full (scenario x fault x seed) grid
with a per-cell deadline enforced by a watchdog: a hung cell is a
*failed* cell, not a hung suite.  ``examples/chaos_demo.py`` narrates
a run; ``tests/chaos/test_matrix.py`` gates it.
"""

from __future__ import annotations

import struct
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.chaos.faults import (
    FaultyBackend,
    FaultyCard,
    FaultyClient,
    FaultySocket,
    crash_reopen,
)
from repro.chaos.plan import FaultPlan, FaultRule
from repro.community import Community, TierSpec
from repro.crypto.container import DocumentContainer
from repro.crypto.groupkey import wrap_call_count
from repro.dsp import LocalDSP, RemoteDSP
from repro.dsp.backends import MemoryBackend, ShardedBackend
from repro.dsp.reactor import AdmissionPolicy
from repro.dsp.remote import GenerationChanged, RetryPolicy
from repro.errors import (
    KeyNotGranted,
    ReproError,
    ResourceExhausted,
    TamperDetected,
    TransportError,
)
from repro.workloads.docgen import hospital
from repro.workloads.rulegen import hospital_rules
from repro.xmlstream.tree import tree_to_events

__all__ = [
    "DOC_ID",
    "READERS",
    "Scenario",
    "ScenarioResult",
    "SCENARIOS",
    "build_world",
    "golden_views",
    "run_cell",
    "run_matrix",
]

DOC_ID = "ward"
READERS = ("doctor", "accountant")
_CHUNK_SIZE = 64
_PATIENTS = 2


# -- worlds and goldens ----------------------------------------------------


def _events(version: int) -> list:
    """The corpus for document version 1 (original) or 2 (republish)."""
    return list(tree_to_events(hospital(n_patients=_PATIENTS + version - 1)))


def build_world(*, backend: object | None = None) -> Community:
    """A fresh community with the hospital document published."""
    community = Community(backend=backend)  # type: ignore[arg-type]
    owner = community.enroll("owner")
    readers = [community.enroll(name) for name in READERS]
    owner.publish(
        _events(1),
        hospital_rules(),
        to=readers,
        doc_id=DOC_ID,
        chunk_size=_CHUNK_SIZE,
    )
    return community


def _republish(community: Community) -> None:
    """Version 2 of the document under the same id (and secret)."""
    community.member("owner").publish(
        _events(2),
        hospital_rules(),
        to=list(READERS),
        doc_id=DOC_ID,
        chunk_size=_CHUNK_SIZE,
    )


def _pull(community: Community, reader: str) -> str:
    with community.member(reader).open(DOC_ID) as session:
        return session.query().text()


_GOLDEN: dict[int, dict[str, str]] = {}
_GOLDEN_LOCK = threading.Lock()


def golden_views(version: int = 1) -> dict[str, str]:
    """Fault-free reference views, per reader, for a document version.

    Computed once in a pristine world and cached -- every scenario's
    delivered-view check compares against these bytes.
    """
    with _GOLDEN_LOCK:
        cached = _GOLDEN.get(version)
        if cached is not None:
            return cached
        community = build_world()
        if version == 2:
            _republish(community)
        views = {name: _pull(community, name) for name in READERS}
        community.close()
        _GOLDEN[version] = views
        return views


def _container_bytes(container: DocumentContainer) -> bytes:
    """A canonical byte serialization for snapshot comparison."""
    header = container.header
    blob = struct.pack(
        ">QIIQI",
        header.version,
        header.chunk_size,
        header.chunk_count,
        header.total_length,
        header.tag_length,
    )
    parts = [header.doc_id.encode("utf-8"), blob, header.tag]
    parts.extend(container.chunks)
    return b"\x00".join(parts)


# -- results ---------------------------------------------------------------


@dataclass(slots=True)
class ScenarioResult:
    """One matrix cell's verdict."""

    scenario: str
    fault: str
    seed: int
    ok: bool
    delivered: bool = False
    matched_golden: bool = False
    error: str | None = None
    detail: str = ""
    duration: float = 0.0
    fault_log: str = ""

    def __str__(self) -> str:
        verdict = "ok " if self.ok else "FAIL"
        outcome = self.error if self.error is not None else (
            "golden view" if self.matched_golden else "no view"
        )
        tail = f" -- {self.detail}" if self.detail else ""
        return (
            f"[{verdict}] {self.scenario} x {self.fault} (seed {self.seed}): "
            f"{outcome} in {self.duration:.2f}s{tail}"
        )


def _expect_error(
    result: ScenarioResult,
    exc: ReproError,
    allowed: tuple[type[BaseException], ...],
) -> bool:
    result.error = type(exc).__name__
    if isinstance(exc, allowed):
        return True
    result.detail = (
        f"raised {type(exc).__name__}, expected one of "
        f"{', '.join(t.__name__ for t in allowed)}"
    )
    return False


# -- scenarios -------------------------------------------------------------


def _scenario_backend_pull(seed: int, fault: str) -> ScenarioResult:
    """Disk faults under a pull: fail-stop, stale replay, torn write."""
    result = ScenarioResult("backend-pull", fault, seed, ok=False)
    plan = FaultPlan(seed)
    backend = FaultyBackend(MemoryBackend(), plan)
    community = build_world(backend=backend)
    golden = golden_views(1)
    try:
        if fault == "none":
            view = _pull(community, "doctor")
            result.delivered = True
            result.matched_golden = view == golden["doctor"]
            result.ok = result.matched_golden
        elif fault == "fail":
            plan.rules = (FaultRule("backend.get", "fail", at=(3,), limit=1),)
            try:
                _pull(community, "doctor")
                result.detail = "injected backend failure never surfaced"
            except ReproError as exc:
                if _expect_error(result, exc, (TransportError,)):
                    # Recovery: the very next pull must be clean gold.
                    view = _pull(community, "doctor")
                    result.delivered = True
                    result.matched_golden = view == golden["doctor"]
                    result.ok = result.matched_golden
                    if not result.ok:
                        result.detail = "post-failure pull was not golden"
        elif fault == "stale":
            _pull(community, "doctor")  # seed the stale snapshot (v1)
            _republish(community)  # the store now holds v2
            plan.rules = (FaultRule("backend.get", "stale", probability=1.0),)
            view = _pull(community, "doctor")
            result.delivered = True
            # A consistently-stale store may replay an old version, but
            # the delivered view must be *that* version's golden bytes.
            result.matched_golden = view == golden["doctor"]
            result.ok = result.matched_golden
            if not result.ok:
                result.detail = "stale replay delivered a non-golden view"
        elif fault == "torn":
            plan.rules = (
                FaultRule("backend.put_document", "torn", at=(1,), limit=1),
            )
            try:
                _republish(community)
                result.detail = "torn write was acknowledged as a success"
                return result
            except ReproError as exc:
                if not _expect_error(result, exc, (TransportError,)):
                    return result
            try:
                _pull(community, "doctor")
                result.detail = "a view was assembled from a torn document"
            except ReproError as exc:
                result.ok = _expect_error(
                    result, exc, (TamperDetected, TransportError)
                )
        else:
            result.detail = f"unknown fault {fault!r}"
    finally:
        result.fault_log = plan.describe()
        community.close()
    return result


def _scenario_client_pull(seed: int, fault: str) -> ScenarioResult:
    """Terminal-side transport faults on the DSPClient seam."""
    result = ScenarioResult("client-pull", fault, seed, ok=False)
    plan = FaultPlan(seed)
    serving = build_world()
    golden = golden_views(1)
    client = FaultyClient(LocalDSP(serving.dsp), plan)
    attached = Community.attach(client)
    attached.enroll("doctor")
    document = attached.adopt(DOC_ID, "owner")
    try:
        if fault == "fail":
            plan.rules = (
                FaultRule("client.get_chunk*", "fail", at=(1,), limit=1),
            )
            with attached.member("doctor").open(document) as session:
                try:
                    session.query().text()
                    result.detail = "injected transport failure never surfaced"
                    return result
                except ReproError as exc:
                    if not _expect_error(result, exc, (TransportError,)):
                        return result
                # Same session, same card: the failed stream must not
                # poison the next pull.
                view = session.query().text()
        else:
            with attached.member("doctor").open(document) as session:
                view = session.query().text()
        result.delivered = True
        result.matched_golden = view == golden["doctor"]
        result.ok = result.matched_golden
        if not result.ok:
            result.detail = "delivered view differs from the golden"
    finally:
        result.fault_log = plan.describe()
        serving.close()
    return result


def _scenario_card(seed: int, fault: str) -> ScenarioResult:
    """Card-boundary faults mid-batch: exhaustion and tamper words."""
    result = ScenarioResult("card", fault, seed, ok=False)
    plan = FaultPlan(seed)
    community = build_world()
    golden = golden_views(1)
    member = community.member("doctor")
    wrapper = FaultyCard(member.terminal.card, plan)
    member.terminal.card = wrapper  # type: ignore[assignment]
    member.terminal.proxy.card = wrapper  # type: ignore[assignment]
    expected: dict[str, tuple[type[BaseException], ...]] = {
        "exhaust": (ResourceExhausted,),
        "tamper": (TamperDetected,),
    }
    try:
        if fault == "none":
            view = _pull(community, "doctor")
            result.delivered = True
            result.matched_golden = view == golden["doctor"]
            result.ok = result.matched_golden
        else:
            plan.rules = (
                FaultRule("card.process", fault, at=(15,), limit=1),
            )
            try:
                _pull(community, "doctor")
                result.detail = "card fault never surfaced"
                return result
            except ReproError as exc:
                if not _expect_error(result, exc, expected[fault]):
                    return result
            view = _pull(community, "doctor")
            result.delivered = True
            result.matched_golden = view == golden["doctor"]
            result.ok = result.matched_golden
            if not result.ok:
                result.detail = "post-fault pull on the same card not golden"
    finally:
        result.fault_log = plan.describe()
        community.close()
    return result


def _scenario_remote_heal(seed: int, fault: str) -> ScenarioResult:
    """Self-healing RemoteDSP: one transport fault, retried to golden."""
    result = ScenarioResult("remote-heal", fault, seed, ok=False)
    plan = FaultPlan(seed)
    if fault != "none":
        plan.rules = (
            FaultRule("socket.recv", fault, at=(4,), limit=1, arg=0),
        )
    serving = build_world()
    golden = golden_views(1)
    server = serving.serve()
    client = RemoteDSP.connect(
        server.address,
        timeout=5.0,
        retry=RetryPolicy(attempts=6, backoff=0.01, deadline=30.0, seed=seed),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    try:
        attached = Community.attach(client)
        attached.enroll("doctor")
        document = attached.adopt(DOC_ID, "owner")
        with attached.member("doctor").open(document) as session:
            view = session.query().text()
        result.delivered = True
        result.matched_golden = view == golden["doctor"]
        healed = fault == "none" or client.reconnects >= 1
        result.ok = result.matched_golden and healed
        if not result.matched_golden:
            result.detail = "healed pull delivered a non-golden view"
        elif not healed:
            result.detail = "fault never fired: the cell proved nothing"
    finally:
        result.fault_log = plan.describe()
        client.close()
        serving.close()
    return result


def _scenario_revocation_storm(seed: int, fault: str) -> ScenarioResult:
    """Revocation storm between carousel cycles, with card faults riding."""
    result = ScenarioResult("revocation-storm", fault, seed, ok=False)
    plan = FaultPlan(seed)
    community = build_world()
    expected: dict[str, tuple[type[BaseException], ...]] = {
        "exhaust": (ResourceExhausted,),
        "tamper": (TamperDetected,),
    }
    try:
        if fault != "none":
            victim = community.member("accountant")
            wrapper = FaultyCard(victim.terminal.card, plan)
            victim.terminal.card = wrapper  # type: ignore[assignment]
            victim.terminal.proxy.card = wrapper  # type: ignore[assignment]
            plan.rules = (
                FaultRule("card.process", fault, at=(10,), limit=1),
            )
        channel = community.channel(DOC_ID)
        doctor = channel.subscribe("doctor")
        accountant = channel.subscribe("accountant")
        preview = channel.preview()
        channel.broadcast(1)
        document = community.document(DOC_ID)
        # The storm: key-level revocation plus a rules re-seal, both
        # landing between carousel cycles.
        removed = document.revoke("accountant")
        document.update_rules(hospital_rules())
        channel.broadcast(1)
        if not doctor.ok or doctor.view != preview["doctor"]:
            result.detail = "the storm disturbed an unrevoked subscriber"
            return result
        result.delivered = True
        result.matched_golden = True
        if fault == "none":
            result.ok = (
                removed
                and accountant.ok
                and accountant.view == preview["accountant"]
            )
            if not result.ok:
                result.detail = (
                    "pre-revocation cycle did not deliver the full view"
                )
        else:
            try:
                accountant.require_ok()
                result.detail = "card fault never surfaced on the victim"
            except ReproError as exc:
                result.ok = _expect_error(result, exc, expected[fault])
    finally:
        result.fault_log = plan.describe()
        community.close()
    return result


def _scenario_feed_revoke(seed: int, fault: str) -> ScenarioResult:
    """Tier revocation mid-carousel on a feed, with a faulted victim.

    The invariant: the revoked member sees only ``KeyNotGranted`` (or
    the injected ``TamperDetected``), every surviving member of the
    tier -- and of the *other* tier -- stays byte-identical to the
    fault-free golden, the revocation itself performs exactly one
    re-wrap, and a fresh member joining after the storm gets golden
    bytes on the next cycle.
    """
    result = ScenarioResult("feed-revoke", fault, seed, ok=False)
    plan = FaultPlan(seed)
    community = Community()
    owner = community.enroll("owner")
    for name in ("doctor", "accountant", "auditor"):
        community.enroll(name, strict_memory=False)
    feed = community.feed(
        "bulletins",
        owner=owner,
        tiers=[
            TierSpec("staff", allow=("/report",), drop=("secret",)),
            TierSpec("board", allow=("/report",)),
        ],
    )
    feed.publish(
        "<report><summary>rounds</summary>"
        "<body>shift notes<secret>salaries</secret></body></report>",
        doc_id="flash",
        chunk_size=_CHUNK_SIZE,
    )
    try:
        if fault != "none":
            victim = community.member("accountant")
            wrapper = FaultyCard(victim.terminal.card, plan)
            victim.terminal.card = wrapper  # type: ignore[assignment]
            victim.terminal.proxy.card = wrapper  # type: ignore[assignment]
            plan.rules = (
                FaultRule("card.process", fault, at=(10,), limit=1),
            )
        doctor = feed.subscribe("doctor", "staff")
        accountant = feed.subscribe("accountant", "staff")
        auditor = feed.subscribe("auditor", "board")
        golden = feed.preview()
        feed.broadcast(1)
        wraps_before = wrap_call_count()
        feed.revoke("accountant")  # the storm, between carousel cycles
        rewraps = wrap_call_count() - wraps_before
        feed.broadcast(1)
        if rewraps != 1:
            result.detail = f"revocation performed {rewraps} wraps, not 1"
            return result
        if not doctor.ok or doctor.view != golden["staff"]:
            result.detail = "the revocation disturbed a same-tier survivor"
            return result
        if not auditor.ok or auditor.view != golden["board"]:
            result.detail = "the revocation disturbed the other tier"
            return result
        # Recovery: a fresh joiner after the storm gets golden bytes.
        community.enroll("fresh", strict_memory=False)
        fresh = feed.subscribe("fresh", "staff")
        feed.broadcast(1)
        if not fresh.ok or fresh.view != golden["staff"]:
            result.detail = "a post-storm joiner did not get golden bytes"
            return result
        result.delivered = True
        result.matched_golden = True
        allowed: tuple[type[BaseException], ...] = (
            (KeyNotGranted, TamperDetected)
            if fault == "tamper"
            else (KeyNotGranted,)
        )
        try:
            accountant.require_ok()
            result.detail = "the revoked member saw no error at all"
        except ReproError as exc:
            result.ok = _expect_error(result, exc, allowed)
    finally:
        result.fault_log = plan.describe()
        community.close()
    return result


def _scenario_republish_race(seed: int, fault: str) -> ScenarioResult:
    """A republish racing an in-flight pull; final view is version 2."""
    result = ScenarioResult("republish-race", fault, seed, ok=False)
    plan = FaultPlan(seed)
    serving = build_world()
    golden_old = golden_views(1)
    golden_new = golden_views(2)
    fired = {"done": False}

    def racer(site: str, index: int) -> None:
        if (
            site.startswith("client.get_chunk")
            and index >= 2
            and not fired["done"]
        ):
            fired["done"] = True
            _republish(serving)

    client = FaultyClient(LocalDSP(serving.dsp), plan, before=racer)
    attached = Community.attach(client)
    attached.enroll("doctor")
    document = attached.adopt(DOC_ID, "owner")
    try:
        try:
            view = _pull_attached(attached, document)
            result.delivered = True
            if view not in (golden_old["doctor"], golden_new["doctor"]):
                result.detail = (
                    "the raced pull delivered a splice of two versions"
                )
                return result
            result.matched_golden = True
        except ReproError as exc:
            # The card's chunk MACs bind the version: a splice dies as
            # TamperDetected before any tainted byte is delivered.
            if not _expect_error(result, exc, (TamperDetected, TransportError)):
                return result
        if not fired["done"]:
            result.detail = "the race never fired"
            return result
        final = _pull_attached(attached, document)
        result.ok = final == golden_new["doctor"]
        if not result.ok:
            result.detail = "restarted pull did not deliver version 2"
    finally:
        result.fault_log = plan.describe()
        serving.close()
    return result


def _pull_attached(attached: Community, document: object) -> str:
    with attached.member("doctor").open(document) as session:  # type: ignore[arg-type]
        return session.query().text()


def _scenario_stale_cache(seed: int, fault: str) -> ScenarioResult:
    """A republish racing a *warm* cached query on a reader terminal.

    The terminal's view cache holds version 1; the republish lands
    exactly as the warm query's ``GET_META`` freshness probe leaves.
    The invariant: the raced query must deliver version 2's golden
    bytes (the probe sees the new version, the stale entry is dropped
    and repulled -- never the stale cached view, never a splice), and
    the query after that replays version 2 from cache.
    """
    result = ScenarioResult("stale-cache", fault, seed, ok=False)
    plan = FaultPlan(seed)
    serving = build_world()
    golden_old = golden_views(1)
    golden_new = golden_views(2)
    fired = {"done": False}

    def racer(site: str, index: int) -> None:
        # Probe 0 belongs to the cold, cache-populating pull; the
        # republish lands just before probe 1 -- the warm query.
        if site == "client.get_meta" and index == 1 and not fired["done"]:
            fired["done"] = True
            _republish(serving)

    client = FaultyClient(LocalDSP(serving.dsp), plan, before=racer)
    attached = Community.attach(client)
    attached.enroll("doctor")
    document = attached.adopt(DOC_ID, "owner")
    cache = attached.enable_view_cache()
    try:
        cold = _pull_attached(attached, document)
        if cold != golden_old["doctor"]:
            result.detail = "cold pull was not version 1 golden"
            return result
        raced = _pull_attached(attached, document)
        result.delivered = True
        if raced == golden_old["doctor"]:
            result.detail = "the raced warm query served the stale cache"
            return result
        if raced != golden_new["doctor"]:
            result.detail = "the raced warm query delivered a splice"
            return result
        result.matched_golden = True
        if not fired["done"]:
            result.detail = "the race never fired"
            return result
        if cache.stats.invalidations < 1:
            result.detail = "the stale entry was never invalidated"
            return result
        # Recovery: the next query replays version 2 from cache.
        hits_before = cache.stats.hits
        final = _pull_attached(attached, document)
        result.ok = (
            final == golden_new["doctor"]
            and cache.stats.hits == hits_before + 1
        )
        if not result.ok:
            result.detail = "post-race query did not hit on version 2"
    finally:
        result.fault_log = plan.describe()
        serving.close()
    return result


def _scenario_remote_republish(seed: int, fault: str) -> ScenarioResult:
    """Reconnect-and-resume across a republish: the generation guard."""
    result = ScenarioResult("remote-republish", fault, seed, ok=False)
    plan = FaultPlan(seed)
    plan.rules = (FaultRule("socket.recv", "disconnect", at=(12,), limit=1),)
    serving = build_world()
    golden_new = golden_views(2)
    connects = {"count": 0}

    def wrapper(sock: object) -> FaultySocket:
        connects["count"] += 1
        if connects["count"] == 2:
            # The republish lands exactly while the client is down.
            _republish(serving)
        return FaultySocket(sock, plan)

    server = serving.serve()
    client = RemoteDSP.connect(
        server.address,
        timeout=5.0,
        retry=RetryPolicy(attempts=6, backoff=0.01, deadline=30.0, seed=seed),
        socket_wrapper=wrapper,  # type: ignore[arg-type]
    )
    try:
        attached = Community.attach(client)
        attached.enroll("doctor")
        document = attached.adopt(DOC_ID, "owner")
        saw_guard = False
        try:
            view = _pull_attached(attached, document)
            # The disconnect may land outside a chunk request, in
            # which case the resume is legal -- but it must still be a
            # coherent version (never a splice).
            result.delivered = True
            if view != golden_new["doctor"] and view != golden_views(1)["doctor"]:
                result.detail = "resumed pull delivered a splice"
                return result
        except GenerationChanged as exc:
            saw_guard = True
            result.error = type(exc).__name__
        except ReproError as exc:
            if not _expect_error(result, exc, (TamperDetected, TransportError)):
                return result
        if connects["count"] < 2:
            result.detail = "the disconnect never forced a reconnect"
            return result
        final = _pull_attached(attached, document)
        result.matched_golden = final == golden_new["doctor"]
        result.ok = result.matched_golden
        if not result.ok:
            result.detail = "final pull did not deliver version 2"
        elif saw_guard:
            result.detail = "generation guard refused the cross-version resume"
    finally:
        result.fault_log = plan.describe()
        client.close()
        serving.close()
    return result


def _scenario_remote_storm(seed: int, fault: str) -> ScenarioResult:
    """Rules/key churn between pulls on a retrying remote reader."""
    result = ScenarioResult("remote-storm", fault, seed, ok=False)
    plan = FaultPlan(seed)
    if fault == "disconnect":
        plan.rules = (
            FaultRule("socket.recv", "disconnect", at=(6,), limit=1),
        )
    serving = build_world()
    golden = golden_views(1)
    server = serving.serve()
    client = RemoteDSP.connect(
        server.address,
        timeout=5.0,
        retry=RetryPolicy(attempts=6, backoff=0.01, deadline=30.0, seed=seed),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    try:
        attached = Community.attach(client)
        attached.enroll("doctor")
        document = attached.adopt(DOC_ID, "owner")
        first = _pull_attached(attached, document)
        owned = serving.document(DOC_ID)
        for _ in range(3):
            owned.update_rules(hospital_rules())
            owned.revoke("accountant")
            owned.grant("accountant")
        second = _pull_attached(attached, document)
        result.delivered = True
        result.matched_golden = (
            first == golden["doctor"] and second == golden["doctor"]
        )
        healed = fault == "none" or client.reconnects >= 1
        result.ok = result.matched_golden and healed
        if not result.matched_golden:
            result.detail = "a pull under the storm was not golden"
        elif not healed:
            result.detail = "fault never fired: the cell proved nothing"
    finally:
        result.fault_log = plan.describe()
        client.close()
        serving.close()
    return result


def _scenario_crash_reopen(seed: int, fault: str) -> ScenarioResult:
    """Concurrent writers, then crash-reopen every SQLite shard."""
    result = ScenarioResult("crash-reopen", fault, seed, ok=False)
    plan = FaultPlan(seed)
    golden = golden_views(1)
    with tempfile.TemporaryDirectory() as tmp:
        backend = ShardedBackend.sqlite(Path(tmp) / "dsp", shards=2)
        community = build_world(backend=backend)
        try:
            owner = community.member("owner")
            side_ids = [f"side-{index}" for index in range(3)]
            for doc_id in side_ids:
                owner.publish(
                    _events(1),
                    hospital_rules(),
                    to=list(READERS),
                    doc_id=doc_id,
                    chunk_size=_CHUNK_SIZE,
                )
            store = community.store
            assert store is not None
            doc_ids = [DOC_ID, *side_ids]
            # Concurrent writers hammer disjoint keys across shards.
            errors: list[BaseException] = []

            def write(slot: int) -> None:
                try:
                    for index in range(8):
                        doc_id = doc_ids[(slot + index) % len(doc_ids)]
                        store.put_wrapped_key(
                            doc_id,
                            f"writer-{slot}-{index}",
                            bytes([slot, index]) * 16,
                        )
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=write, args=(slot,), daemon=True)
                for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            if errors:
                result.error = type(errors[0]).__name__
                result.detail = f"writer failed: {errors[0]}"
                return result
            snapshot = {
                doc_id: _container_bytes(store.get(doc_id).container)
                for doc_id in doc_ids
            }
            keys_before = {
                doc_id: dict(store.get(doc_id).wrapped_keys)
                for doc_id in doc_ids
            }
            # The crash: every shard closed and reopened from disk.
            store.backend = crash_reopen(store.backend)
            for doc_id in doc_ids:
                stored = store.get(doc_id)
                if _container_bytes(stored.container) != snapshot[doc_id]:
                    result.detail = (
                        f"{doc_id!r} not byte-identical after reopen"
                    )
                    return result
                if stored.wrapped_keys != keys_before[doc_id]:
                    result.detail = (
                        f"{doc_id!r} lost acknowledged wrapped keys"
                    )
                    return result
            view = _pull(community, "doctor")
            result.delivered = True
            result.matched_golden = view == golden["doctor"]
            result.ok = result.matched_golden
            if not result.ok:
                result.detail = "post-recovery pull was not golden"
        finally:
            result.fault_log = plan.describe()
            community.close()
    return result


def _scenario_admission_flap(seed: int, fault: str) -> ScenarioResult:
    """A capacity-starved reactor: typed 429s absorbed by retry."""
    result = ScenarioResult("admission-flap", fault, seed, ok=False)
    plan = FaultPlan(seed)
    serving = build_world()
    golden = golden_views(1)
    server = serving.serve(admission=AdmissionPolicy(max_connections=1))
    blocker = RemoteDSP.connect(server.address, timeout=5.0)
    blocker.get_header(DOC_ID)  # the single admitted connection
    release = threading.Timer(0.3, blocker.close)
    release.daemon = True
    release.start()
    client = RemoteDSP.connect(
        server.address,
        timeout=5.0,
        retry=RetryPolicy(
            attempts=12,
            backoff=0.05,
            multiplier=1.3,
            deadline=30.0,
            seed=seed,
        ),
    )
    try:
        attached = Community.attach(client)
        attached.enroll("doctor")
        document = attached.adopt(DOC_ID, "owner")
        view = _pull_attached(attached, document)
        result.delivered = True
        result.matched_golden = view == golden["doctor"]
        result.ok = result.matched_golden and client.retries > 0
        if not result.matched_golden:
            result.detail = "view pulled through the flap was not golden"
        elif client.retries == 0:
            result.detail = "admission control never rejected: no flap"
    finally:
        release.cancel()
        result.fault_log = plan.describe()
        client.close()
        blocker.close()
        serving.close()
    return result


# -- the matrix ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Scenario:
    """One named workload and the fault kinds it composes with."""

    name: str
    faults: tuple[str, ...]
    quick: tuple[str, ...]
    run: Callable[[int, str], ScenarioResult]


SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        "backend-pull",
        ("none", "fail", "stale", "torn"),
        ("fail", "torn"),
        _scenario_backend_pull,
    ),
    Scenario("client-pull", ("none", "fail"), ("fail",), _scenario_client_pull),
    Scenario(
        "card", ("none", "exhaust", "tamper"), ("exhaust",), _scenario_card
    ),
    Scenario(
        "remote-heal",
        ("none", "disconnect", "truncate", "corrupt", "stall"),
        ("disconnect", "corrupt"),
        _scenario_remote_heal,
    ),
    Scenario(
        "revocation-storm",
        ("none", "exhaust", "tamper"),
        ("none", "tamper"),
        _scenario_revocation_storm,
    ),
    Scenario(
        "feed-revoke",
        ("none", "tamper"),
        ("none", "tamper"),
        _scenario_feed_revoke,
    ),
    Scenario("republish-race", ("race",), ("race",), _scenario_republish_race),
    Scenario("stale-cache", ("race",), ("race",), _scenario_stale_cache),
    Scenario(
        "remote-republish",
        ("reconnect-race",),
        ("reconnect-race",),
        _scenario_remote_republish,
    ),
    Scenario(
        "remote-storm",
        ("none", "disconnect"),
        ("disconnect",),
        _scenario_remote_storm,
    ),
    Scenario("crash-reopen", ("crash",), ("crash",), _scenario_crash_reopen),
    Scenario(
        "admission-flap", ("flap",), ("flap",), _scenario_admission_flap
    ),
)


def run_cell(
    scenario: Scenario, fault: str, seed: int, deadline: float = 60.0
) -> ScenarioResult:
    """One matrix cell under a hard watchdog deadline.

    A cell that neither returns nor raises within ``deadline`` seconds
    is reported as a failed (hung) cell -- "no cell may hang" is part
    of the invariant, so a hang can never stall the whole matrix.
    """
    box: list[ScenarioResult] = []

    def target() -> None:
        start = time.monotonic()
        try:
            cell = scenario.run(seed, fault)
        except ReproError as exc:
            cell = ScenarioResult(
                scenario.name,
                fault,
                seed,
                ok=False,
                error=type(exc).__name__,
                detail=f"escaped the scenario harness: {exc}",
            )
        except BaseException as exc:
            cell = ScenarioResult(
                scenario.name,
                fault,
                seed,
                ok=False,
                error=type(exc).__name__,
                detail=f"outside the repro.errors taxonomy: {exc}",
            )
        cell.duration = time.monotonic() - start
        box.append(cell)

    worker = threading.Thread(
        target=target, daemon=True, name=f"chaos-{scenario.name}-{fault}"
    )
    worker.start()
    worker.join(deadline)
    if not box:
        return ScenarioResult(
            scenario.name,
            fault,
            seed,
            ok=False,
            error="Hang",
            detail=f"cell exceeded its {deadline:g}s deadline",
            duration=deadline,
        )
    return box[0]


def run_matrix(
    seeds: Iterable[int] = (0,),
    *,
    quick: bool = False,
    deadline: float = 60.0,
) -> list[ScenarioResult]:
    """The (scenario x fault x seed) grid, every cell deadline-bounded."""
    results: list[ScenarioResult] = []
    for scenario in SCENARIOS:
        for fault in scenario.quick if quick else scenario.faults:
            for seed in seeds:
                results.append(run_cell(scenario, fault, seed, deadline))
    return results
