"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is the single source of truth for *when* a chaos
wrapper misbehaves.  Wrappers (:mod:`repro.chaos.faults`) never roll
dice themselves: at every interception point they ask
``plan.decide(site)`` and either pass the operation through or inject
the fault the plan returned.  Two properties make the engine usable as
a test harness rather than a flake generator:

* **Determinism** -- the decision for the ``n``-th operation at a
  site depends only on ``(seed, site, n, rule)``, never on wall time,
  thread interleaving, or how many *other* sites fired first.  The
  same seed replays the same faults, so every red matrix cell is
  reproducible from its ``(scenario, fault, seed)`` coordinates.
* **Observability** -- every decision (fired or passed) is appended to
  :attr:`FaultPlan.log`, so a failing scenario prints exactly which
  operations were hit (see ``examples/chaos_demo.py``).

Rules target sites by :mod:`fnmatch` pattern (``"backend.*"``,
``"socket.recv"``); they fire at explicit operation indices (``at=``),
with a seeded probability, or on every call (``probability=1.0``),
optionally capped by ``limit``.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field

__all__ = ["FaultEvent", "FaultPlan", "FaultRule"]


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injection rule: *where*, *what*, and *when* to misbehave.

    ``site`` is an :mod:`fnmatch` pattern over wrapper site names
    (``"backend.get"``, ``"client.*"``, ``"socket.recv"``,
    ``"card.process"``).  ``kind`` names the fault the owning wrapper
    understands (documented on each wrapper).  Triggering: ``at``
    lists explicit zero-based operation indices at that site;
    otherwise the rule fires with ``probability`` (seeded,
    deterministic per operation).  ``limit`` caps total firings;
    ``arg`` carries a kind-specific parameter.
    """

    site: str
    kind: str
    at: tuple[int, ...] = ()
    probability: float = 0.0
    limit: int | None = None
    arg: object = None

    def describe(self) -> str:
        when = (
            f"at ops {list(self.at)}"
            if self.at
            else f"p={self.probability:g}"
        )
        cap = f" limit={self.limit}" if self.limit is not None else ""
        return f"{self.site}: {self.kind} ({when}{cap})"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One recorded decision: operation ``index`` at ``site``.

    ``kind`` is ``None`` when the operation passed through clean.
    """

    site: str
    index: int
    kind: str | None

    def __str__(self) -> str:
        verdict = self.kind if self.kind is not None else "ok"
        return f"{self.site}#{self.index}: {verdict}"


@dataclass(slots=True)
class FaultPlan:
    """A seeded schedule of faults shared by every wrapper in a scenario.

    One plan typically spans several wrappers (a faulty backend *and*
    a faulty socket), so a scenario's whole hostile world replays from
    one seed.  Thread-safety note: decisions mutate per-site counters;
    scenarios that drive wrappers from several threads get per-thread
    determinism only if each thread owns distinct sites (the shipped
    scenarios are built that way).
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    log: list[FaultEvent] = field(default_factory=list)
    _counters: dict[str, int] = field(default_factory=dict)
    _fired: dict[int, int] = field(default_factory=dict)

    def __init__(
        self, seed: int = 0, rules: "tuple[FaultRule, ...] | list[FaultRule]" = ()
    ) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self.log = []
        self._counters = {}
        self._fired = {}

    # -- decisions ---------------------------------------------------------

    def decide(self, site: str) -> FaultRule | None:
        """The fault for this operation at ``site``, or ``None``.

        Advances the site's operation counter and records the decision
        in :attr:`log` either way.
        """
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1
        chosen: FaultRule | None = None
        for slot, rule in enumerate(self.rules):
            if not fnmatch.fnmatchcase(site, rule.site):
                continue
            if rule.limit is not None and self._fired.get(slot, 0) >= rule.limit:
                continue
            if rule.at:
                fire = index in rule.at
            else:
                # Keyed RNG: the draw depends only on the coordinates,
                # never on call interleaving across sites or rules.
                draw = random.Random(
                    f"{self.seed}|{site}|{index}|{slot}"
                ).random()
                fire = draw < rule.probability
            if fire:
                self._fired[slot] = self._fired.get(slot, 0) + 1
                chosen = rule
                break
        self.log.append(FaultEvent(site, index, chosen.kind if chosen else None))
        return chosen

    # -- observability -----------------------------------------------------

    @property
    def fired(self) -> list[FaultEvent]:
        """Only the decisions that injected a fault."""
        return [event for event in self.log if event.kind is not None]

    def operations(self, site: str) -> int:
        """How many operations ``site`` has seen."""
        return self._counters.get(site, 0)

    def describe(self) -> str:
        """A readable multi-line fault log (rules, then fired events)."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for rule in self.rules:
            lines.append(f"  rule {rule.describe()}")
        for event in self.fired:
            lines.append(f"  hit  {event}")
        if not self.fired:
            lines.append("  hit  (none)")
        return "\n".join(lines)
