"""Injection wrappers at every trust seam of the system.

Each wrapper delegates to a real component and consults a shared
:class:`~repro.chaos.plan.FaultPlan` before every intercepted
operation.  The wrappers sit exactly where the paper draws its trust
boundaries:

* :class:`FaultyBackend` -- the DSP's *disk* (any
  :class:`~repro.dsp.backends.StoreBackend`): failed reads, stale
  reads, torn writes, and crash-then-reopen for durable backends;
* :class:`FaultyClient` -- the terminal's *network* view of the DSP
  (any :class:`~repro.dsp.client.DSPClient`): failed requests plus a
  ``before`` hook scenarios use to race mutations against an
  in-flight pull;
* :class:`FaultySocket` -- the raw *transport* under
  :class:`~repro.dsp.remote.RemoteDSP`: mid-frame disconnects,
  truncation, byte corruption, stalls past the deadline;
* :class:`FaultyCard` -- the *card* boundary: resource exhaustion and
  tamper status words injected mid-session.

Every injected failure is an exception (or status word) the production
stack already maps into the :mod:`repro.errors` taxonomy; the chaos
suite's invariant is that nothing else ever escapes.
"""

from __future__ import annotations

from typing import Callable

from repro.chaos.plan import FaultPlan, FaultRule
from repro.crypto.container import DocumentContainer, DocumentHeader
from repro.dsp.backends import ShardedBackend, SQLiteBackend, StoreBackend, StoredDocument
from repro.dsp.client import DSPClient
from repro.dsp.wire import DocMeta
from repro.errors import PolicyError, TransportError
from repro.smartcard.apdu import CommandAPDU, ResponseAPDU, StatusWord
from repro.smartcard.card import SmartCard
from repro.smartcard.resources import SimClock

__all__ = [
    "FaultyBackend",
    "FaultyCard",
    "FaultyClient",
    "FaultySocket",
    "InjectedFault",
    "crash_reopen",
]


class InjectedFault(TransportError):
    """An injected infrastructure failure (still a ``TransportError``).

    Distinguishable in tests (``isinstance(exc, InjectedFault)``) while
    remaining inside the taxonomy contract callers program against.
    """


def _injected(site: str, rule: FaultRule) -> InjectedFault:
    return InjectedFault(f"injected {rule.kind} at {site}")


def crash_reopen(backend: StoreBackend) -> StoreBackend:
    """Simulate a process crash: drop the handle, reopen from disk.

    Only durable backends survive: a :class:`SQLiteBackend` reopens
    from its file (exercising WAL recovery), a
    :class:`ShardedBackend` crash-reopens every durable shard.
    Volatile backends raise :class:`~repro.errors.PolicyError` --
    there is nothing to recover.
    """
    if isinstance(backend, SQLiteBackend):
        path = backend.path
        backend.close()
        return SQLiteBackend(path)
    if isinstance(backend, ShardedBackend):
        return ShardedBackend([crash_reopen(shard) for shard in backend.shards])
    if isinstance(backend, FaultyBackend):
        backend.crash()
        return backend
    raise PolicyError(
        f"{type(backend).__name__} is volatile; a crash loses it entirely"
    )


class FaultyBackend:
    """Wraps any :class:`StoreBackend` with plan-driven faults.

    Sites and the kinds they honour:

    * ``backend.get`` -- ``"fail"`` raises :class:`InjectedFault`;
      ``"stale"`` returns the *previous* snapshot of the document (a
      consistent but outdated read, the classic replay an untrusted
      store can mount); ``"delay"`` charges ``delay_seconds`` to the
      clock's ``chaos`` component (no wall sleep).
    * ``backend.put_document`` -- ``"fail"`` raises before writing;
      ``"torn"`` persists a container whose final chunk is truncated,
      then raises to the writer -- the durable state is damaged the
      way a half-applied write damages it, and any reader session must
      end in :class:`~repro.errors.TamperDetected` (chunk MAC) or
      :class:`~repro.errors.TransportError` (missing chunk), never a
      partial view.
    * ``backend.put_rules`` / ``backend.put_wrapped_key`` /
      ``backend.remove_wrapped_key`` -- ``"fail"`` raises before the
      mutation.

    :meth:`crash` closes and reopens a durable inner backend in place
    (the wrapper keeps its identity, so a :class:`~repro.dsp.store.DSPStore`
    holding it sees the recovered state).
    """

    def __init__(
        self,
        inner: StoreBackend,
        plan: FaultPlan,
        *,
        clock: SimClock | None = None,
        delay_seconds: float = 0.05,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.delay_seconds = delay_seconds
        self._previous: dict[str, StoredDocument] = {}

    # -- fault helpers -----------------------------------------------------

    def _charge_delay(self) -> None:
        if self.clock is not None:
            self.clock.add("chaos", self.delay_seconds)

    @staticmethod
    def _tear(container: DocumentContainer) -> DocumentContainer:
        chunks = list(container.chunks)
        if chunks:
            last = chunks[-1]
            chunks[-1] = last[: max(0, len(last) // 2)]
        return DocumentContainer(header=container.header, chunks=tuple(chunks))

    # -- StoreBackend ------------------------------------------------------

    def put_document(
        self,
        container: DocumentContainer,
        *,
        keep_rules: bool = False,
        keep_keys: bool = False,
    ) -> None:
        site = "backend.put_document"
        rule = self.plan.decide(site)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)
        if rule is not None and rule.kind == "torn":
            # A half-applied overwrite: the damaged container lands,
            # but the old rule records and grants survive (the clean
            # path clears them as part of the same logical write).
            # Readers therefore walk into the truncated chunk instead
            # of bouncing off an empty deny-all policy.
            self.inner.put_document(
                self._tear(container), keep_rules=True, keep_keys=True
            )
            raise _injected(site, rule)
        if rule is not None and rule.kind == "delay":
            self._charge_delay()
        self.inner.put_document(
            container, keep_rules=keep_rules, keep_keys=keep_keys
        )

    def get(self, doc_id: str) -> StoredDocument:
        site = "backend.get"
        rule = self.plan.decide(site)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)
        if rule is not None and rule.kind == "stale":
            stale = self._previous.get(doc_id)
            if stale is not None:
                return stale
        if rule is not None and rule.kind == "delay":
            self._charge_delay()
        stored = self.inner.get(doc_id)
        # Remember the last *live* snapshot so a later "stale" fault
        # serves a consistent old version, not a fabricated mix.
        self._previous[doc_id] = StoredDocument(
            container=stored.container,
            rule_records=list(stored.rule_records),
            rules_version=stored.rules_version,
            wrapped_keys=dict(stored.wrapped_keys),
        )
        return stored

    def put_rules(self, doc_id: str, records: list[bytes], version: int) -> None:
        site = "backend.put_rules"
        rule = self.plan.decide(site)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)
        self.inner.put_rules(doc_id, records, version)

    def put_wrapped_key(self, doc_id: str, recipient: str, blob: bytes) -> None:
        site = "backend.put_wrapped_key"
        rule = self.plan.decide(site)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)
        self.inner.put_wrapped_key(doc_id, recipient, blob)

    def remove_wrapped_key(self, doc_id: str, recipient: str) -> bool:
        site = "backend.remove_wrapped_key"
        rule = self.plan.decide(site)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)
        return self.inner.remove_wrapped_key(doc_id, recipient)

    def document_ids(self) -> list[str]:
        return self.inner.document_ids()

    def contains(self, doc_id: str) -> bool:
        return self.inner.contains(doc_id)

    def close(self) -> None:
        self.inner.close()

    # -- durable extras ----------------------------------------------------

    def put_meta(self, key: str, value: str) -> None:
        put_meta = getattr(self.inner, "put_meta", None)
        if put_meta is None:
            raise PolicyError("meta storage needs a durable inner backend")
        put_meta(key, value)

    def get_meta(self, key: str) -> str | None:
        get_meta = getattr(self.inner, "get_meta", None)
        if get_meta is None:
            return None
        value: str | None = get_meta(key)
        return value

    def crash(self) -> None:
        """Crash-reopen the inner backend in place (durable inners only)."""
        self.inner = crash_reopen(self.inner)
        self._previous.clear()


class FaultyClient:
    """Wraps any :class:`DSPClient` with plan-driven request faults.

    Sites ``client.get_header`` / ``client.get_chunk`` /
    ``client.get_chunk_range`` / ``client.get_rules`` /
    ``client.get_wrapped_key`` / ``client.get_meta`` honour ``"fail"``
    (raises
    :class:`InjectedFault` before the request leaves).  The ``before``
    hook -- called as ``before(site, index)`` ahead of every delegated
    request -- is how scenarios race a mutation (republish, revoke)
    against a precise point of an in-flight pull.
    """

    def __init__(
        self,
        inner: DSPClient,
        plan: FaultPlan,
        *,
        before: "Callable[[str, int], None] | None" = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.before = before
        self.clock = inner.clock

    def _gate(self, site: str) -> None:
        index = self.plan.operations(site)
        rule = self.plan.decide(site)
        if self.before is not None:
            self.before(site, index)
        if rule is not None and rule.kind == "fail":
            raise _injected(site, rule)

    def get_header(self, doc_id: str) -> DocumentHeader:
        self._gate("client.get_header")
        return self.inner.get_header(doc_id)

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        self._gate("client.get_chunk")
        return self.inner.get_chunk(doc_id, index)

    def get_chunk_range(self, doc_id: str, start: int, count: int) -> list[bytes]:
        self._gate("client.get_chunk_range")
        return self.inner.get_chunk_range(doc_id, start, count)

    def get_rules(self, doc_id: str) -> tuple[int, list[bytes]]:
        self._gate("client.get_rules")
        return self.inner.get_rules(doc_id)

    def get_wrapped_key(self, doc_id: str, recipient: str) -> bytes:
        self._gate("client.get_wrapped_key")
        return self.inner.get_wrapped_key(doc_id, recipient)

    def get_meta(self, doc_id: str, subject: str) -> DocMeta:
        self._gate("client.get_meta")
        return self.inner.get_meta(doc_id, subject)


class FaultySocket:
    """Wraps a connected socket with plan-driven transport faults.

    Plugs in under :class:`~repro.dsp.remote.RemoteDSP` via its
    ``socket_wrapper`` hook, so *reconnected* sockets are wrapped too.
    Sites and kinds:

    * ``socket.send`` -- ``"disconnect"`` closes the peer and raises
      ``ConnectionResetError`` (a request that dies leaving the
      terminal).
    * ``socket.recv`` -- ``"disconnect"`` closes mid-stream (a clean
      EOF on a frame boundary or mid-frame, whatever the peer had
      sent); ``"truncate"`` delivers only half of one read, then EOF
      forever -- a response cut mid-frame; ``"corrupt"`` flips one
      byte of the read (``arg`` picks the offset, default 0);
      ``"stall"`` raises ``TimeoutError`` immediately -- the
      deterministic stand-in for a peer that stops talking until the
      socket deadline fires (no wall-clock sleep in tests).

    Only the socket surface :mod:`repro.dsp.remote` touches is
    implemented (``sendall``/``recv``/``settimeout``/``close``).
    """

    def __init__(self, sock: object, plan: FaultPlan) -> None:
        self.inner = sock
        self.plan = plan
        self._dead = False

    # -- faulted operations ------------------------------------------------

    def sendall(self, data: bytes) -> None:
        rule = self.plan.decide("socket.send")
        if rule is not None and rule.kind in ("disconnect", "reset"):
            self.close()
            raise ConnectionResetError("injected disconnect on send")
        if rule is not None and rule.kind == "stall":
            raise TimeoutError("injected stall on send outlived the deadline")
        self.inner.sendall(data)  # type: ignore[attr-defined]

    def recv(self, bufsize: int) -> bytes:
        if self._dead:
            return b""
        rule = self.plan.decide("socket.recv")
        if rule is not None and rule.kind == "disconnect":
            self.close()
            return b""
        if rule is not None and rule.kind == "stall":
            raise TimeoutError("injected stall on recv outlived the deadline")
        data: bytes = self.inner.recv(bufsize)  # type: ignore[attr-defined]
        if rule is not None and rule.kind == "truncate":
            self._dead = True
            half = data[: max(1, len(data) // 2)] if data else b""
            try:
                self.inner.close()  # type: ignore[attr-defined]
            except OSError:
                pass
            return half
        if rule is not None and rule.kind == "corrupt" and data:
            offset = rule.arg if isinstance(rule.arg, int) else 0
            offset %= len(data)
            flipped = bytes([data[offset] ^ 0xFF])
            data = data[:offset] + flipped + data[offset + 1:]
        return data

    # -- passthrough surface -----------------------------------------------

    def settimeout(self, timeout: float | None) -> None:
        self.inner.settimeout(timeout)  # type: ignore[attr-defined]

    def close(self) -> None:
        self._dead = True
        try:
            self.inner.close()  # type: ignore[attr-defined]
        except OSError:
            pass


class FaultyCard:
    """Wraps a :class:`SmartCard`, injecting hostile status words.

    Site ``card.process``: ``"exhaust"`` answers ``0x6581`` (memory
    failure -- the proxy maps it to
    :class:`~repro.terminal.proxy.CardOutOfResources`, a
    :class:`~repro.errors.ResourceExhausted`); ``"tamper"`` answers
    ``0x6982`` (:class:`~repro.terminal.proxy.CardTampered`, a
    :class:`~repro.errors.TamperDetected`).  Every other attribute
    (``soe``, ``applet``, ``use_registry``) delegates, so the wrapper
    drops into :class:`~repro.terminal.proxy.CardProxy` unchanged.
    """

    def __init__(self, inner: SmartCard, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def process(self, command: CommandAPDU) -> ResponseAPDU:
        rule = self.plan.decide("card.process")
        if rule is not None and rule.kind == "exhaust":
            return ResponseAPDU(StatusWord.MEMORY_FAILURE)
        if rule is not None and rule.kind == "tamper":
            return ResponseAPDU(StatusWord.SECURITY_STATUS_NOT_SATISFIED)
        return self.inner.process(command)

    def __getattr__(self, name: str) -> object:
        return getattr(self.inner, name)
