"""Chaos engine: seeded fault injection at every trust seam.

The package has three layers:

* :mod:`repro.chaos.plan` -- deterministic, seedable
  :class:`FaultPlan` schedules (*when* to misbehave);
* :mod:`repro.chaos.faults` -- injection wrappers for the DSP disk,
  the client transport, the raw socket, and the card boundary
  (*how* to misbehave);
* :mod:`repro.chaos.scenarios` -- hostile-world scenarios composing
  faults with live workloads, and the deadline-bounded
  (scenario x fault x seed) matrix runner.

The invariant the whole package enforces: every injected failure
surfaces as its documented :mod:`repro.errors` type, any delivered
view is byte-identical to a fault-free golden, and nothing ever hangs.
"""

from repro.chaos.faults import (
    FaultyBackend,
    FaultyCard,
    FaultyClient,
    FaultySocket,
    InjectedFault,
    crash_reopen,
)
from repro.chaos.plan import FaultEvent, FaultPlan, FaultRule
from repro.chaos.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    build_world,
    golden_views,
    run_cell,
    run_matrix,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultRule",
    "FaultyBackend",
    "FaultyCard",
    "FaultyClient",
    "FaultySocket",
    "InjectedFault",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "build_world",
    "crash_reopen",
    "golden_views",
    "run_cell",
    "run_matrix",
]
