"""Differential: facade scenarios vs the legacy hand-wired stack.

The acceptance bar of the API redesign: rebuilding the quickstart
scenarios on :mod:`repro.community` must produce byte-identical
authorized views AND bit-identical ``SimClock`` component totals
versus the legacy ``Publisher``/``Terminal`` wiring -- and the legacy
constructors must keep working behind ``DeprecationWarning`` shims.
"""

import warnings

import pytest

from repro.community import Community
from repro.core.rules import AccessRule, RuleSet
from repro.crypto.pki import SimulatedPKI
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.terminal.api import AuthorizedResult, Publisher
from repro.terminal.session import Terminal
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.parser import parse_string

DOCUMENT = (
    "<hospital>"
    "<patient><name>Smith</name><diagnosis>flu</diagnosis>"
    "<billing><amount>120</amount></billing></patient>"
    "<patient><name>Jones</name><diagnosis>ok</diagnosis>"
    "<billing><amount>80</amount></billing></patient>"
    "</hospital>"
)

RULES = [
    ("+", "doctor", "/hospital"),
    ("-", "doctor", "//billing"),
    ("+", "accountant", "//billing"),
    ("+", "accountant", "//patient/name"),
]


def _ruleset():
    return RuleSet([AccessRule.parse(s, u, p) for s, u, p in RULES])


def _run_legacy():
    """The quickstart scenario, wired by hand (persistent terminals)."""
    pki = SimulatedPKI()
    for principal in ("owner", "doctor", "accountant"):
        pki.enroll(principal)
    store = DSPStore()
    dsp = DSPServer(store)
    publisher = Publisher("owner", store, pki, _warn=False)
    publisher.publish(
        "records", parse_string(DOCUMENT), _ruleset(),
        ["doctor", "accountant"],
    )
    terminals = {
        user: Terminal(user, dsp, pki, _warn=False)
        for user in ("doctor", "accountant")
    }
    views = {}
    for user in ("doctor", "accountant"):
        result, __ = terminals[user].query("records", owner="owner")
        views[user] = result.xml
    result, __ = terminals["doctor"].query("records", query="//diagnosis")
    views["doctor//diagnosis"] = result.xml
    # Batched transport on the same card (the legacy way: poke the
    # proxy's transfer plan).
    terminals["doctor"].proxy.transfer = TransferPolicy.windowed(8)
    result, __ = terminals["doctor"].query("records")
    views["doctor windowed"] = result.xml
    return views, dsp.clock.snapshot()


def _run_facade():
    """The same scenario through repro.community."""
    community = Community()
    owner = community.enroll("owner")
    doctor = community.enroll("doctor")
    accountant = community.enroll("accountant")
    doc = owner.publish(
        DOCUMENT, _ruleset(), to=[doctor, accountant], doc_id="records"
    )
    views = {}
    for member in (doctor, accountant):
        with member.open(doc) as session:
            views[member.name] = session.query().text()
    with doctor.open(doc) as session:
        views["doctor//diagnosis"] = session.query("//diagnosis").text()
    with doctor.open(doc, transfer=TransferPolicy.windowed(8)) as session:
        views["doctor windowed"] = session.query().text()
    return views, community.clock.snapshot()


def test_views_byte_identical_and_clock_bit_identical():
    legacy_views, legacy_clock = _run_legacy()
    facade_views, facade_clock = _run_facade()
    assert facade_views == legacy_views
    # Bit-for-bit: the facade composes exactly the legacy operations,
    # so every simulated-clock component matches to the last float bit.
    assert facade_clock == legacy_clock


def test_legacy_constructors_warn_but_work():
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("u")
    store = DSPStore()
    dsp = DSPServer(store)
    with pytest.warns(DeprecationWarning, match="Publisher"):
        publisher = Publisher("owner", store, pki)
    publisher.publish(
        "d",
        parse_string("<r><a>x</a></r>"),
        RuleSet([AccessRule.parse("+", "u", "/r")]),
        ["u"],
    )
    with pytest.warns(DeprecationWarning, match="Terminal"):
        terminal = Terminal("u", dsp, pki)
    result, __ = terminal.query("d", owner="owner")
    assert result.xml == "<r><a>x</a></r>"


def test_complete_view_is_a_deprecated_wrapper():
    result = AuthorizedResult(xml="<r></r>", fragments=[(0, "<a/>")])
    with pytest.warns(DeprecationWarning, match="ViewStream"):
        assert result.complete_view == "<r></r><a/>"


def test_facade_itself_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        community = Community()
        owner = community.enroll("owner")
        reader = community.enroll("reader")
        doc = owner.publish(
            "<r><a>x</a></r>", [("+", "reader", "/r")], to=[reader]
        )
        with reader.open(doc) as session:
            assert session.query().text() == "<r><a>x</a></r>"
