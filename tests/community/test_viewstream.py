"""Streaming semantics of ViewStream: laziness, settling, bridging."""

import pytest

from repro.community import Community, ViewStream
from repro.smartcard.applet import PendingStrategy
from repro.terminal.proxy import QueryOutcome, ViewPiece
from repro.terminal.transfer import TransferPolicy
from repro.xmlstream.events import OpenEvent


def _flat_community(n_items=40):
    community = Community()
    owner = community.enroll("owner")
    reader = community.enroll("reader")
    body = "".join(f"<item><a>data {i}</a></item>" for i in range(n_items))
    doc = owner.publish(
        f"<list>{body}</list>", [("+", "reader", "/list")], to=[reader]
    )
    return community, reader, doc


def test_first_piece_arrives_before_full_pull():
    """Acceptance: the stream yields output before the document has
    been pulled -- probed on the DSP's served-chunk order."""
    community, reader, doc = _flat_community()
    total = doc.container.header.chunk_count
    assert total >= 8
    with reader.open(doc) as session:
        stream = session.query()
        first = next(iter(stream))
        assert first.kind == "view"
        assert first.text.startswith("<list>")
        served_at_first = community.dsp.chunks_served
        assert served_at_first < total, (
            "first fragment must not wait for the whole document"
        )
        # Fetch order probe: the chunks served so far are a strict
        # prefix of the document.
        assert community.dsp.served_ranges[-1][1] < total - 1
        full = stream.text()
    assert community.dsp.chunks_served == total
    assert full == stream.text()  # materializing again is stable


def test_incremental_pieces_join_to_the_buffered_view():
    __, reader, doc = _flat_community()
    with reader.open(doc, transfer=TransferPolicy.windowed(4)) as session:
        stream = session.query()
        joined = "".join(piece.text for piece in stream if piece.kind == "view")
        assert joined == stream.result().xml
        assert len(stream.pieces) > 1  # genuinely incremental


def test_events_materializer_roundtrips():
    __, reader, doc = _flat_community(n_items=3)
    with reader.open(doc) as session:
        events = session.query().events()
    assert events[0] == OpenEvent("list")
    opens = [e for e in events if isinstance(e, OpenEvent)]
    assert [e.tag for e in opens].count("item") == 3


def test_refetch_fragments_settle_by_document_position():
    """REFETCH sessions deliver pending subtrees out of the main flow;
    the stream orders them by absolute document position."""
    community = Community()
    owner = community.enroll("owner")
    reader = community.enroll("reader", ram_quota=None)
    filler = "x" * 60
    notes = "".join(
        f"<note><body>note {i} {filler}</body><to>reader</to></note>"
        for i in range(4)
    )
    # The [to = ...] predicate resolves only after the body streamed,
    # so under REFETCH every body is skipped and replayed afterwards.
    doc = owner.publish(
        f"<notes>{notes}</notes>",
        [("+", "reader", '//note[to = "reader"]/body')],
        to=[reader],
        chunk_size=32,
    )
    with reader.open(doc) as session:
        stream = session.query(strategy=PendingStrategy.REFETCH)
        fragments = stream.fragments
    assert stream.metrics.refetch_count >= 2, "scenario must refetch"
    positions = [piece.position for piece in fragments]
    assert positions == sorted(positions)
    texts = [piece.text for piece in fragments]
    assert texts == sorted(texts, key=lambda t: int(t.split()[1]))
    # And the settled text is the main view plus fragments in order.
    assert stream.text() == stream.result().xml + "".join(texts)


def test_viewstream_settles_out_of_order_fragments():
    """Unit: a transport replaying refetches out of order still
    settles by document position."""
    pieces = [
        ViewPiece("view", "<r></r>", position=0),
        ViewPiece("fragment", "<late/>", position=900, entry_id=2),
        ViewPiece("fragment", "<early/>", position=100, entry_id=0),
        ViewPiece("fragment", "<mid/>", position=500, entry_id=1),
    ]
    outcome = QueryOutcome(xml="<r></r>")
    stream = ViewStream(iter(pieces), outcome)
    assert stream.text() == "<r></r><early/><mid/><late/>"


def test_authorized_result_settles_out_of_order_fragments():
    """Satellite: complete_view no longer concatenates arrival order."""
    from repro.terminal.api import AuthorizedResult

    result = AuthorizedResult(
        xml="<r></r>",
        fragments=[(2, "<late/>"), (0, "<early/>"), (1, "<mid/>")],
    )
    with pytest.warns(DeprecationWarning):
        assert result.complete_view == "<r></r><early/><mid/><late/>"


def test_metrics_available_after_exhaustion():
    __, reader, doc = _flat_community(n_items=5)
    with reader.open(doc) as session:
        stream = session.query()
        metrics = stream.metrics  # implicit finish()
    assert metrics.chunks_sent > 0
    assert metrics.clock.total() > 0
    assert stream.closed


def test_transfer_override_never_leaks_into_the_terminal():
    """A session's transfer plan rides the query, not the proxy: a
    failed open leaves nothing behind, and overlapping sessions each
    keep their own plan."""
    community, reader, doc = _flat_community()
    default = reader.terminal.proxy.transfer
    # Failed open (no key) with an override: terminal untouched.
    eve = community.enroll("eve")
    from repro.errors import KeyNotGranted

    with pytest.raises(KeyNotGranted):
        eve.open(doc, transfer=TransferPolicy.windowed(8))
    assert reader.terminal.proxy.transfer is default
    # Overlapping sessions: closing the first must not clobber the
    # second's plan nor pin the terminal afterwards.
    s1 = reader.open(doc, transfer=TransferPolicy.windowed(2))
    s2 = reader.open(doc, transfer=TransferPolicy.windowed(8))
    requests_w2 = s1.query().metrics.dsp_requests
    s1.close()
    requests_w8 = s2.query().metrics.dsp_requests
    s2.close()
    assert requests_w8 < requests_w2  # s2 really ran at window 8
    assert reader.terminal.proxy.transfer is default
    with reader.open(doc) as session:
        sequential = session.query().metrics.dsp_requests
    assert sequential > requests_w2  # back to one request per chunk


def test_session_close_drains_inflight_streams():
    community, reader, doc = _flat_community()
    total = doc.container.header.chunk_count
    with reader.open(doc) as session:
        stream = session.query()
        next(iter(stream))  # abandon mid-stream
    assert community.dsp.chunks_served == total  # close() finished it
    assert stream.closed
