"""The error taxonomy and the satellite's typed-raise sites."""

import pytest

from repro.community import Community
from repro.crypto.container import IntegrityError
from repro.crypto.keys import KeyRing
from repro.crypto.modes import PaddingError
from repro.crypto.pki import SimulatedPKI
from repro.dsp.store import DSPStore
from repro.errors import (
    AccessDenied,
    DocumentLocked,
    KeyNotGranted,
    PolicyError,
    ReproError,
    ResourceExhausted,
    TamperDetected,
    TransportError,
    UnknownDocument,
)
from repro.smartcard.memory import CardMemoryError
from repro.smartcard.secure_channel import SecureChannelError
from repro.terminal.api import Publisher
from repro.terminal.proxy import CardOutOfResources, CardTampered, ProxyError


def test_hierarchy_shape():
    for leaf in (
        AccessDenied,
        DocumentLocked,
        KeyNotGranted,
        TamperDetected,
        PolicyError,
        TransportError,
        ResourceExhausted,
    ):
        assert issubclass(leaf, ReproError)
    assert issubclass(KeyNotGranted, AccessDenied)
    assert issubclass(UnknownDocument, PolicyError)


def test_layer_exceptions_join_the_taxonomy():
    assert issubclass(IntegrityError, TamperDetected)
    assert issubclass(SecureChannelError, TamperDetected)
    assert issubclass(PaddingError, TamperDetected)
    assert issubclass(PaddingError, ValueError)  # compatibility
    assert issubclass(CardMemoryError, ResourceExhausted)
    assert issubclass(CardMemoryError, MemoryError)  # compatibility
    assert issubclass(ProxyError, TransportError)
    assert issubclass(CardTampered, TamperDetected)
    assert issubclass(CardOutOfResources, ResourceExhausted)
    assert issubclass(KeyNotGranted, KeyError)  # compatibility
    assert issubclass(UnknownDocument, KeyError)  # compatibility


def test_publisher_update_rules_names_the_document():
    publisher = Publisher("owner", DSPStore(), SimulatedPKI(), _warn=False)
    with pytest.raises(PolicyError) as info:
        publisher.update_rules("ghost", [])
    assert "'ghost'" in str(info.value) and "'owner'" in str(info.value)
    assert info.value.doc_id == "ghost"
    with pytest.raises(PolicyError, match="'ghost'"):
        publisher.secret_for("ghost")
    with pytest.raises(PolicyError, match="'ghost'"):
        publisher.grant_access("ghost", "anyone")


def test_dsp_wrapped_key_names_doc_and_subject():
    community = Community()
    owner = community.enroll("owner")
    community.enroll("reader")
    owner.publish("<r/>", [], to=[], doc_id="d")
    with pytest.raises(KeyNotGranted) as info:
        community.dsp.get_wrapped_key("d", "reader")
    message = str(info.value)
    assert "'d'" in message and "'reader'" in message
    assert info.value.doc_id == "d"
    assert info.value.subject == "reader"
    # Unknown document id: PolicyError branch of the taxonomy.
    with pytest.raises(UnknownDocument, match="'ghost'"):
        community.dsp.get_wrapped_key("ghost", "reader")


def test_terminal_query_on_locked_document():
    community = Community()
    owner = community.enroll("owner")
    reader = community.enroll("reader")
    owner.publish("<r/>", [("+", "reader", "/r")], to=[reader], doc_id="d")
    terminal = reader.terminal
    with pytest.raises(DocumentLocked) as info:
        terminal.query("d")  # never unlocked, no owner given
    message = str(info.value)
    assert "'d'" in message and "'reader'" in message
    assert info.value.doc_id == "d"
    assert info.value.subject == "reader"
    # Unlocking fixes it.
    result, __ = terminal.query("d", owner="owner")
    assert result.xml == "<r></r>"


def test_keyring_and_pki_raise_key_not_granted():
    ring = KeyRing()
    with pytest.raises(KeyNotGranted, match="'ghost'"):
        ring.keys_for("ghost")
    pki = SimulatedPKI()
    with pytest.raises(KeyNotGranted, match="'nobody'"):
        pki.public_key("nobody")
    pki.enroll("a")
    with pytest.raises(KeyNotGranted, match="'nobody'"):
        pki.wrap_secret("a", "nobody", b"s" * 16)


def test_typed_key_errors_render_their_message():
    # KeyError would repr() the argument; the taxonomy classes must
    # stringify readably for user-facing reports.
    error = KeyNotGranted("no key for 'x'", doc_id="x")
    assert str(error) == "no key for 'x'"
    error2 = UnknownDocument("no document 'y'", doc_id="y")
    assert str(error2) == "no document 'y'"


def test_one_except_ladder_covers_the_facade():
    community = Community()
    owner = community.enroll("owner")
    doc = owner.publish("<r/>", [], to=[])
    eve = community.enroll("eve")
    caught = []
    for action in (
        lambda: eve.open(doc),
        lambda: community.member("ghost"),
        lambda: community.document("ghost"),
    ):
        try:
            action()
        except ReproError as error:
            caught.append(type(error).__name__)
    assert caught == ["KeyNotGranted", "PolicyError", "UnknownDocument"]
