"""Push/carousel dissemination through community.channel(...)."""

import pytest

from repro.community import Community
from repro.core.nfa import compile_call_count
from repro.errors import PolicyError, ResourceExhausted, TamperDetected
from repro.terminal.transfer import TransferPolicy

TIER_RULES = [("+", "viewers", "/tv"), ("-", "viewers", "//adult")]
VIEWERS = frozenset({"viewers"})


def _broadcast_community(n_subscribers, cycles=1, transfer=None):
    community = Community()
    owner = community.enroll("owner")
    members = [
        community.enroll(f"sub{i}", strict_memory=False)
        for i in range(n_subscribers)
    ]
    body = "".join(
        f"<show><title>t{i}</title><adult>x{i}</adult></show>"
        for i in range(10)
    )
    doc = owner.publish(
        f"<tv>{body}</tv>", TIER_RULES, to=members, doc_id="tv"
    )
    channel = community.channel(doc)
    handles = [
        channel.subscribe(member, groups=VIEWERS, transfer=transfer)
        for member in members
    ]
    return community, channel, handles


def test_channel_is_cached_per_document():
    community, channel, __ = _broadcast_community(1)
    assert community.channel("tv") is channel
    assert community.channel(community.document("tv")) is channel


def test_broadcast_filters_per_card_and_charges_once():
    __, channel, handles = _broadcast_community(3)
    channel.broadcast()
    for handle in handles:
        assert handle.ok
        handle.require_ok()  # no exception
        assert "<title>" in handle.view
        assert "<adult>" not in handle.view
    # Broadcast bytes are audience-independent: sent exactly once.
    container = channel.document.container
    sent = channel.broadcast_channel.bytes_broadcast
    assert sent < 2 * container.stored_size


def test_ten_subscriber_broadcast_compiles_nothing_extra():
    """Acceptance: one shared evaluation pass -- a 10-subscriber
    broadcast adds ZERO compile_path calls over a 1-subscriber one."""
    __, channel_one, __ = _broadcast_community(1)
    before = compile_call_count()
    channel_one.broadcast()
    compiles_for_one = compile_call_count() - before

    __, channel_ten, handles = _broadcast_community(10)
    before = compile_call_count()
    channel_ten.broadcast()
    compiles_for_ten = compile_call_count() - before

    assert all(handle.ok for handle in handles)
    assert compiles_for_ten == compiles_for_one


def test_preview_matches_every_card_in_one_pass():
    __, channel, handles = _broadcast_community(5)
    before = compile_call_count()
    preview = channel.preview()
    channel.broadcast()
    assert compile_call_count() - before <= 2  # tier compiled once, shared
    for handle in handles:
        assert handle.view == preview[handle.member.name]


def test_carousel_cycles_and_late_joiner():
    community, channel, handles = _broadcast_community(1)
    latecomer = community.enroll("latecomer", strict_memory=False)
    channel.document.grant(latecomer)
    late = channel.subscribe(latecomer, groups=VIEWERS, late=True)
    channel.broadcast(cycles=2)
    assert channel.cycles_sent == 2
    assert late.ok
    assert late.view == handles[0].view


def test_batched_subscriber_transport_is_view_identical():
    __, seq_channel, sequential = _broadcast_community(1)
    __, batch_channel, batched = _broadcast_community(
        1, transfer=TransferPolicy(window=4, apdu_batch=4)
    )
    seq_channel.broadcast()
    batch_channel.broadcast()
    assert batched[0].ok and sequential[0].ok
    assert batched[0].view == sequential[0].view
    assert batched[0].metrics.apdu_count < sequential[0].metrics.apdu_count


def test_subscribing_the_same_member_twice_is_refused():
    community, channel, __ = _broadcast_community(1)
    with pytest.raises(PolicyError, match="already subscribed"):
        channel.subscribe(community.member("sub0"), groups=VIEWERS)


def test_exhausted_subscriber_card_raises_resource_exhausted():
    community = Community()
    owner = community.enroll("owner")
    # A quota even the compiled automata cannot fit into: the card
    # reports MEMORY_FAILURE (0x6581) on the first chunk.
    tiny = community.enroll("tiny", ram_quota=16, strict_memory=True)
    body = "".join(f"<show><title>t{i}</title></show>" for i in range(12))
    doc = owner.publish(
        f"<tv>{body}</tv>", [("+", "tiny", "//show/title")], to=[tiny],
        doc_id="tv",
    )
    channel = community.channel(doc)
    handle = channel.subscribe(tiny)
    channel.broadcast()
    assert not handle.ok
    with pytest.raises(ResourceExhausted):
        handle.require_ok()


def test_tampered_broadcast_raises_typed_error():
    __, channel, handles = _broadcast_community(1)

    def corrupt(kind, index, payload):
        if kind == "chunk" and index == 2:
            return bytes([payload[0] ^ 0xFF]) + payload[1:]
        return payload

    channel.set_tamper(corrupt)
    channel.broadcast()
    handle = handles[0]
    assert not handle.ok
    with pytest.raises(TamperDetected, match="0x6982"):
        handle.require_ok()
