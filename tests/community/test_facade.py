"""Handle-model behavior of the Community facade."""

import pytest

from repro.community import Community, Document, Member
from repro.errors import (
    AccessDenied,
    KeyNotGranted,
    PolicyError,
    ReproError,
    UnknownDocument,
)

DOC = "<notes><work>plan</work><diary>secret</diary></notes>"
RULES = [("+", "bob", "/notes"), ("-", "bob", "//diary")]


def _community():
    community = Community()
    alice = community.enroll("alice")
    bob = community.enroll("bob")
    return community, alice, bob


def test_enroll_is_idempotent_and_typed():
    community, alice, __ = _community()
    assert community.enroll("alice") is alice
    assert isinstance(alice, Member)
    with pytest.raises(PolicyError, match="card configuration"):
        community.enroll("alice", ram_quota=64)
    with pytest.raises(PolicyError, match="'mallory'"):
        community.member("mallory")


def test_publish_returns_document_handle():
    community, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob])
    assert isinstance(doc, Document)
    assert doc.owner is alice
    assert doc.recipients == ["bob"]
    assert community.document(doc.doc_id) is doc
    assert doc.receipt.keys_distributed == 1
    with pytest.raises(UnknownDocument):
        community.document("nope")


def test_auto_doc_ids_are_deterministic():
    community, alice, bob = _community()
    first = alice.publish(DOC, RULES, to=[bob])
    second = alice.publish(DOC, RULES, to=[bob])
    assert first.doc_id == "alice-doc-1"
    assert second.doc_id == "alice-doc-2"


def test_open_and_query_through_the_handle():
    __, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob])
    with bob.open(doc) as session:
        assert session.query().text() == "<notes><work>plan</work></notes>"
    # By id string too.
    with bob.open(doc.doc_id) as session:
        assert session.query().text() == "<notes><work>plan</work></notes>"


def test_update_rules_reseals_nothing_but_rules():
    __, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob])
    receipt = doc.update_rules([("+", "bob", "/notes")])
    assert receipt.document_bytes_encrypted == 0
    assert receipt.keys_distributed == 0
    assert receipt.rule_bytes_encrypted > 0
    with bob.open(doc) as session:
        view = session.query().text()
    assert "<diary>" in view  # the deny is gone


def test_grant_and_revoke():
    community, alice, __ = _community()
    carol = community.enroll("carol")
    doc = alice.publish(DOC, [("+", "carol", "/notes")], to=[])
    with pytest.raises(KeyNotGranted) as info:
        carol.open(doc)
    assert doc.doc_id in str(info.value) and "'carol'" in str(info.value)
    assert isinstance(info.value, AccessDenied)  # taxonomy: still denied
    doc.grant(carol)
    assert "carol" in doc.recipients
    with carol.open(doc) as session:
        assert "<work>" in session.query().text()
    assert doc.revoke(carol) is True
    assert doc.revoke(carol) is False
    assert "carol" not in doc.recipients
    # A fresh member (fresh card) can no longer unlock.
    community2, alice2, bob2 = _community()
    doc2 = alice2.publish(DOC, RULES, to=[bob2])
    doc2.revoke(bob2)
    with pytest.raises(KeyNotGranted):
        bob2.open(doc2)


def test_publish_ownership_is_enforced():
    __, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob], doc_id="shared")
    with pytest.raises(PolicyError, match="belongs to"):
        bob.publish(DOC, RULES, to=[], doc_id="shared")
    # The owner republishing the same id updates the handle in place.
    again = alice.publish(
        "<notes><work>v2</work></notes>", RULES, to=[bob], doc_id="shared"
    )
    assert again is doc
    with bob.open(doc) as session:
        assert session.query().text() == "<notes><work>v2</work></notes>"


def test_unenrolled_recipient_is_policy_error():
    __, alice, __ = _community()
    with pytest.raises(PolicyError, match="'zoe'"):
        alice.publish(DOC, RULES, to=["zoe"])


def test_closed_session_refuses_queries():
    __, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob])
    with bob.open(doc) as session:
        session.query().finish()
    with pytest.raises(PolicyError, match="closed"):
        session.query()


def test_everything_is_a_repro_error():
    community, alice, bob = _community()
    doc = alice.publish(DOC, RULES, to=[bob])
    for exc in (PolicyError, UnknownDocument, KeyNotGranted):
        assert issubclass(exc, ReproError)
    # The facade never leaks a bare KeyError message: the typed errors
    # stringify as their message even though they remain KeyErrors.
    try:
        community.document("ghost")
    except UnknownDocument as error:
        assert str(error) == "the store holds no document 'ghost'" or (
            "ghost" in str(error)
        )
        assert isinstance(error, KeyError)
    assert doc is not None
