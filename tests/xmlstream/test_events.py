"""Unit tests for the event model and stream validation."""

import pytest

from repro.xmlstream.events import (
    CloseEvent,
    EventStreamError,
    OpenEvent,
    ValueEvent,
    event_size,
    events_to_paths,
    validate_event_stream,
)


def test_open_event_attribute_lookup():
    event = OpenEvent("a", (("x", "1"), ("y", "2")))
    assert event.attribute("x") == "1"
    assert event.attribute("missing") is None
    assert event.attribute("missing", "d") == "d"


def test_events_are_hashable_and_comparable():
    assert OpenEvent("a") == OpenEvent("a")
    assert len({OpenEvent("a"), OpenEvent("a"), CloseEvent("a")}) == 2


def test_validate_accepts_wellformed():
    events = [OpenEvent("a"), ValueEvent("x"), CloseEvent("a")]
    assert list(validate_event_stream(events)) == events


def test_validate_rejects_unbalanced_close():
    with pytest.raises(EventStreamError):
        list(validate_event_stream([OpenEvent("a"), CloseEvent("b")]))


def test_validate_rejects_unclosed():
    with pytest.raises(EventStreamError):
        list(validate_event_stream([OpenEvent("a")]))


def test_validate_rejects_two_roots():
    events = [OpenEvent("a"), CloseEvent("a"), OpenEvent("b"), CloseEvent("b")]
    with pytest.raises(EventStreamError):
        list(validate_event_stream(events))


def test_validate_rejects_toplevel_text():
    with pytest.raises(EventStreamError):
        list(validate_event_stream([ValueEvent("x")]))


def test_validate_rejects_empty_stream():
    with pytest.raises(EventStreamError):
        list(validate_event_stream([]))


def test_events_to_paths():
    events = [
        OpenEvent("a"),
        OpenEvent("b"),
        CloseEvent("b"),
        OpenEvent("b"),
        OpenEvent("c"),
        CloseEvent("c"),
        CloseEvent("b"),
        CloseEvent("a"),
    ]
    assert list(events_to_paths(events)) == [
        ("a",), ("a", "b"), ("a", "b"), ("a", "b", "c")
    ]


def test_event_size_scales_with_content():
    small = event_size(OpenEvent("a"))
    big = event_size(OpenEvent("a", (("attr", "value"),)))
    assert big > small
    assert event_size(ValueEvent("xyz")) == 3
    assert event_size(CloseEvent("ab")) == 5
