"""Unit tests for escaping and entity resolution."""

from repro.xmlstream.escape import (
    escape_attribute,
    escape_text,
    resolve_entity,
)


def test_escape_text_minimal():
    assert escape_text('a<b>&"c"') == 'a&lt;b&gt;&amp;"c"'


def test_escape_attribute_covers_quotes():
    assert escape_attribute("\"'") == "&quot;&apos;"


def test_named_entities():
    for name, expected in [
        ("amp", "&"), ("lt", "<"), ("gt", ">"), ("quot", '"'), ("apos", "'")
    ]:
        assert resolve_entity(name) == expected


def test_numeric_entities():
    assert resolve_entity("#65") == "A"
    assert resolve_entity("#x41") == "A"
    assert resolve_entity("#X41") == "A"


def test_unknown_entities_return_none():
    assert resolve_entity("nbsp") is None
    assert resolve_entity("#xZZ") is None
    assert resolve_entity("#") is None
