"""Unit tests for the XML serializer."""

from repro.xmlstream.events import CloseEvent, OpenEvent, ValueEvent
from repro.xmlstream.parser import parse_string
from repro.xmlstream.writer import write_string


def test_compact_output():
    events = [
        OpenEvent("a", (("x", "1"),)),
        ValueEvent("t"),
        OpenEvent("b"),
        CloseEvent("b"),
        CloseEvent("a"),
    ]
    assert write_string(events) == '<a x="1">t<b></b></a>'


def test_text_escaping():
    events = [OpenEvent("a"), ValueEvent("<&>"), CloseEvent("a")]
    assert write_string(events) == "<a>&lt;&amp;&gt;</a>"


def test_attribute_escaping():
    events = [OpenEvent("a", (("t", 'he said "<hi>"'),)), CloseEvent("a")]
    text = write_string(events)
    assert "&quot;" in text and "&lt;" in text
    assert parse_string(text)[0].attribute("t") == 'he said "<hi>"'


def test_pretty_printing_leaf_on_one_line():
    events = [
        OpenEvent("a"),
        OpenEvent("b"),
        ValueEvent("x"),
        CloseEvent("b"),
        CloseEvent("a"),
    ]
    pretty = write_string(events, indent="  ")
    assert "<b>x</b>" in pretty
    assert pretty.startswith("<a>")
    assert pretty.count("\n") >= 2


def test_pretty_printing_round_trips():
    events = [
        OpenEvent("a"),
        OpenEvent("b"),
        ValueEvent("x"),
        CloseEvent("b"),
        OpenEvent("c"),
        CloseEvent("c"),
        CloseEvent("a"),
    ]
    pretty = write_string(events, indent="  ")
    assert parse_string(pretty) == events
