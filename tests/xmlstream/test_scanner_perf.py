"""Behavioral coverage for the find/regex-based scanner rewrite.

These tests pin the properties the rewrite must keep: chunk-boundary
transparency (any split of the document parses identically) and linear
buffering for tokens that span many chunks (the seed's ``buffer +=
chunk`` grew quadratically on large single-token documents).
"""

import time

from repro.xmlstream.escape import escape_attribute, escape_text, resolve_entity
from repro.xmlstream.parser import parse_events, parse_string


def _chunks(text: str, size: int):
    return [text[i:i + size] for i in range(0, len(text), size)]


def test_any_chunking_parses_identically():
    doc = (
        '<root a="1&amp;2">text &lt;here&gt; <child x=\'q"q\'/>'
        "<!-- comment --><![CDATA[raw <stuff> ]]>tail</root>"
    )
    expected = parse_string(doc)
    for size in (1, 2, 3, 5, 7, 16, len(doc)):
        assert list(parse_events(_chunks(doc, size))) == expected


def test_name_spanning_many_chunks():
    tag = "averyverylongelementname" * 20
    doc = f"<{tag}>x</{tag}>"
    events = list(parse_events(_chunks(doc, 3)))
    assert events[0].tag == tag
    assert events[-1].tag == tag


def test_single_token_buffering_is_linear():
    """Doubling a one-token document must not quadruple parse time."""

    def build(n):
        return ["<root><big>"] + ["y" * 64] * n + ["</big></root>"]

    def measure(n):
        chunks = build(n)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            list(parse_events(iter(chunks)))
            best = min(best, time.perf_counter() - start)
        return best

    small, large = measure(1500), measure(6000)
    # 4x the input; allow up to 10x the time (noise margin) -- the
    # quadratic seed scanner showed ~16x and grew with size.
    assert large < small * 10, (small, large)


def test_attribute_value_spanning_many_chunks():
    value = "v" * 50000
    chunks = ["<r a='"] + _chunks(value, 37) + ["'/>"]
    events = list(parse_events(chunks))
    assert events[0].attributes == (("a", value),)


def test_take_until_marker_split_across_chunks():
    doc = "<r><![CDATA[abc]]" + ">def</r>"  # "]]>" split at any point
    for size in (1, 2, 4):
        events = list(parse_events(_chunks(doc, size)))
        assert events[1].text == "abcdef"


# -- escape fast paths -------------------------------------------------------


def test_escape_text_matches_entity_table():
    assert escape_text("a&b<c>d") == "a&amp;b&lt;c&gt;d"
    clean = "no special characters at all"
    assert escape_text(clean) is clean  # fast path: no copy
    assert escape_text("&&&") == "&amp;&amp;&amp;"


def test_escape_attribute_covers_quotes():
    assert escape_attribute("a\"b'c&d<e>f") == "a&quot;b&apos;c&amp;d&lt;e&gt;f"
    clean = "plain"
    assert escape_attribute(clean) is clean


def test_escape_round_trips_through_resolver():
    original = "mixed & <content> with \"quotes\" and 'apostrophes'"
    escaped = escape_attribute(original)
    out = []
    position = 0
    while position < len(escaped):
        if escaped[position] == "&":
            semi = escaped.index(";", position)
            out.append(resolve_entity(escaped[position + 1:semi]))
            position = semi + 1
        else:
            out.append(escaped[position])
            position += 1
    assert "".join(out) == original
