"""Unit tests for the tree model."""

import pytest
from hypothesis import given, settings

from repro.xmlstream.events import OpenEvent
from repro.xmlstream.tree import (
    Element,
    events_to_tree,
    parse_tree,
    tree_size,
    tree_to_events,
)

from tests.strategies import elements


def test_builder_style_construction():
    root = Element("r")
    child = root.child("c", "text", attr="v")
    assert child.parent is root
    assert child.text == "text"
    assert child.attributes == {"attr": "v"}
    assert root.element_children == [child]


def test_paths_and_depth():
    root = Element("a")
    b = root.child("b")
    c = b.child("c")
    assert c.path() == ("a", "b", "c")
    assert c.depth() == 3
    assert list(c.ancestors()) == [b, root]


def test_iter_is_document_order():
    root = parse_tree("<a><b><c/></b><d/></a>")
    assert [n.tag for n in root.iter()] == ["a", "b", "c", "d"]


def test_find_all_excludes_self():
    root = parse_tree("<a><a/><b><a/></b></a>")
    assert len(root.find_all("a")) == 2


def test_text_concatenates_direct_children_only():
    root = parse_tree("<a>x<b>inner</b>y</a>")
    assert root.text == "xy"


def test_events_to_tree_rejects_malformed():
    with pytest.raises(ValueError):
        events_to_tree([OpenEvent("a")])


def test_tree_size():
    assert tree_size(parse_tree("<a><b/><c><d/></c></a>")) == 4


@settings(max_examples=100, deadline=None)
@given(root=elements())
def test_tree_event_round_trip(root):
    events = list(tree_to_events(root))
    rebuilt = events_to_tree(events)
    assert list(tree_to_events(rebuilt)) == events
