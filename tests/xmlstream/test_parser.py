"""Unit tests for the incremental XML event parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlstream.events import CloseEvent, OpenEvent, ValueEvent
from repro.xmlstream.parser import XMLSyntaxError, parse_events, parse_string
from repro.xmlstream.writer import write_string
from repro.xmlstream.tree import tree_to_events

from tests.strategies import elements


def test_single_element():
    assert parse_string("<a></a>") == [OpenEvent("a"), CloseEvent("a")]


def test_self_closing_element():
    assert parse_string("<a/>") == [OpenEvent("a"), CloseEvent("a")]


def test_text_content():
    events = parse_string("<a>hello</a>")
    assert events == [OpenEvent("a"), ValueEvent("hello"), CloseEvent("a")]


def test_nested_structure():
    events = parse_string("<a><b>x</b><c/></a>")
    assert events == [
        OpenEvent("a"),
        OpenEvent("b"),
        ValueEvent("x"),
        CloseEvent("b"),
        OpenEvent("c"),
        CloseEvent("c"),
        CloseEvent("a"),
    ]


def test_attributes_double_and_single_quotes():
    events = parse_string("""<a x="1" y='2'/>""")
    assert events[0] == OpenEvent("a", (("x", "1"), ("y", "2")))


def test_attribute_entities_decoded():
    events = parse_string('<a t="&lt;&amp;&gt;"/>')
    assert events[0].attribute("t") == "<&>"


def test_text_entities_decoded():
    events = parse_string("<a>&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42;</a>")
    assert events[1] == ValueEvent('<tag> & "q" AB')


def test_unknown_entity_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a>&nope;</a>")


def test_cdata_section():
    events = parse_string("<a><![CDATA[<not><parsed>&amp;]]></a>")
    assert events[1] == ValueEvent("<not><parsed>&amp;")


def test_cdata_merges_with_text():
    events = parse_string("<a>x<![CDATA[y]]>z</a>")
    assert events[1] == ValueEvent("xyz")


def test_comments_skipped():
    events = parse_string("<a><!-- hidden <b> --><c/></a>")
    assert events == [
        OpenEvent("a"), OpenEvent("c"), CloseEvent("c"), CloseEvent("a")
    ]


def test_processing_instruction_and_doctype_skipped():
    text = "<?xml version='1.0'?><!DOCTYPE a><a/>"
    assert parse_string(text) == [OpenEvent("a"), CloseEvent("a")]


def test_whitespace_only_text_dropped_by_default():
    events = parse_string("<a>\n  <b/>\n</a>")
    assert events == [
        OpenEvent("a"), OpenEvent("b"), CloseEvent("b"), CloseEvent("a")
    ]


def test_whitespace_kept_when_requested():
    events = parse_string("<a> <b/></a>", keep_whitespace=True)
    assert ValueEvent(" ") in events


def test_mismatched_close_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a></b>")


def test_unclosed_element_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a><b></b>")


def test_multiple_roots_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a/><b/>")


def test_text_outside_root_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a/>stray")


def test_empty_input_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("   ")


def test_unterminated_comment_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a><!-- oops</a>")


def test_unterminated_cdata_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a><![CDATA[oops</a>")


def test_malformed_attribute_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_string("<a x=1/>")


def test_error_offsets_reported():
    try:
        parse_string("<a></b>")
    except XMLSyntaxError as exc:
        assert exc.offset > 0
    else:  # pragma: no cover
        pytest.fail("expected a syntax error")


@settings(max_examples=100, deadline=None)
@given(root=elements(), chunk=st.integers(min_value=1, max_value=7))
def test_incremental_parsing_equals_whole_string(root, chunk):
    """Chunking the input at arbitrary positions changes nothing."""
    text = write_string(tree_to_events(root))
    whole = parse_string(text)
    pieces = [text[i:i + chunk] for i in range(0, len(text), chunk)]
    assert list(parse_events(pieces)) == whole


@settings(max_examples=100, deadline=None)
@given(root=elements())
def test_parse_write_round_trip(root):
    events = list(tree_to_events(root))
    assert parse_string(write_string(events)) == events
