"""Unit tests for the tag dictionary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skipindex.tagdict import TagDictionary


def test_intern_assigns_sequential_ids():
    dictionary = TagDictionary()
    assert dictionary.intern("a") == 0
    assert dictionary.intern("b") == 1
    assert dictionary.intern("a") == 0
    assert len(dictionary) == 2


def test_lookup_both_directions():
    dictionary = TagDictionary(["x", "y"])
    assert dictionary.id_of("y") == 1
    assert dictionary.name_of(0) == "x"
    assert "x" in dictionary and "z" not in dictionary


def test_unknown_lookups_raise():
    dictionary = TagDictionary(["x"])
    with pytest.raises(KeyError):
        dictionary.id_of("nope")
    with pytest.raises(IndexError):
        dictionary.name_of(5)


def test_ids_to_names():
    dictionary = TagDictionary(["a", "b", "c"])
    assert dictionary.ids_to_names([0, 2]) == frozenset({"a", "c"})


@given(st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=8), unique=True))
def test_encode_decode_round_trip(names):
    dictionary = TagDictionary(names)
    encoded = dictionary.encode()
    decoded, offset = TagDictionary.decode(encoded)
    assert offset == len(encoded)
    assert list(decoded) == list(dictionary)


def test_decode_rejects_truncated():
    dictionary = TagDictionary(["abcdef"])
    encoded = dictionary.encode()
    with pytest.raises(ValueError):
        TagDictionary.decode(encoded[:-2])


def test_unicode_tags_survive():
    dictionary = TagDictionary(["élément"])
    decoded, __ = TagDictionary.decode(dictionary.encode())
    assert decoded.name_of(0) == "élément"
