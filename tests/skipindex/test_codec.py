"""Encoder/decoder round trips and skipping semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skipindex.decoder import (
    DecodedClose,
    DecodedOpen,
    DecodedText,
    SXSDecoder,
    SXSFormatError,
    decode_document,
)
from repro.skipindex.encoder import IndexMode, encode_document, encoded_size
from repro.skipindex.tagdict import TagDictionary
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import tree_to_events

from tests.strategies import elements


@settings(max_examples=80, deadline=None)
@given(root=elements(), mode=st.sampled_from(list(IndexMode)))
def test_round_trip_all_modes(root, mode):
    events = list(tree_to_events(root))
    assert decode_document(encode_document(events, mode)) == events


@settings(max_examples=60, deadline=None)
@given(root=elements(), chunk=st.integers(min_value=1, max_value=17))
def test_incremental_push_equals_bulk(root, chunk):
    events = list(tree_to_events(root))
    data = encode_document(events, IndexMode.RECURSIVE)
    decoder = SXSDecoder()
    out = []
    for start in range(0, len(data), chunk):
        decoder.push(data[start:start + chunk], start)
        while (item := decoder.next_item()) is not None:
            out.append(item.event)
    assert out == events


def test_attributes_survive():
    events = parse_string('<a x="1"><b y="2" z="3">t</b></a>')
    assert decode_document(encode_document(events)) == events


def test_index_metadata_contents():
    events = parse_string("<a><b><c/></b><d>t</d></a>")
    data = encode_document(events, IndexMode.RECURSIVE)
    decoder = SXSDecoder()
    decoder.push(data)
    first = decoder.next_item()
    assert isinstance(first, DecodedOpen)
    assert first.tags_inside == {"b", "c", "d"}
    assert first.resume_offset == len(data)
    second = decoder.next_item()
    assert second.tags_inside == {"c"}


def test_no_index_mode_has_no_metadata():
    events = parse_string("<a><b/></a>")
    data = encode_document(events, IndexMode.NONE)
    decoder = SXSDecoder()
    decoder.push(data)
    first = decoder.next_item()
    assert first.tags_inside is None and first.resume_offset is None


def test_skip_synthesizes_close_and_lands_after_subtree():
    events = parse_string("<a><skipme><deep>x</deep></skipme><next/></a>")
    data = encode_document(events, IndexMode.RECURSIVE)
    decoder = SXSDecoder()
    decoder.push(data)
    decoder.next_item()  # a
    item = decoder.next_item()
    assert item.event.tag == "skipme"
    decoder.skip_open_subtree()
    close = decoder.next_item()
    assert isinstance(close, DecodedClose) and close.synthetic
    assert close.event.tag == "skipme"
    following = decoder.next_item()
    assert isinstance(following, DecodedOpen) and following.event.tag == "next"


def test_skip_without_index_rejected():
    events = parse_string("<a><b/></a>")
    data = encode_document(events, IndexMode.NONE)
    decoder = SXSDecoder()
    decoder.push(data)
    decoder.next_item()
    with pytest.raises(RuntimeError):
        decoder.skip_open_subtree()


def test_skip_too_late_rejected():
    events = parse_string("<a><b><c/></b></a>")
    data = encode_document(events, IndexMode.RECURSIVE)
    decoder = SXSDecoder()
    decoder.push(data)
    decoder.next_item()  # a
    decoder.next_item()  # b
    decoder.next_item()  # c -- b's content started
    decoder._stack.pop()  # force the b frame on top
    with pytest.raises(RuntimeError):
        decoder.skip_open_subtree()


def test_recursive_not_larger_than_flat():
    """Recursive compression must pay off on deep documents."""
    deep = parse_string(
        "<a><b><c><d><e>x</e></d></c></b>" * 3 + "</a>"
        if False
        else "<a>" + "<b><c><d><e>x</e></d></c></b>" * 5 + "</a>"
    )
    flat_size = encoded_size(deep, IndexMode.FLAT)
    recursive_size = encoded_size(deep, IndexMode.RECURSIVE)
    none_size = encoded_size(deep, IndexMode.NONE)
    assert none_size < recursive_size <= flat_size


def test_bad_magic_rejected():
    decoder = SXSDecoder()
    decoder.push(b"XXXX\x00\x00")
    with pytest.raises(SXSFormatError):
        decoder.next_item()


def test_unknown_opcode_rejected():
    events = parse_string("<a/>")
    data = bytearray(encode_document(events, IndexMode.NONE))
    data[-1] = 0x7F  # clobber the final CLOSE opcode
    decoder = SXSDecoder()
    decoder.push(bytes(data))
    decoder.next_item()
    with pytest.raises(SXSFormatError):
        while decoder.next_item() is not None:
            pass


def test_non_contiguous_push_rejected():
    decoder = SXSDecoder()
    decoder.push(b"SXS1")
    with pytest.raises(SXSFormatError):
        decoder.push(b"zz", offset=10)


def test_truncated_document_not_done():
    events = parse_string("<a><b/></a>")
    data = encode_document(events)
    decoder = SXSDecoder()
    decoder.push(data[:-1])
    while decoder.next_item() is not None:
        pass
    assert not decoder.document_done


def test_shared_dictionary_reused():
    dictionary = TagDictionary(["a", "b"])
    events = parse_string("<a><b/></a>")
    encode_document(events, IndexMode.RECURSIVE, dictionary)
    assert len(dictionary) == 2  # nothing new interned


def test_for_region_decodes_subtree():
    events = parse_string("<a><mid><x>1</x><y>2</y></mid><z/></a>")
    data = encode_document(events, IndexMode.RECURSIVE)
    decoder = SXSDecoder()
    decoder.push(data)
    decoder.next_item()  # a
    mid = decoder.next_item()
    snapshot = decoder.snapshot_top_frame()
    resume = decoder.skip_open_subtree()
    region = SXSDecoder.for_region(
        decoder.dictionary,
        decoder.mode,
        tag=snapshot.tag,
        tags_inside_ids=snapshot.tags_inside,
        content_size=snapshot.content_size,
        content_start=snapshot.content_start,
    )
    region.push(data[snapshot.content_start:resume], snapshot.content_start)
    tags = []
    while (item := region.next_item()) is not None:
        tags.append(
            item.event.tag if not isinstance(item, DecodedText) else item.event.text
        )
    assert tags == ["x", "1", "x", "y", "2", "y", "mid"]
    assert region.document_done
