"""Unit and property tests for integer encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skipindex.varint import (
    decode_bounded,
    decode_varint,
    encode_bounded,
    encode_varint,
    varint_size,
    width_for_bound,
)


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_round_trip(value):
    encoded = encode_varint(value)
    decoded, offset = decode_varint(encoded)
    assert decoded == value
    assert offset == len(encoded) == varint_size(value)


def test_varint_known_encodings():
    assert encode_varint(0) == b"\x00"
    assert encode_varint(127) == b"\x7f"
    assert encode_varint(128) == b"\x80\x01"
    assert encode_varint(300) == b"\xac\x02"


def test_varint_rejects_negative():
    with pytest.raises(ValueError):
        encode_varint(-1)


def test_varint_rejects_truncated():
    with pytest.raises(ValueError):
        decode_varint(b"\x80")


def test_varint_rejects_overlong():
    with pytest.raises(ValueError):
        decode_varint(b"\x80" * 11)


def test_width_for_bound():
    assert width_for_bound(0) == 1
    assert width_for_bound(255) == 1
    assert width_for_bound(256) == 2
    assert width_for_bound(65535) == 2
    assert width_for_bound(65536) == 3


@given(st.integers(min_value=0, max_value=10**6))
def test_bounded_round_trip(value):
    bound = max(value, 1)
    encoded = encode_bounded(value, bound)
    decoded, offset = decode_bounded(encoded, 0, bound)
    assert decoded == value
    assert offset == len(encoded) == width_for_bound(bound)


def test_bounded_rejects_out_of_range():
    with pytest.raises(ValueError):
        encode_bounded(300, 255)
    with pytest.raises(ValueError):
        encode_bounded(-1, 255)


def test_bounded_rejects_truncated():
    with pytest.raises(ValueError):
        decode_bounded(b"\x01", 0, 65535)
