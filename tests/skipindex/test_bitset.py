"""Unit and property tests for recursive bitmap compression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.skipindex.bitset import (
    bitmap_from_ids,
    decode_relative,
    encode_relative,
    ids_from_bitmap,
    relative_width,
)


@given(st.sets(st.integers(min_value=0, max_value=63)))
def test_full_bitmap_round_trip(ids):
    bitmap = bitmap_from_ids(ids, 64)
    assert ids_from_bitmap(bitmap, 64) == frozenset(ids)


def test_bitmap_rejects_out_of_universe():
    with pytest.raises(ValueError):
        bitmap_from_ids({10}, 8)


@given(
    parent=st.sets(st.integers(min_value=0, max_value=40), min_size=0, max_size=20),
    data=st.data(),
)
def test_relative_round_trip(parent, data):
    parent = frozenset(parent)
    child = frozenset(
        data.draw(st.sets(st.sampled_from(sorted(parent)), max_size=len(parent)))
        if parent
        else set()
    )
    encoded = encode_relative(child, parent)
    assert len(encoded) == relative_width(parent)
    decoded, offset = decode_relative(encoded, 0, parent)
    assert decoded == child
    assert offset == len(encoded)


def test_relative_rejects_non_subset():
    with pytest.raises(ValueError):
        encode_relative(frozenset({5}), frozenset({1, 2}))


def test_relative_width_compresses():
    """The whole point: children cost popcount(parent) bits, not the
    dictionary width."""
    parent = frozenset(range(3))
    assert relative_width(parent) == 1  # vs e.g. 8 bytes for 64 tags
    assert relative_width(frozenset()) == 0


def test_empty_parent_zero_bytes():
    encoded = encode_relative(frozenset(), frozenset())
    assert encoded == b""
    decoded, offset = decode_relative(b"", 0, frozenset())
    assert decoded == frozenset() and offset == 0
