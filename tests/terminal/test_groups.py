"""Role/group subjects through the full card protocol."""

from repro.core import reference_view
from repro.core.rules import AccessRule, RuleSet, Subject
from repro.crypto.pki import SimulatedPKI
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.terminal.api import Publisher
from repro.terminal.session import Terminal
from repro.workloads.docgen import hospital
from repro.workloads.rulegen import hospital_rules
from repro.xmlstream.tree import tree_to_events
from repro.xmlstream.writer import write_string


def _stack(rules, doc_root):
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("martin")
    store = DSPStore()
    dsp = DSPServer(store)
    Publisher("owner", store, pki).publish(
        "med", list(tree_to_events(doc_root)), rules, ["martin"]
    )
    return dsp, pki


def test_user_with_role_gets_role_rules():
    root = hospital(8)
    rules = hospital_rules()
    dsp, pki = _stack(rules, root)
    terminal = Terminal("martin", dsp, pki)
    result, __ = terminal.query(
        "med", owner="owner", groups=frozenset({"doctor"})
    )
    expected = write_string(
        reference_view(root, rules, Subject("martin", frozenset({"doctor"})))
    )
    assert result.xml == expected
    assert "<diagnosis>" in result.xml
    assert "<psychiatric>" not in result.xml


def test_user_without_role_sees_nothing():
    root = hospital(8)
    rules = hospital_rules()
    dsp, pki = _stack(rules, root)
    terminal = Terminal("martin", dsp, pki)
    result, __ = terminal.query("med", owner="owner")
    assert result.xml == ""


def test_multiple_roles_combine():
    """Rules for every held role apply together -- with the usual
    conflict resolution across them."""
    root = hospital(8)
    rules = hospital_rules()
    dsp, pki = _stack(rules, root)
    terminal = Terminal("martin", dsp, pki)
    result, __ = terminal.query(
        "med", owner="owner", groups=frozenset({"doctor", "accountant"})
    )
    expected = write_string(
        reference_view(
            root, rules, Subject("martin", frozenset({"doctor", "accountant"}))
        )
    )
    assert result.xml == expected
    # The doctor's deny on billing and the accountant's permit on it
    # collide on the same nodes: denial takes precedence.
    assert "<amount>" not in result.xml


def test_personal_rule_plus_role():
    root = hospital(8)
    rules = RuleSet(
        list(hospital_rules())
        + [AccessRule.parse("+", "martin", "//ssn", rule_id="ME")]
    )
    dsp, pki = _stack(rules, root)
    terminal = Terminal("martin", dsp, pki)
    result, __ = terminal.query(
        "med", owner="owner", groups=frozenset({"nurse"})
    )
    expected = write_string(
        reference_view(root, rules, Subject("martin", frozenset({"nurse"})))
    )
    assert result.xml == expected
    assert "<ssn>" in result.xml  # personal grant
    assert "<prescription>" in result.xml  # role grant
