"""Transfer-layer mechanics: prefetch windows, batches, skip reconciliation.

The contract of the batched transport is *observational equivalence*:
whatever the TransferPolicy, the authorized view must be byte-identical
to the sequential path and the card-side byte metrics must not move --
speculation may only shift cost between the ``chunks_skipped`` (never
fetched) and ``chunks_wasted`` (fetched in vain) buckets.
"""

import pytest

from repro.bench.harness import PullSetup, run_pull_session
from repro.smartcard.applet import PendingStrategy
from repro.terminal.transfer import TransferPolicy
from repro.workloads.docgen import _CATEGORIES, hospital, video_catalog
from repro.workloads.rulegen import hospital_rules, subscription_rules
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import tree_to_events

WINDOWED = [TransferPolicy.windowed(2), TransferPolicy.windowed(4),
            TransferPolicy.windowed(8), TransferPolicy(window=8, apdu_batch=2)]


def _hospital_setup(subject, transfer=None, **kwargs):
    events = list(tree_to_events(hospital(n_patients=6)))
    return PullSetup(
        events=events,
        rules=hospital_rules(),
        subject=subject,
        chunk_size=64,
        transfer=transfer,
        **kwargs,
    )


# -- policy object ----------------------------------------------------------


def test_policy_validation():
    assert TransferPolicy().is_sequential
    assert not TransferPolicy.windowed(4).is_sequential
    with pytest.raises(ValueError):
        TransferPolicy(window=0)
    with pytest.raises(ValueError):
        TransferPolicy(window=2, apdu_batch=0)
    with pytest.raises(ValueError):
        TransferPolicy(window=2, apdu_batch=4)  # batch cannot outrun window


def test_degenerate_policy_matches_sequential_exactly():
    """window=1, batch=1 IS the sequential path, metric for metric."""
    base = run_pull_session(_hospital_setup("accountant"))
    degenerate = run_pull_session(
        _hospital_setup("accountant", transfer=TransferPolicy())
    )
    assert degenerate.xml == base.xml
    assert degenerate.metrics.as_dict() == base.metrics.as_dict()


# -- mid-window skip reconciliation -----------------------------------------


def test_mid_window_skip_counts_waste_and_transmits_no_skipped_chunk():
    """A skip directive landing mid-window turns prefetch into waste.

    The accountant is forbidden large contiguous regions, so every
    window overruns a skip.  Wasted chunks must be accounted, and a
    chunk the proxy *knew* was skipped must never cross the card link:
    the card decrypts exactly the bytes the sequential session does.
    """
    seq = run_pull_session(_hospital_setup("accountant"))
    win = run_pull_session(
        _hospital_setup("accountant", transfer=TransferPolicy.windowed(8))
    )
    assert win.xml == seq.xml
    assert win.metrics.chunks_wasted > 0
    assert win.metrics.bytes_wasted > 0
    # Speculation only moves skipped chunks into the wasted bucket.
    assert (
        win.metrics.chunks_skipped + win.metrics.chunks_wasted
        == seq.metrics.chunks_skipped
    )
    # The card consumed the same chunks and decrypted the same bytes:
    # nothing the skip index ruled out was processed on-card.
    assert win.metrics.chunks_sent == seq.metrics.chunks_sent
    assert win.metrics.bytes_decrypted == seq.metrics.bytes_decrypted
    assert win.metrics.bytes_skipped == seq.metrics.bytes_skipped
    # Sequential transport never speculates.
    assert seq.metrics.chunks_wasted == 0
    assert seq.metrics.bytes_wasted == 0


def test_batching_cuts_round_trips():
    seq = run_pull_session(_hospital_setup("doctor"))
    win = run_pull_session(
        _hospital_setup("doctor", transfer=TransferPolicy.windowed(8))
    )
    assert win.metrics.dsp_requests < seq.metrics.dsp_requests / 2
    assert win.metrics.apdu_count < seq.metrics.apdu_count


def test_strict_memory_ram_accounting_unchanged():
    """Batching stages frames in the I/O buffer, not in secure RAM."""
    seq = run_pull_session(
        _hospital_setup("doctor", ram_quota=1024, strict_memory=True)
    )
    win = run_pull_session(
        _hospital_setup(
            "doctor",
            transfer=TransferPolicy.windowed(8),
            ram_quota=1024,
            strict_memory=True,
        )
    )
    assert win.xml == seq.xml
    assert win.metrics.ram_high_water == seq.metrics.ram_high_water


# -- refetch mechanics -------------------------------------------------------

# Sixteen notes whose <body> precedes the <to> that decides it: at each
# <body> the [to="alice"] predicate is still open, the subtree is
# irrelevant to it, so under REFETCH the card skips and re-requests all
# sixteen -- more than one 13-entry END_DOCUMENT page.
_MANY_PENDING = "<notes>" + "".join(
    f"<note><body>body text number {i:02d}</body><to>alice</to></note>"
    for i in range(16)
) + "</notes>"


def _refetch_setup(transfer=None):
    from repro.core.rules import AccessRule, RuleSet

    rules = RuleSet([
        AccessRule.parse(
            "+", "alice", '//note[to = "alice"]/body', rule_id="R0"
        ),
    ])
    return PullSetup(
        events=list(parse_string(_MANY_PENDING)),
        rules=rules,
        subject="alice",
        chunk_size=32,
        strategy=PendingStrategy.REFETCH,
        transfer=transfer,
    )


def test_refetch_pages_span_multiple_continuation_apdus():
    outcome = run_pull_session(_refetch_setup())
    assert outcome.metrics.refetch_count == 16  # needs two result pages
    texts = [text for __, text in outcome.fragments]
    assert len(texts) == 16
    for i in range(16):
        assert f"body text number {i:02d}" in texts[i]


@pytest.mark.parametrize("policy", WINDOWED, ids=str)
def test_refetch_fragments_identical_under_windowing(policy):
    seq = run_pull_session(_refetch_setup())
    win = run_pull_session(_refetch_setup(transfer=policy))
    assert win.xml == seq.xml
    assert win.fragments == seq.fragments
    assert win.metrics.refetch_count == seq.metrics.refetch_count
    assert win.metrics.refetch_bytes == seq.metrics.refetch_bytes


# -- differential sweep over the docgen corpus ------------------------------


def _corpus():
    yield (
        "hospital",
        list(tree_to_events(hospital(n_patients=5))),
        hospital_rules(),
        ["doctor", "accountant", "nurse"],
    )
    yield (
        "videos",
        list(tree_to_events(video_catalog(n_videos=20))),
        subscription_rules("sub", list(_CATEGORIES[:2])),
        ["sub"],
    )


@pytest.mark.parametrize("policy", WINDOWED, ids=str)
def test_windowed_views_byte_identical_over_corpus(policy):
    for name, events, rules, subjects in _corpus():
        for subject in subjects:
            seq = run_pull_session(
                PullSetup(events=events, rules=rules, subject=subject)
            )
            win = run_pull_session(
                PullSetup(
                    events=events,
                    rules=rules,
                    subject=subject,
                    transfer=policy,
                )
            )
            context = f"{name}/{subject}/{policy}"
            assert win.xml == seq.xml, context
            assert win.fragments == seq.fragments, context
            assert (
                win.metrics.bytes_skipped == seq.metrics.bytes_skipped
            ), context
            assert (
                win.metrics.bytes_decrypted == seq.metrics.bytes_decrypted
            ), context
            assert (
                win.metrics.chunks_skipped + win.metrics.chunks_wasted
                == seq.metrics.chunks_skipped
            ), context
