"""Integration tests: proxy + terminal against card and DSP."""

import pytest

from repro.core import AccessRule, RuleSet, reference_view
from repro.core.delivery import ViewMode
from repro.crypto.pki import SimulatedPKI
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.smartcard.applet import PendingStrategy
from repro.terminal.api import Publisher
from repro.terminal.proxy import ProxyError
from repro.terminal.session import Terminal
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import parse_tree
from repro.xmlstream.writer import write_string

DOC = (
    "<notes><note><to>alice</to><body>hello</body></note>"
    "<note><to>bob</to><body>secret plan</body></note></notes>"
)
RULES = RuleSet([
    AccessRule.parse("+", "alice", '//note[to = "alice"]', rule_id="S0"),
    AccessRule.parse("+", "bob", '//note[to = "bob"]', rule_id="S1"),
])


def _stack():
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("alice")
    pki.enroll("bob")
    store = DSPStore()
    dsp = DSPServer(store)
    publisher = Publisher("owner", store, pki)
    publisher.publish("notes", parse_string(DOC), RULES, ["alice", "bob"])
    return dsp, pki, publisher


def test_each_user_sees_own_view():
    dsp, pki, __ = _stack()
    for user in ("alice", "bob"):
        terminal = Terminal(user, dsp, pki)
        result, metrics = terminal.query("notes", owner="owner")
        expected = write_string(reference_view(parse_tree(DOC), RULES, user))
        assert result.xml == expected
        assert metrics.apdu_count > 0
        assert metrics.clock.total() > 0


def test_query_restriction_applies():
    dsp, pki, __ = _stack()
    terminal = Terminal("alice", dsp, pki)
    result, __ = terminal.query("notes", query="//body", owner="owner")
    expected = write_string(
        reference_view(parse_tree(DOC), RULES, "alice", query="//body")
    )
    assert result.xml == expected


def test_unauthorized_user_has_no_wrapped_key():
    dsp, pki, __ = _stack()
    pki.enroll("eve")
    terminal = Terminal("eve", dsp, pki)
    with pytest.raises(KeyError):
        terminal.query("notes", owner="owner")


def test_unlock_is_idempotent():
    dsp, pki, __ = _stack()
    terminal = Terminal("alice", dsp, pki)
    terminal.unlock_document("notes", "owner")
    terminal.unlock_document("notes", "owner")
    result, __ = terminal.query("notes")
    assert "alice" in result.xml


def test_policy_update_changes_view_without_reencryption():
    dsp, pki, publisher = _stack()
    terminal = Terminal("alice", dsp, pki)
    before, __ = terminal.query("notes", owner="owner")
    assert "hello" in before.xml
    new_rules = RuleSet([
        AccessRule.parse("+", "alice", '//note[to = "alice"]', rule_id="S0"),
        AccessRule.parse("-", "alice", "//body", rule_id="S2"),
    ])
    receipt = publisher.update_rules("notes", new_rules)
    assert receipt.document_bytes_encrypted == 0
    after, __ = Terminal("alice", dsp, pki).query("notes", owner="owner")
    assert "hello" not in after.xml
    expected = write_string(reference_view(parse_tree(DOC), new_rules, "alice"))
    assert after.xml == expected


def test_refetch_strategy_returns_fragments():
    # Refetch applies when the pending predicate resolves *outside* the
    # candidate subtree: here the body streams before the to field, so
    # at <body> the [to=...] condition is still open, the body subtree
    # is irrelevant to it, and the card skips it for later refetch.
    document = (
        "<notes><note><body>hello alice</body><to>alice</to></note>"
        "<note><body>bob stuff</body><to>bob</to></note></notes>"
    )
    rules = RuleSet([
        AccessRule.parse("+", "alice", '//note[to = "alice"]/body', rule_id="R0"),
    ])
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("alice")
    store = DSPStore()
    dsp = DSPServer(store)
    publisher = Publisher("owner", store, pki)
    publisher.publish(
        "mail", parse_string(document), rules, ["alice"], chunk_size=32
    )
    terminal = Terminal("alice", dsp, pki)
    result, metrics = terminal.query(
        "mail", owner="owner", strategy=PendingStrategy.REFETCH
    )
    assert metrics.refetch_count >= 1
    combined = result.xml + "".join(text for __, text in result.fragments)
    assert "hello alice" in combined
    assert "bob stuff" not in combined
    # The buffering strategy must agree on delivered content.
    buffered, buffered_metrics = Terminal("alice", dsp, pki).query(
        "mail", owner="owner", strategy=PendingStrategy.BUFFER
    )
    assert "hello alice" in buffered.xml
    assert buffered_metrics.max_pending_bytes > metrics.max_pending_bytes


def test_prune_view_mode_through_stack():
    dsp, pki, __ = _stack()
    terminal = Terminal("alice", dsp, pki)
    result, __ = terminal.query("notes", owner="owner", view_mode=ViewMode.PRUNE)
    expected = write_string(
        reference_view(parse_tree(DOC), RULES, "alice", mode=ViewMode.PRUNE)
    )
    assert result.xml == expected


def test_proxy_error_carries_status():
    dsp, pki, __ = _stack()
    terminal = Terminal("alice", dsp, pki)
    terminal.proxy.provision_key("notes", b"wrong-key-16byte")
    with pytest.raises(ProxyError) as info:
        terminal.proxy.query("notes", "alice")
    assert info.value.status is not None
