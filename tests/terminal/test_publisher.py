"""Unit tests for the owner-side publishing API."""

from repro.core.rules import AccessRule, RuleSet
from repro.crypto.container import open_blob
from repro.crypto.keys import DocumentKeys
from repro.crypto.pki import SimulatedPKI
from repro.dsp.store import DSPStore
from repro.terminal.api import Publisher
from repro.xmlstream.parser import parse_string


def _stack():
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("reader")
    store = DSPStore()
    return Publisher("owner", store, pki), store, pki


RULES = RuleSet([AccessRule.parse("+", "reader", "/a", rule_id="T0")])


def test_publish_uploads_everything():
    publisher, store, pki = _stack()
    receipt = publisher.publish("doc", parse_string("<a>x</a>"), RULES, ["reader"])
    assert receipt.version == 1
    assert receipt.document_bytes_encrypted > 0
    assert receipt.keys_distributed == 1
    stored = store.get("doc")
    assert stored.rules_version == 1
    assert len(stored.rule_records) == 1
    assert "reader" in stored.wrapped_keys


def test_wrapped_key_unwraps_to_document_secret():
    publisher, store, pki = _stack()
    publisher.publish("doc", parse_string("<a/>"), RULES, ["reader"])
    wrapped = store.get("doc").wrapped_keys["reader"]
    secret = pki.unwrap_secret("reader", "owner", wrapped)
    assert secret == publisher.secret_for("doc")


def test_rule_records_decrypt_with_doc_keys():
    publisher, store, __ = _stack()
    publisher.publish("doc", parse_string("<a/>"), RULES, ["reader"])
    keys = DocumentKeys(publisher.secret_for("doc"))
    record = store.get("doc").rule_records[0]
    line = open_blob(record, "doc#rule:0", 1, keys).decode()
    assert line == "+|reader|/a"


def test_update_rules_touches_no_document_bytes():
    """The headline property: policy churn costs zero re-encryption."""
    publisher, store, __ = _stack()
    publisher.publish("doc", parse_string("<a>x</a>"), RULES, ["reader"])
    container_before = store.get("doc").container
    new_rules = RuleSet([
        AccessRule.parse("-", "reader", "//secret", rule_id="N0"),
        AccessRule.parse("+", "reader", "/a", rule_id="N1"),
    ])
    receipt = publisher.update_rules("doc", new_rules)
    assert receipt.document_bytes_encrypted == 0
    assert receipt.keys_distributed == 0
    assert receipt.rule_bytes_encrypted > 0
    assert store.get("doc").container is container_before
    assert store.get("doc").rules_version == 2
    assert len(store.get("doc").rule_records) == 2


def test_republish_bumps_version():
    publisher, store, __ = _stack()
    publisher.publish("doc", parse_string("<a>1</a>"), RULES, ["reader"])
    receipt = publisher.publish("doc", parse_string("<a>2</a>"), RULES, ["reader"])
    assert receipt.version == 2
    assert store.get("doc").container.header.version == 2


def test_grant_access_adds_wrapped_key():
    publisher, store, pki = _stack()
    publisher.publish("doc", parse_string("<a/>"), RULES, [])
    pki.enroll("late")
    publisher.grant_access("doc", "late")
    wrapped = store.get("doc").wrapped_keys["late"]
    assert pki.unwrap_secret("late", "owner", wrapped) == publisher.secret_for("doc")
