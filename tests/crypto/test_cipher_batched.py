"""Crypto-mode coverage for the batched (bit-sliced) XTEA/CBC paths.

The batched implementation must be bit-for-bit the block-at-a-time
reference: the differential tests below re-derive CBC from the public
single-block functions and compare whole buffers, across every lane
count the batching thresholds distinguish.
"""

import random

import pytest

from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    cbc_encrypt_many,
    pkcs7_pad,
)
from repro.crypto.xtea import (
    BLOCK_SIZE,
    XTEACipher,
    xtea_decrypt_block,
    xtea_encrypt_block,
)

KEY = bytes(range(16))
IV = bytes(range(8))


# -- published-style vectors --------------------------------------------------
#
# Standard 32-round XTEA vectors (big-endian word order) as circulated
# with the reference C implementation.

VECTORS = [
    (
        "000102030405060708090a0b0c0d0e0f",
        "4142434445464748",
        "497df3d072612cb5",
    ),
    (
        "00000000000000000000000000000000",
        "0000000000000000",
        "dee9d4d8f7131ed9",
    ),
]


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", VECTORS)
def test_published_vectors_encrypt(key_hex, plain_hex, cipher_hex):
    key = bytes.fromhex(key_hex)
    plain = bytes.fromhex(plain_hex)
    assert xtea_encrypt_block(plain, key).hex() == cipher_hex


@pytest.mark.parametrize("key_hex,plain_hex,cipher_hex", VECTORS)
def test_published_vectors_decrypt(key_hex, plain_hex, cipher_hex):
    key = bytes.fromhex(key_hex)
    cipher = bytes.fromhex(cipher_hex)
    assert xtea_decrypt_block(cipher, key).hex() == plain_hex


def test_cipher_object_matches_block_functions():
    cipher = XTEACipher.for_key(KEY)
    block = b"\x13" * BLOCK_SIZE
    assert cipher.encrypt_block(block) == xtea_encrypt_block(block, KEY)
    assert cipher.decrypt_block(block) == xtea_decrypt_block(block, KEY)
    # The per-key memo hands back the same instance (shared schedule).
    assert XTEACipher.for_key(KEY) is cipher


# -- reference CBC (block-at-a-time, pre-batching semantics) -----------------


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def reference_cbc_encrypt(plaintext: bytes, key: bytes, iv: bytes) -> bytes:
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor(padded[offset:offset + BLOCK_SIZE], previous)
        previous = xtea_encrypt_block(block, key)
        out.extend(previous)
    return bytes(out)


def reference_cbc_decrypt_raw(ciphertext: bytes, key: bytes, iv: bytes) -> bytes:
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset:offset + BLOCK_SIZE]
        out.extend(_xor(xtea_decrypt_block(block, key), previous))
        previous = block
    return bytes(out)


@pytest.mark.parametrize("size", [0, 1, 7, 8, 9, 15, 16, 17, 24, 64, 96, 97, 255])
def test_batched_cbc_matches_reference_bit_for_bit(size):
    rng = random.Random(size)
    plaintext = rng.randbytes(size)
    ciphertext = cbc_encrypt(plaintext, KEY, IV)
    assert ciphertext == reference_cbc_encrypt(plaintext, KEY, IV)
    assert cbc_decrypt(ciphertext, KEY, IV) == plaintext
    # Raw (unpadded) decryption agrees block-for-block too.
    cipher = XTEACipher.for_key(KEY)
    assert cipher.cbc_decrypt_raw(ciphertext, IV) == reference_cbc_decrypt_raw(
        ciphertext, KEY, IV
    )


def test_cbc_empty_plaintext_round_trip():
    ciphertext = cbc_encrypt(b"", KEY, IV)
    assert len(ciphertext) == BLOCK_SIZE  # one full padding block
    assert cbc_decrypt(ciphertext, KEY, IV) == b""


def test_cbc_one_block_and_odd_tail():
    one = b"A" * BLOCK_SIZE
    assert cbc_decrypt(cbc_encrypt(one, KEY, IV), KEY, IV) == one
    odd = b"B" * (BLOCK_SIZE + 3)
    assert cbc_decrypt(cbc_encrypt(odd, KEY, IV), KEY, IV) == odd


def test_malformed_padding_raises_padding_error():
    cipher = XTEACipher.for_key(KEY)
    # Craft ciphertexts that decrypt to invalid PKCS#7 tails.
    for bad_tail in (b"\x00", b"\x09", b"\xff", b"\x03\x03"):
        plain = b"C" * (BLOCK_SIZE - len(bad_tail)) + bad_tail
        assert len(plain) % BLOCK_SIZE == 0
        ciphertext = cipher.cbc_encrypt_padded(plain, IV)
        with pytest.raises(PaddingError):
            cbc_decrypt(ciphertext, KEY, IV)


def test_cbc_rejects_bad_lengths():
    with pytest.raises(ValueError):
        cbc_decrypt(b"", KEY, IV)
    with pytest.raises(ValueError):
        cbc_decrypt(b"x" * 9, KEY, IV)
    with pytest.raises(ValueError):
        cbc_encrypt(b"x", KEY, b"short")


def test_encrypt_many_matches_per_message_calls():
    rng = random.Random(7)
    messages = []
    for index in range(23):
        size = rng.choice([0, 5, 8, 64, 64, 64, 96, 31])
        messages.append((rng.randbytes(size), rng.randbytes(BLOCK_SIZE)))
    batched = cbc_encrypt_many(messages, KEY)
    for (plaintext, iv), ciphertext in zip(messages, batched):
        assert ciphertext == cbc_encrypt(plaintext, KEY, iv)
        assert ciphertext == reference_cbc_encrypt(plaintext, KEY, iv)


def test_encrypt_many_small_groups_use_scalar_path():
    # Below the bit-slicing threshold the per-message path runs; output
    # must be indistinguishable either way.
    messages = [(b"tiny", IV), (b"x" * 64, bytes(8))]
    assert cbc_encrypt_many(messages, KEY) == [
        cbc_encrypt(b"tiny", KEY, IV),
        cbc_encrypt(b"x" * 64, KEY, bytes(8)),
    ]


def test_key_and_block_size_validation():
    with pytest.raises(ValueError):
        XTEACipher.for_key(b"short")
    cipher = XTEACipher.for_key(KEY)
    with pytest.raises(ValueError):
        cipher.encrypt_block(b"short")
    with pytest.raises(ValueError):
        cipher.decrypt_block(b"toolongblock")
    with pytest.raises(ValueError):
        cbc_encrypt_many([(b"data", b"short")], KEY)
