"""Unit tests for key management and the simulated PKI."""

import pytest

from repro.crypto.keys import DocumentKeys, KeyRing, derive_key, random_key
from repro.crypto.pki import KeyPair, SimulatedPKI, shared_secret


def test_derive_key_deterministic_and_separated():
    secret = b"s" * 16
    assert derive_key(secret, "enc") == derive_key(secret, "enc")
    assert derive_key(secret, "enc") != derive_key(secret, "mac")
    assert derive_key(b"t" * 16, "enc") != derive_key(secret, "enc")


def test_document_keys_derivations():
    keys = DocumentKeys(b"s" * 16)
    assert keys.encryption != keys.mac
    assert keys.iv("d", 1, 0) != keys.iv("d", 1, 1)
    assert keys.iv("d", 1, 0) != keys.iv("d", 2, 0)
    assert len(keys.iv("d", 1, 0)) == 8


def test_random_key_size_and_uniqueness():
    assert len(random_key()) == 16
    assert random_key() != random_key()


def test_keyring_grant_revoke():
    ring = KeyRing()
    ring.grant("doc", b"s" * 16)
    assert "doc" in ring and len(ring) == 1
    assert ring.keys_for("doc").secret == b"s" * 16
    ring.revoke("doc")
    assert "doc" not in ring
    with pytest.raises(KeyError):
        ring.keys_for("doc")


def test_dh_key_agreement():
    alice = KeyPair.generate(b"alice-seed")
    bob = KeyPair.generate(b"bob-seed")
    assert shared_secret(alice, bob.public) == shared_secret(bob, alice.public)


def test_dh_different_peers_different_secrets():
    alice = KeyPair.generate(b"a")
    bob = KeyPair.generate(b"b")
    carol = KeyPair.generate(b"c")
    assert shared_secret(alice, bob.public) != shared_secret(alice, carol.public)


def test_pki_wrap_unwrap():
    pki = SimulatedPKI()
    pki.enroll("owner")
    pki.enroll("reader")
    secret = b"d" * 16
    wrapped = pki.wrap_secret("owner", "reader", secret)
    assert wrapped != secret
    assert pki.unwrap_secret("reader", "owner", wrapped) == secret


def test_pki_publish_to_many():
    pki = SimulatedPKI()
    pki.enroll("owner")
    for name in ("a", "b", "c"):
        pki.enroll(name)
    secret = b"x" * 16
    blobs = pki.publish_secret("owner", ["a", "b", "c"], secret)
    assert set(blobs) == {"a", "b", "c"}
    for name, blob in blobs.items():
        assert pki.unwrap_secret(name, "owner", blob) == secret


def test_pki_wrong_recipient_cannot_unwrap():
    pki = SimulatedPKI()
    for name in ("owner", "reader", "eve"):
        pki.enroll(name)
    wrapped = pki.wrap_secret("owner", "reader", b"s" * 16)
    from repro.crypto.modes import PaddingError

    try:
        result = pki.unwrap_secret("eve", "owner", wrapped)
    except PaddingError:
        result = None
    assert result != b"s" * 16


def test_enrollment_is_deterministic_per_principal():
    pki_a, pki_b = SimulatedPKI(), SimulatedPKI()
    assert pki_a.enroll("x").public == pki_b.enroll("x").public


def test_reenroll_invalidates_cached_keks():
    """Key rotation must not reuse KEKs derived from the old private key."""
    from repro.crypto.pki import SimulatedPKI

    pki = SimulatedPKI()
    pki.enroll("alice")
    pki.enroll("bob")
    secret = bytes(range(16))
    wrapped = pki.wrap_secret("alice", "bob", secret)
    # Warm both directions of the KEK cache.
    assert pki.unwrap_secret("bob", "alice", wrapped) == secret
    # Rotate bob's key pair; alice re-wraps against the new public key.
    pki.enroll("bob", seed=b"rotated")
    rewrapped = pki.wrap_secret("alice", "bob", secret)
    assert pki.unwrap_secret("bob", "alice", rewrapped) == secret
