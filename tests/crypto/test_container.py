"""Unit tests for the chunked encrypted container."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.container import (
    IntegrityError,
    open_blob,
    open_chunk,
    seal_blob,
    seal_document,
)
from repro.crypto.keys import DocumentKeys

KEYS = DocumentKeys(b"secret-material!")
OTHER = DocumentKeys(b"other-material!!")


def _open_all(container, keys=KEYS):
    return b"".join(
        open_chunk(container.header, i, blob, keys)
        for i, blob in enumerate(container.chunks)
    )


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=0, max_size=500), st.integers(min_value=8, max_value=100))
def test_seal_open_round_trip(plaintext, chunk_size):
    container = seal_document(plaintext, "doc", 1, KEYS, chunk_size=chunk_size)
    container.header.verify(KEYS)
    assert _open_all(container) == plaintext


def test_chunk_count_and_sizes():
    container = seal_document(b"x" * 250, "doc", 1, KEYS, chunk_size=100)
    assert container.header.chunk_count == 3
    assert container.header.total_length == 250
    assert container.chunk_for_offset(0) == 0
    assert container.chunk_for_offset(100) == 1
    assert container.chunk_for_offset(249) == 2


def test_stored_size_includes_tags_and_padding():
    container = seal_document(b"x" * 100, "doc", 1, KEYS, chunk_size=100)
    assert container.stored_size > 100


def test_header_verify_rejects_wrong_key():
    container = seal_document(b"data", "doc", 1, KEYS)
    with pytest.raises(IntegrityError):
        container.header.verify(OTHER)


def test_chunk_rejects_wrong_key():
    container = seal_document(b"data", "doc", 1, KEYS)
    with pytest.raises(IntegrityError):
        open_chunk(container.header, 0, container.chunks[0], OTHER)


def test_chunk_rejects_bitflip():
    container = seal_document(b"data" * 10, "doc", 1, KEYS)
    blob = bytearray(container.chunks[0])
    blob[0] ^= 1
    with pytest.raises(IntegrityError):
        open_chunk(container.header, 0, bytes(blob), KEYS)


def test_chunk_rejects_index_swap():
    container = seal_document(b"d" * 200, "doc", 1, KEYS, chunk_size=100)
    with pytest.raises(IntegrityError):
        open_chunk(container.header, 0, container.chunks[1], KEYS)


def test_chunk_rejects_cross_document_substitution():
    a = seal_document(b"a" * 100, "doc-a", 1, KEYS, chunk_size=100)
    b = seal_document(b"b" * 100, "doc-b", 1, KEYS, chunk_size=100)
    with pytest.raises(IntegrityError):
        open_chunk(a.header, 0, b.chunks[0], KEYS)


def test_chunk_rejects_version_mixing():
    v1 = seal_document(b"v1" * 50, "doc", 1, KEYS, chunk_size=100)
    v2 = seal_document(b"v2" * 50, "doc", 2, KEYS, chunk_size=100)
    with pytest.raises(IntegrityError):
        open_chunk(v2.header, 0, v1.chunks[0], KEYS)


def test_chunk_index_out_of_range():
    container = seal_document(b"data", "doc", 1, KEYS)
    with pytest.raises(IntegrityError):
        open_chunk(container.header, 5, container.chunks[0], KEYS)


def test_blob_round_trip():
    blob = seal_blob(b"rule line", "doc#rule:0", 3, KEYS)
    assert open_blob(blob, "doc#rule:0", 3, KEYS) == b"rule line"


def test_blob_rejects_label_confusion():
    blob = seal_blob(b"rule line", "doc#rule:0", 3, KEYS)
    with pytest.raises(IntegrityError):
        open_blob(blob, "doc#rule:1", 3, KEYS)
    with pytest.raises(IntegrityError):
        open_blob(blob, "doc#rule:0", 4, KEYS)


def test_empty_document_seals():
    container = seal_document(b"", "doc", 1, KEYS)
    assert container.header.chunk_count == 1
    assert _open_all(container) == b""
