"""Unit tests for positional MAC binding."""

from repro.crypto.mac import chunk_mac, header_mac, verify_mac

KEY = b"k" * 16


def _base():
    return chunk_mac(KEY, "doc", 1, 0, 10, b"ciphertext")


def test_deterministic():
    assert _base() == _base()


def test_binds_document_id():
    assert _base() != chunk_mac(KEY, "other", 1, 0, 10, b"ciphertext")


def test_binds_version():
    assert _base() != chunk_mac(KEY, "doc", 2, 0, 10, b"ciphertext")


def test_binds_chunk_index():
    assert _base() != chunk_mac(KEY, "doc", 1, 1, 10, b"ciphertext")


def test_binds_chunk_count():
    assert _base() != chunk_mac(KEY, "doc", 1, 0, 9, b"ciphertext")


def test_binds_ciphertext():
    assert _base() != chunk_mac(KEY, "doc", 1, 0, 10, b"Ciphertext")


def test_binds_key():
    assert _base() != chunk_mac(b"K" * 16, "doc", 1, 0, 10, b"ciphertext")


def test_tag_length_parameter():
    assert len(chunk_mac(KEY, "d", 1, 0, 1, b"", length=4)) == 4
    assert len(chunk_mac(KEY, "d", 1, 0, 1, b"", length=16)) == 16


def test_header_mac_binds_fields():
    base = header_mac(KEY, "doc", 1, 10, 96, b"payload")
    assert base != header_mac(KEY, "doc", 1, 11, 96, b"payload")
    assert base != header_mac(KEY, "doc", 1, 10, 64, b"payload")
    assert base != header_mac(KEY, "doc", 2, 10, 96, b"payload")


def test_header_and_chunk_domains_separated():
    chunk = chunk_mac(KEY, "doc", 1, 0, 10, b"x")
    header = header_mac(KEY, "doc", 1, 0, 10, b"x")
    assert chunk != header


def test_verify_mac():
    tag = _base()
    assert verify_mac(tag, tag)
    assert not verify_mac(tag, tag[:-1] + bytes([tag[-1] ^ 1]))
