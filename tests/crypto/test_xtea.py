"""Unit tests for the XTEA block cipher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.xtea import (
    BLOCK_SIZE,
    KEY_SIZE,
    xtea_decrypt_block,
    xtea_encrypt_block,
)

KEY = bytes(range(KEY_SIZE))


@given(st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE))
def test_round_trip(block):
    assert xtea_decrypt_block(xtea_encrypt_block(block, KEY), KEY) == block


def test_encryption_changes_data():
    block = b"\x00" * BLOCK_SIZE
    assert xtea_encrypt_block(block, KEY) != block


def test_key_sensitivity():
    block = b"ABCDEFGH"
    other_key = bytes([KEY[0] ^ 1]) + KEY[1:]
    assert xtea_encrypt_block(block, KEY) != xtea_encrypt_block(block, other_key)


def test_block_sensitivity():
    a = xtea_encrypt_block(b"AAAAAAA0", KEY)
    b = xtea_encrypt_block(b"AAAAAAA1", KEY)
    assert a != b


def test_deterministic():
    block = b"12345678"
    assert xtea_encrypt_block(block, KEY) == xtea_encrypt_block(block, KEY)


def test_wrong_block_size_rejected():
    with pytest.raises(ValueError):
        xtea_encrypt_block(b"short", KEY)
    with pytest.raises(ValueError):
        xtea_decrypt_block(b"toolongblock", KEY)


def test_wrong_key_size_rejected():
    with pytest.raises(ValueError):
        xtea_encrypt_block(b"A" * BLOCK_SIZE, b"shortkey")


def test_wrong_key_fails_decrypt():
    block = b"sensitiv"
    ciphertext = xtea_encrypt_block(block, KEY)
    other_key = b"\xff" * KEY_SIZE
    assert xtea_decrypt_block(ciphertext, other_key) != block
