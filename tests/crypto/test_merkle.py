"""Unit and property tests for the Merkle integrity mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.merkle import (
    MerkleTree,
    hash_operations,
    verify_chunk,
)


def _chunks(count: int) -> list[bytes]:
    return [f"chunk-{i}".encode() for i in range(count)]


@settings(max_examples=60, deadline=None)
@given(count=st.integers(min_value=1, max_value=40), data=st.data())
def test_every_leaf_verifies(count, data):
    chunks = _chunks(count)
    tree = MerkleTree(chunks)
    index = data.draw(st.integers(min_value=0, max_value=count - 1))
    path = tree.auth_path(index)
    assert verify_chunk(tree.root, index, chunks[index], path)


@settings(max_examples=60, deadline=None)
@given(count=st.integers(min_value=2, max_value=40), data=st.data())
def test_tampered_leaf_fails(count, data):
    chunks = _chunks(count)
    tree = MerkleTree(chunks)
    index = data.draw(st.integers(min_value=0, max_value=count - 1))
    path = tree.auth_path(index)
    assert not verify_chunk(tree.root, index, b"tampered", path)


def test_swapped_chunks_fail():
    chunks = _chunks(8)
    tree = MerkleTree(chunks)
    assert not verify_chunk(tree.root, 2, chunks[3], tree.auth_path(2))
    assert not verify_chunk(tree.root, 3, chunks[2], tree.auth_path(3))


def test_path_for_wrong_index_fails():
    chunks = _chunks(8)
    tree = MerkleTree(chunks)
    assert not verify_chunk(tree.root, 2, chunks[2], tree.auth_path(3))


def test_cross_tree_path_fails():
    chunks = _chunks(8)
    tree = MerkleTree(chunks)
    other = MerkleTree(_chunks(9))
    assert not verify_chunk(other.root, 2, chunks[2], tree.auth_path(2))


def test_single_leaf_tree():
    tree = MerkleTree([b"only"])
    assert tree.leaf_count == 1
    path = tree.auth_path(0)
    assert verify_chunk(tree.root, 0, b"only", path)
    assert hash_operations(path) == 1


def test_empty_tree_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_path_index_bounds():
    tree = MerkleTree(_chunks(4))
    with pytest.raises(IndexError):
        tree.auth_path(4)


def test_logarithmic_path_length():
    tree = MerkleTree(_chunks(1024))
    path = tree.auth_path(513)
    assert hash_operations(path) == 11  # 1 leaf + 10 levels
    assert path.transfer_bytes == 10 * 16


def test_odd_tail_promotion():
    """Non-power-of-two leaf counts still verify everywhere."""
    chunks = _chunks(11)
    tree = MerkleTree(chunks)
    for index in range(11):
        assert verify_chunk(
            tree.root, index, chunks[index], tree.auth_path(index)
        )


def test_root_deterministic():
    assert MerkleTree(_chunks(7)).root == MerkleTree(_chunks(7)).root
    assert MerkleTree(_chunks(7)).root != MerkleTree(_chunks(8)).root
