"""Unit tests for CBC mode and PKCS#7 padding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modes import (
    PaddingError,
    cbc_decrypt,
    cbc_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.xtea import BLOCK_SIZE

KEY = bytes(range(16))
IV = bytes(range(BLOCK_SIZE))


@given(st.binary(max_size=200))
def test_cbc_round_trip(plaintext):
    assert cbc_decrypt(cbc_encrypt(plaintext, KEY, IV), KEY, IV) == plaintext


@given(st.binary(max_size=64))
def test_padding_round_trip(data):
    padded = pkcs7_pad(data)
    assert len(padded) % BLOCK_SIZE == 0
    assert pkcs7_unpad(padded) == data


def test_padding_always_added():
    assert len(pkcs7_pad(b"x" * BLOCK_SIZE)) == 2 * BLOCK_SIZE


def test_bad_padding_rejected():
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"\x00" * BLOCK_SIZE)
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"1234567\x09")
    with pytest.raises(PaddingError):
        pkcs7_unpad(b"")


def test_iv_changes_ciphertext():
    other_iv = bytes([IV[0] ^ 1]) + IV[1:]
    assert cbc_encrypt(b"hello", KEY, IV) != cbc_encrypt(b"hello", KEY, other_iv)


def test_cbc_chains_blocks():
    # Two identical plaintext blocks must encrypt differently under CBC.
    plaintext = b"A" * BLOCK_SIZE * 2
    ciphertext = cbc_encrypt(plaintext, KEY, IV)
    assert ciphertext[:BLOCK_SIZE] != ciphertext[BLOCK_SIZE:2 * BLOCK_SIZE]


def test_bad_iv_size_rejected():
    with pytest.raises(ValueError):
        cbc_encrypt(b"x", KEY, b"short")
    with pytest.raises(ValueError):
        cbc_decrypt(b"x" * BLOCK_SIZE, KEY, b"short")


def test_non_block_ciphertext_rejected():
    with pytest.raises(ValueError):
        cbc_decrypt(b"123", KEY, IV)
    with pytest.raises(ValueError):
        cbc_decrypt(b"", KEY, IV)
