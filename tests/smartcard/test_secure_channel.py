"""Unit and integration tests for the access-rights update protocol."""

import pytest

from repro.smartcard.apdu import CommandAPDU, Instruction, StatusWord
from repro.smartcard.card import SmartCard
from repro.smartcard.secure_channel import (
    OP_PROVISION_KEY,
    OP_REVOKE_KEY,
    OP_SET_VERSION,
    CardSecureChannel,
    HostSecureChannel,
    SecureChannelError,
)

ADMIN_KEY = b"admin-master-key"
SECRET = b"doc-secret-16byt"


def _handshake(admin_key_host=ADMIN_KEY, admin_key_card=ADMIN_KEY):
    host = HostSecureChannel(admin_key_host)
    card = CardSecureChannel(admin_key_card)
    challenge = host.open()
    card_challenge, cryptogram = card.open(challenge)
    host.authenticate(card_challenge, cryptogram)
    return host, card


def test_handshake_and_one_command():
    host, card = _handshake()
    frame = host.wrap(OP_PROVISION_KEY, host.provision_key_payload("d", SECRET))
    opcode, payload = card.unwrap(frame)
    assert opcode == OP_PROVISION_KEY
    assert payload.endswith(SECRET)


def test_wrong_admin_key_fails_authentication():
    host = HostSecureChannel(b"x" * 16)
    card = CardSecureChannel(ADMIN_KEY)
    challenge = host.open()
    card_challenge, cryptogram = card.open(challenge)
    with pytest.raises(SecureChannelError):
        host.authenticate(card_challenge, cryptogram)


def test_replayed_frame_rejected():
    host, card = _handshake()
    frame = host.wrap(OP_SET_VERSION, host.set_version_payload("d", 5))
    card.unwrap(frame)
    with pytest.raises(SecureChannelError):
        card.unwrap(frame)  # same sequence number


def test_reordered_frames_rejected():
    host, card = _handshake()
    first = host.wrap(OP_SET_VERSION, host.set_version_payload("d", 1))
    second = host.wrap(OP_SET_VERSION, host.set_version_payload("d", 2))
    with pytest.raises(SecureChannelError):
        card.unwrap(second)  # skipping frame 0
    # Fail-stop: even the correct frame is now refused.
    with pytest.raises(SecureChannelError):
        card.unwrap(first)


def test_tampered_frame_rejected():
    host, card = _handshake()
    frame = bytearray(host.wrap(OP_REVOKE_KEY, host.revoke_key_payload("d")))
    frame[6] ^= 1
    with pytest.raises(SecureChannelError):
        card.unwrap(bytes(frame))


def test_commands_before_handshake_rejected():
    card = CardSecureChannel(ADMIN_KEY)
    with pytest.raises(SecureChannelError):
        card.unwrap(b"\x00" * 16)
    host = HostSecureChannel(ADMIN_KEY)
    host.open()
    with pytest.raises(SecureChannelError):
        host.wrap(OP_REVOKE_KEY, b"")


def test_cross_session_frames_rejected():
    host_a, card = _handshake()
    frame = host_a.wrap(OP_SET_VERSION, host_a.set_version_payload("d", 1))
    # A new handshake invalidates old session frames.
    host_b = HostSecureChannel(ADMIN_KEY)
    card_challenge, cryptogram = card.open(host_b.open())
    host_b.authenticate(card_challenge, cryptogram)
    with pytest.raises(SecureChannelError):
        card.unwrap(frame)


# -- through the APDU layer ---------------------------------------------------


def _personalized_card():
    card = SmartCard(admin_key=ADMIN_KEY)
    card.process(CommandAPDU(Instruction.SELECT, data=b"aid"))
    return card


def _open_channel(card):
    host = HostSecureChannel(ADMIN_KEY)
    response = card.process(
        CommandAPDU(Instruction.SC_OPEN, data=host.open())
    )
    assert response.sw == StatusWord.OK
    host.authenticate(response.data[:8], response.data[8:])
    return host


def test_plain_provisioning_refused_on_personalized_card():
    card = _personalized_card()
    data = bytes([1]) + b"d" + SECRET
    response = card.process(
        CommandAPDU(Instruction.ADMIN_PROVISION_KEY, data=data)
    )
    assert response.sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED


def test_secure_provisioning_through_apdus():
    card = _personalized_card()
    host = _open_channel(card)
    frame = host.wrap(OP_PROVISION_KEY, host.provision_key_payload("d", SECRET))
    response = card.process(CommandAPDU(Instruction.SC_ADMIN, data=frame))
    assert response.sw == StatusWord.OK
    assert card.soe.keys_for("d").secret == SECRET


def test_secure_revocation_through_apdus():
    card = _personalized_card()
    host = _open_channel(card)
    card.process(CommandAPDU(
        Instruction.SC_ADMIN,
        data=host.wrap(OP_PROVISION_KEY, host.provision_key_payload("d", SECRET)),
    ))
    response = card.process(CommandAPDU(
        Instruction.SC_ADMIN,
        data=host.wrap(OP_REVOKE_KEY, host.revoke_key_payload("d")),
    ))
    assert response.sw == StatusWord.OK
    assert "d" not in card.soe.keyring


def test_secure_version_reset_through_apdus():
    card = _personalized_card()
    host = _open_channel(card)
    card.soe.advance_version_register("d", 9)
    response = card.process(CommandAPDU(
        Instruction.SC_ADMIN,
        data=host.wrap(OP_SET_VERSION, host.set_version_payload("d", 2)),
    ))
    assert response.sw == StatusWord.OK
    assert card.soe.version_register("d") == 2


def test_forged_frame_through_apdus_rejected():
    card = _personalized_card()
    host = _open_channel(card)
    frame = bytearray(
        host.wrap(OP_PROVISION_KEY, host.provision_key_payload("d", SECRET))
    )
    frame[-1] ^= 1
    response = card.process(CommandAPDU(Instruction.SC_ADMIN, data=bytes(frame)))
    assert response.sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED
    assert "d" not in card.soe.keyring


def test_sc_instructions_refused_without_personalization():
    card = SmartCard()  # no admin key
    card.process(CommandAPDU(Instruction.SELECT, data=b"aid"))
    response = card.process(CommandAPDU(Instruction.SC_OPEN, data=b"x" * 8))
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED
