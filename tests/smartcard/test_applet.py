"""Unit tests for the on-card applet (session protocol level)."""

import pytest

from repro.core import AccessRule, RuleSet, reference_view
from repro.crypto.container import IntegrityError, seal_blob, seal_document
from repro.crypto.keys import DocumentKeys
from repro.errors import DocumentLocked
from repro.skipindex.encoder import IndexMode, encode_document
from repro.smartcard.applet import AppletError, CardApplet, PendingStrategy
from repro.smartcard.soe import SecureOperatingEnvironment
from repro.xmlstream.parser import parse_string
from repro.xmlstream.tree import parse_tree
from repro.xmlstream.writer import write_string

SECRET = b"unit-test-secret"
DOC = "<r><pub>open</pub><priv>hidden</priv></r>"
RULES = [("+", "u", "/r"), ("-", "u", "//priv")]


def _publish(document=DOC, version=1, index_mode=IndexMode.RECURSIVE, chunk_size=48):
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string(document), index_mode)
    container = seal_document(plaintext, "d", version, keys, chunk_size=chunk_size)
    records = [
        seal_blob(
            f"{sign}|{subject}|{path}".encode(), f"d#rule:{i}", version, keys
        )
        for i, (sign, subject, path) in enumerate(RULES)
    ]
    return container, records, version


def _applet(strict=False, strategy=PendingStrategy.BUFFER):
    soe = SecureOperatingEnvironment(strict_memory=strict)
    soe.provision_key("d", SECRET)
    return CardApplet(soe, strategy=strategy)


def _run_session(applet, container, records, version, subject="u"):
    applet.begin_session("d", subject)
    applet.put_header(container.header)
    for index, record in enumerate(records):
        applet.put_rule_record(index, version, record)
    index = 0
    output = bytearray()
    while index < container.header.chunk_count:
        result = applet.put_chunk(index, container.chunks[index])
        output.extend(applet.read_output(1 << 20))
        if result.document_done:
            break
        index = max(index + 1, result.next_offset // container.header.chunk_size)
    applet.end_document()
    output.extend(applet.read_output(1 << 20))
    return output.decode("utf-8")


def test_full_session_produces_authorized_view():
    container, records, version = _publish()
    view = _run_session(_applet(), container, records, version)
    rules = RuleSet([AccessRule.parse(s, u, p) for s, u, p in RULES])
    expected = write_string(reference_view(parse_tree(DOC), rules, "u"))
    assert view == expected


def test_session_requires_provisioned_key():
    applet = CardApplet(SecureOperatingEnvironment())
    with pytest.raises(DocumentLocked) as info:
        applet.begin_session("unknown", "u")
    assert "'unknown'" in str(info.value)
    assert info.value.doc_id == "unknown"


def test_header_for_other_document_rejected():
    container, __, ___ = _publish()
    applet = _applet()
    applet.soe.provision_key("other", SECRET)
    applet.begin_session("other", "u")
    with pytest.raises(IntegrityError):
        applet.put_header(container.header)


def test_version_replay_rejected():
    container_v2, records2, v2 = _publish(version=2)
    container_v1, records1, v1 = _publish(version=1)
    applet = _applet()
    applet.begin_session("d", "u")
    applet.put_header(container_v2.header)  # register jumps to 2
    applet.begin_session("d", "u")
    with pytest.raises(IntegrityError):
        applet.put_header(container_v1.header)


def test_same_version_accepted_again():
    container, records, version = _publish()
    applet = _applet()
    _run_session(applet, container, records, version)
    view = _run_session(applet, container, records, version)
    assert "open" in view


def test_chunks_before_header_rejected():
    container, __, ___ = _publish()
    applet = _applet()
    applet.begin_session("d", "u")
    with pytest.raises(AppletError):
        applet.put_chunk(0, container.chunks[0])


def test_structural_truncation_detected():
    container, records, version = _publish()
    applet = _applet()
    applet.begin_session("d", "u")
    applet.put_header(container.header)
    for index, record in enumerate(records):
        applet.put_rule_record(index, version, record)
    applet.put_chunk(0, container.chunks[0])
    with pytest.raises(IntegrityError):
        applet.end_document()


def test_corrupted_rule_record_rejected():
    container, records, version = _publish()
    applet = _applet()
    applet.begin_session("d", "u")
    applet.put_header(container.header)
    bad = bytearray(records[0])
    bad[0] ^= 1
    with pytest.raises(IntegrityError):
        applet.put_rule_record(0, version, bytes(bad))


def test_skip_accounting_without_index_is_zero():
    container, records, version = _publish(index_mode=IndexMode.NONE)
    applet = _applet()
    _run_session(applet, container, records, version)
    assert applet.bytes_skipped == 0
    assert applet.bytes_decrypted >= container.header.total_length


def test_skip_reduces_decryption_with_index():
    big_doc = "<r><pub>open</pub><priv>" + "hidden " * 120 + "</priv></r>"
    container, records, version = _publish(big_doc, chunk_size=48)
    applet = _applet()
    view = _run_session(applet, container, records, version)
    assert "hidden" not in view
    assert applet.bytes_skipped > 500
    assert applet.bytes_decrypted < container.header.total_length


def test_refetch_flow_delivers_fragment():
    document = "<r><b><d>early</d><c/></b></r>"
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string(document), IndexMode.RECURSIVE)
    container = seal_document(plaintext, "d", 1, keys, chunk_size=32)
    record = seal_blob(b"+|u|//b[c]/d", "d#rule:0", 1, keys)
    applet = _applet(strategy=PendingStrategy.REFETCH)
    applet.begin_session("d", "u", strategy=PendingStrategy.REFETCH)
    applet.put_header(container.header)
    applet.put_rule_record(0, 1, record)
    index = 0
    main = bytearray()
    while index < container.header.chunk_count:
        result = applet.put_chunk(index, container.chunks[index])
        main.extend(applet.read_output(1 << 20))
        if result.document_done:
            break
        index = max(index + 1, result.next_offset // 32)
    granted = applet.end_document()
    main.extend(applet.read_output(1 << 20))
    assert len(granted) == 1
    entry = granted[0]
    applet.begin_refetch(entry.entry_id)
    first = entry.start // 32
    last = (entry.end - 1) // 32
    fragment = bytearray()
    for chunk_index in range(first, last + 1):
        result = applet.put_refetch_chunk(chunk_index, container.chunks[chunk_index])
        fragment.extend(applet.read_output(1 << 20))
        if result.document_done:
            break
    assert "early" in fragment.decode()
    assert "early" not in main.decode()


def test_refetch_requires_main_pass_done():
    container, records, version = _publish()
    applet = _applet()
    applet.begin_session("d", "u")
    with pytest.raises(AppletError):
        applet.begin_refetch(0)
