"""Unit tests for the SOE abstraction."""

import pytest

from repro.smartcard.resources import CostModel
from repro.smartcard.soe import SecureOperatingEnvironment


def test_cycle_charging_advances_clock():
    soe = SecureOperatingEnvironment(CostModel(cpu_hz=1000))
    soe.charge_cycles(500)
    assert soe.cycles_used == 500
    assert soe.clock.component("card_cpu") == pytest.approx(0.5)


def test_per_byte_charges_scale():
    soe = SecureOperatingEnvironment()
    soe.charge_decrypt(100)
    after_decrypt = soe.cycles_used
    soe.charge_mac(100)
    assert soe.cycles_used > after_decrypt


def test_eeprom_writes_are_slow():
    soe = SecureOperatingEnvironment()
    soe.eeprom_write(100)
    assert soe.eeprom_bytes_written == 100
    assert soe.clock.component("eeprom") > 0


def test_key_provisioning():
    soe = SecureOperatingEnvironment()
    soe.provision_key("doc", b"s" * 16)
    assert soe.keys_for("doc").secret == b"s" * 16
    assert soe.eeprom_bytes_written >= 19


def test_version_register_monotonic():
    soe = SecureOperatingEnvironment()
    assert soe.version_register("doc") == 0
    soe.advance_version_register("doc", 3)
    assert soe.version_register("doc") == 3
    soe.advance_version_register("doc", 2)  # lower: ignored
    assert soe.version_register("doc") == 3
    soe.advance_version_register("doc", 5)
    assert soe.version_register("doc") == 5


def test_version_register_writes_eeprom_only_on_advance():
    soe = SecureOperatingEnvironment()
    soe.advance_version_register("doc", 1)
    written = soe.eeprom_bytes_written
    soe.advance_version_register("doc", 1)
    assert soe.eeprom_bytes_written == written
