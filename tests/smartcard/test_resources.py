"""Unit tests for the cost model and simulated clock."""

import pytest

from repro.smartcard.resources import (
    CostModel,
    LinkModel,
    NetworkModel,
    SessionMetrics,
    SimClock,
)


def test_cost_model_seconds():
    cost = CostModel(cpu_hz=1_000_000)
    assert cost.seconds(1_000_000) == 1.0


def test_link_transfer_matches_paper_bandwidth():
    link = LinkModel()
    # 2 KB at 2 KB/s takes one second -- the paper's headline number.
    assert link.transfer_seconds(2048) == pytest.approx(1.0)


def test_network_is_much_faster_than_link():
    assert NetworkModel().transfer_seconds(2048) < LinkModel().transfer_seconds(2048) / 100


def test_clock_accumulates_components():
    clock = SimClock()
    clock.add("cpu", 0.5)
    clock.add("cpu", 0.25)
    clock.add("link", 1.0)
    assert clock.component("cpu") == pytest.approx(0.75)
    assert clock.total() == pytest.approx(1.75)
    assert set(clock.breakdown()) == {"cpu", "link"}


def test_clock_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().add("cpu", -1.0)


def test_clock_reset():
    clock = SimClock()
    clock.add("cpu", 1.0)
    clock.reset()
    assert clock.total() == 0.0


def test_session_metrics_as_dict():
    metrics = SessionMetrics()
    metrics.bytes_decrypted = 100
    metrics.clock.add("link", 2.0)
    flat = metrics.as_dict()
    assert flat["bytes_decrypted"] == 100
    assert flat["time_link"] == 2.0
    assert flat["time_total"] == 2.0
