"""Unit tests for the secure-RAM meter."""

import pytest

from repro.smartcard.memory import CardMemoryError, MemoryMeter


def test_allocation_tracking():
    meter = MemoryMeter(quota=100)
    meter.allocate("a", 40)
    meter.allocate("b", 30)
    assert meter.usage() == 70
    assert meter.usage("a") == 40
    assert meter.breakdown() == {"a": 40, "b": 30}


def test_high_water_persists_after_release():
    meter = MemoryMeter(quota=100)
    meter.allocate("a", 80)
    meter.release("a", 80)
    assert meter.usage() == 0
    assert meter.high_water == 80


def test_strict_quota_enforced():
    meter = MemoryMeter(quota=100, strict=True)
    meter.allocate("a", 90)
    with pytest.raises(CardMemoryError) as info:
        meter.allocate("a", 20)
    assert info.value.requested == 20
    assert info.value.quota == 100


def test_soft_mode_records_overflow():
    meter = MemoryMeter(quota=100, strict=False)
    meter.allocate("a", 150)
    assert meter.overflowed
    assert meter.high_water == 150


def test_unlimited_quota():
    meter = MemoryMeter(quota=None)
    meter.allocate("a", 10**9)
    assert not meter.overflowed


def test_release_more_than_held_rejected():
    meter = MemoryMeter(quota=None)
    meter.allocate("a", 10)
    with pytest.raises(ValueError):
        meter.release("a", 20)


def test_negative_allocation_rejected():
    meter = MemoryMeter(quota=None)
    with pytest.raises(ValueError):
        meter.allocate("a", -1)
