"""Unit tests for APDU framing."""

import pytest

from repro.smartcard.apdu import (
    BatchAssembler,
    CommandAPDU,
    Instruction,
    ResponseAPDU,
    StatusWord,
    encode_batch_records,
    split_payload,
)


def test_command_wire_size():
    command = CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 10)
    assert command.wire_size == 15


def test_command_data_limit():
    CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 255)
    with pytest.raises(ValueError):
        CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 256)


def test_command_byte_ranges():
    with pytest.raises(ValueError):
        CommandAPDU(Instruction.SELECT, p1=300)


def test_response_ok_statuses():
    assert ResponseAPDU(StatusWord.OK).ok
    assert ResponseAPDU(0x6103, b"x").ok  # 61xx means more output
    assert not ResponseAPDU(StatusWord.WRONG_DATA).ok


def test_response_wire_size():
    assert ResponseAPDU(StatusWord.OK, b"abc").wire_size == 5


def test_response_data_limit():
    with pytest.raises(ValueError):
        ResponseAPDU(StatusWord.OK, b"x" * 257)


def test_split_payload():
    pieces = split_payload(b"x" * 600)
    assert [len(p) for p in pieces] == [255, 255, 90]
    assert split_payload(b"") == [b""]
    assert split_payload(b"ab", limit=1) == [b"a", b"b"]


# -- chunk-batch framing -----------------------------------------------------


def _roundtrip(members, limit):
    """Frame members with split_payload, reassemble card-side."""
    assembler = BatchAssembler()
    out = []
    for frame in split_payload(encode_batch_records(members), limit):
        out.extend(assembler.feed(frame))
    return out, assembler


def test_batch_records_roundtrip():
    members = [(0, b"alpha"), (1, b"bravo!"), (7, b"")]
    got, assembler = _roundtrip(members, 255)
    assert got == members
    assert assembler.residue == 0


def test_batch_records_survive_any_frame_cut():
    """Records may be cut mid-header or mid-blob at every frame size."""
    members = [(3, bytes(range(90))), (4, b"x" * 120), (5, b"tail")]
    for limit in (1, 2, 3, 5, 64, 255):
        got, assembler = _roundtrip(members, limit)
        assert got == members, f"limit={limit}"
        assert assembler.residue == 0


def test_batch_assembler_reports_residue():
    assembler = BatchAssembler()
    payload = encode_batch_records([(1, b"abcdef")])
    assert assembler.feed(payload[:-2]) == []
    assert assembler.residue == len(payload) - 2
    assert assembler.feed(payload[-2:]) == [(1, b"abcdef")]
    assembler.feed(payload[:3])
    assembler.reset()
    assert assembler.residue == 0


def test_batch_record_bounds():
    with pytest.raises(ValueError):
        encode_batch_records([(0x10000, b"")])
    with pytest.raises(ValueError):
        encode_batch_records([(0, b"x" * 0x10001)])
