"""Unit tests for APDU framing."""

import pytest

from repro.smartcard.apdu import (
    CommandAPDU,
    Instruction,
    ResponseAPDU,
    StatusWord,
    split_payload,
)


def test_command_wire_size():
    command = CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 10)
    assert command.wire_size == 15


def test_command_data_limit():
    CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 255)
    with pytest.raises(ValueError):
        CommandAPDU(Instruction.PUT_CHUNK, data=b"x" * 256)


def test_command_byte_ranges():
    with pytest.raises(ValueError):
        CommandAPDU(Instruction.SELECT, p1=300)


def test_response_ok_statuses():
    assert ResponseAPDU(StatusWord.OK).ok
    assert ResponseAPDU(0x6103, b"x").ok  # 61xx means more output
    assert not ResponseAPDU(StatusWord.WRONG_DATA).ok


def test_response_wire_size():
    assert ResponseAPDU(StatusWord.OK, b"abc").wire_size == 5


def test_response_data_limit():
    with pytest.raises(ValueError):
        ResponseAPDU(StatusWord.OK, b"x" * 257)


def test_split_payload():
    pieces = split_payload(b"x" * 600)
    assert [len(p) for p in pieces] == [255, 255, 90]
    assert split_payload(b"") == [b""]
    assert split_payload(b"ab", limit=1) == [b"a", b"b"]
