"""Unit tests for the APDU dispatcher."""

import struct

from repro.crypto.container import seal_document
from repro.crypto.keys import DocumentKeys
from repro.skipindex.encoder import encode_document
from repro.smartcard.apdu import CommandAPDU, Instruction, StatusWord
from repro.smartcard.card import SmartCard, decode_header, encode_header
from repro.xmlstream.parser import parse_string

SECRET = b"card-test-secret"


def _select(card):
    response = card.process(CommandAPDU(Instruction.SELECT, data=b"aid"))
    assert response.sw == StatusWord.OK
    return response


def test_commands_before_select_rejected():
    card = SmartCard()
    response = card.process(CommandAPDU(Instruction.GET_STATUS))
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED


def test_unknown_instruction():
    card = SmartCard()
    _select(card)
    response = card.process(CommandAPDU(Instruction.ADMIN_SET_VERSION))
    assert response.sw == StatusWord.INS_NOT_SUPPORTED


def test_provision_key_roundtrip():
    card = SmartCard()
    _select(card)
    data = bytes([3]) + b"doc" + SECRET
    response = card.process(
        CommandAPDU(Instruction.ADMIN_PROVISION_KEY, data=data)
    )
    assert response.sw == StatusWord.OK
    assert card.soe.keys_for("doc").secret == SECRET


def test_header_codec_round_trip():
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string("<a>x</a>"))
    container = seal_document(plaintext, "docid", 7, keys, chunk_size=32)
    decoded = decode_header(encode_header(container.header))
    assert decoded == container.header


def test_begin_session_without_key_maps_to_status_word():
    card = SmartCard()
    _select(card)
    data = bytes([0, 1]) + b"d" + bytes([1]) + b"u"
    response = card.process(CommandAPDU(Instruction.BEGIN_SESSION, data=data))
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED


def test_malformed_data_maps_to_wrong_data():
    card = SmartCard()
    _select(card)
    response = card.process(
        CommandAPDU(Instruction.BEGIN_SESSION, data=b"")
    )
    assert response.sw == StatusWord.WRONG_DATA


def test_security_failure_maps_to_status_word():
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string("<a>x</a>"))
    container = seal_document(plaintext, "d", 1, keys, chunk_size=32)
    card = SmartCard()
    _select(card)
    card.process(
        CommandAPDU(
            Instruction.ADMIN_PROVISION_KEY,
            data=bytes([1]) + b"d" + b"wrong-key-16byte",
        )
    )
    begin = bytes([0, 1]) + b"d" + bytes([1]) + b"u"
    assert card.process(
        CommandAPDU(Instruction.BEGIN_SESSION, data=begin)
    ).sw == StatusWord.OK
    response = card.process(
        CommandAPDU(Instruction.PUT_HEADER, data=encode_header(container.header))
    )
    assert response.sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED


def test_get_status_payload():
    card = SmartCard()
    _select(card)
    response = card.process(CommandAPDU(Instruction.GET_STATUS))
    assert response.sw == StatusWord.OK
    ram, cycles, decrypted, skipped = struct.unpack(">IQQQ", response.data)
    assert ram >= 0 and cycles >= 0 and decrypted == 0 and skipped == 0


def _streaming_card(doc_id="d"):
    """A card with a verified header, ready to take chunks."""
    keys = DocumentKeys(SECRET)
    body = " ".join(f"word{i}" for i in range(40))
    plaintext = encode_document(
        parse_string(f"<a><b>{body}</b><c>two</c></a>")
    )
    container = seal_document(plaintext, doc_id, 1, keys, chunk_size=32)
    card = SmartCard()
    _select(card)
    card.process(
        CommandAPDU(
            Instruction.ADMIN_PROVISION_KEY,
            data=bytes([len(doc_id)]) + doc_id.encode() + SECRET,
        )
    )
    begin = bytes([0, len(doc_id)]) + doc_id.encode() + bytes([1]) + b"u"
    assert card.process(
        CommandAPDU(Instruction.BEGIN_SESSION, data=begin)
    ).sw == StatusWord.OK
    assert card.process(
        CommandAPDU(Instruction.PUT_HEADER, data=encode_header(container.header))
    ).sw == StatusWord.OK
    # Grant everything to "u" so no subtree is skipped: every chunk of
    # the stream is genuinely needed by the card.
    from repro.crypto.container import seal_blob

    record = seal_blob(b"+|u|//a", f"{doc_id}#rule:0", 1, keys)
    rule = struct.pack(">Q", 1) + record
    assert card.process(
        CommandAPDU(Instruction.PUT_RULES, data=rule)
    ).sw == StatusWord.OK
    return card, container


def test_chunk_batch_before_header_rejected():
    card = SmartCard()
    _select(card)
    from repro.smartcard.apdu import BATCH_FINAL

    response = card.process(
        CommandAPDU(Instruction.PUT_CHUNK_BATCH, p1=BATCH_FINAL, data=b"")
    )
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED


def test_chunk_batch_truncated_record_rejected():
    from repro.smartcard.apdu import BATCH_FINAL, encode_batch_records

    card, container = _streaming_card()
    payload = encode_batch_records([(0, container.chunks[0])])
    response = card.process(
        CommandAPDU(Instruction.PUT_CHUNK_BATCH, p1=BATCH_FINAL, data=payload[:-1])
    )
    assert response.sw == StatusWord.WRONG_DATA
    # The aborted batch leaves the card able to start a fresh one.
    response = card.process(
        CommandAPDU(Instruction.PUT_CHUNK_BATCH, p1=BATCH_FINAL, data=payload)
    )
    assert response.ok


def test_chunk_batch_matches_per_chunk_results():
    from repro.smartcard.apdu import (
        BATCH_FINAL,
        encode_batch_records,
        split_payload,
    )

    card, container = _streaming_card()
    members = list(enumerate(container.chunks))
    frames = split_payload(encode_batch_records(members), 255)
    for position, frame in enumerate(frames):
        final = position == len(frames) - 1
        response = card.process(
            CommandAPDU(
                Instruction.PUT_CHUNK_BATCH,
                p1=BATCH_FINAL if final else 0,
                data=frame,
            )
        )
        assert response.ok
        if not final:
            assert response.data == b""
    next_offset, done, consumed, dropped, dropped_bytes = struct.unpack(
        ">QBHHI", response.data[:17]
    )
    assert done == 1
    assert consumed == len(members)
    assert dropped == 0 and dropped_bytes == 0
    # Compare against the sequential card: same resume offset, and the
    # batch response piggybacks the same authorized output bytes.
    other, __ = _streaming_card()
    for index, blob in members:
        seq_resp = other.process(
            CommandAPDU(
                Instruction.PUT_CHUNK,
                p1=index >> 8,
                p2=index & 0xFF,
                data=blob,
            )
        )
        assert seq_resp.ok
    seq_offset, seq_done = struct.unpack(">QB", seq_resp.data[:9])
    assert (next_offset, done) == (seq_offset, seq_done)
    assert card.applet.bytes_decrypted == other.applet.bytes_decrypted
