"""Unit tests for the APDU dispatcher."""

import struct

from repro.crypto.container import seal_document
from repro.crypto.keys import DocumentKeys
from repro.skipindex.encoder import encode_document
from repro.smartcard.apdu import CommandAPDU, Instruction, StatusWord
from repro.smartcard.card import SmartCard, decode_header, encode_header
from repro.xmlstream.parser import parse_string

SECRET = b"card-test-secret"


def _select(card):
    response = card.process(CommandAPDU(Instruction.SELECT, data=b"aid"))
    assert response.sw == StatusWord.OK
    return response


def test_commands_before_select_rejected():
    card = SmartCard()
    response = card.process(CommandAPDU(Instruction.GET_STATUS))
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED


def test_unknown_instruction():
    card = SmartCard()
    _select(card)
    response = card.process(CommandAPDU(Instruction.ADMIN_SET_VERSION))
    assert response.sw == StatusWord.INS_NOT_SUPPORTED


def test_provision_key_roundtrip():
    card = SmartCard()
    _select(card)
    data = bytes([3]) + b"doc" + SECRET
    response = card.process(
        CommandAPDU(Instruction.ADMIN_PROVISION_KEY, data=data)
    )
    assert response.sw == StatusWord.OK
    assert card.soe.keys_for("doc").secret == SECRET


def test_header_codec_round_trip():
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string("<a>x</a>"))
    container = seal_document(plaintext, "docid", 7, keys, chunk_size=32)
    decoded = decode_header(encode_header(container.header))
    assert decoded == container.header


def test_begin_session_without_key_maps_to_status_word():
    card = SmartCard()
    _select(card)
    data = bytes([0, 1]) + b"d" + bytes([1]) + b"u"
    response = card.process(CommandAPDU(Instruction.BEGIN_SESSION, data=data))
    assert response.sw == StatusWord.CONDITIONS_NOT_SATISFIED


def test_malformed_data_maps_to_wrong_data():
    card = SmartCard()
    _select(card)
    response = card.process(
        CommandAPDU(Instruction.BEGIN_SESSION, data=b"")
    )
    assert response.sw == StatusWord.WRONG_DATA


def test_security_failure_maps_to_status_word():
    keys = DocumentKeys(SECRET)
    plaintext = encode_document(parse_string("<a>x</a>"))
    container = seal_document(plaintext, "d", 1, keys, chunk_size=32)
    card = SmartCard()
    _select(card)
    card.process(
        CommandAPDU(
            Instruction.ADMIN_PROVISION_KEY,
            data=bytes([1]) + b"d" + b"wrong-key-16byte",
        )
    )
    begin = bytes([0, 1]) + b"d" + bytes([1]) + b"u"
    assert card.process(
        CommandAPDU(Instruction.BEGIN_SESSION, data=begin)
    ).sw == StatusWord.OK
    response = card.process(
        CommandAPDU(Instruction.PUT_HEADER, data=encode_header(container.header))
    )
    assert response.sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED


def test_get_status_payload():
    card = SmartCard()
    _select(card)
    response = card.process(CommandAPDU(Instruction.GET_STATUS))
    assert response.sw == StatusWord.OK
    ram, cycles, decrypted, skipped = struct.unpack(">IQQQ", response.data)
    assert ram >= 0 and cycles >= 0 and decrypted == 0 and skipped == 0
