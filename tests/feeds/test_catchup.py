"""Late-joiner catch-up: snapshots, invalidation, durability, codec."""

import pytest

from repro.community import Community, TierSpec
from repro.dsp.backends import ShardedBackend
from repro.errors import PolicyError, TamperDetected
from repro.feeds import CycleSnapshot, decode_snapshot, encode_snapshot

REPORT = (
    "<report><summary>sum</summary>"
    "<body>text<secret>classified</secret></body></report>"
)
TIERS = [
    TierSpec("public", allow=("/report/summary",)),
    TierSpec("internal", allow=("/report",)),
]


def _build(community):
    owner = community.enroll("owner")
    community.enroll("alice", strict_memory=False)
    community.enroll("bob", strict_memory=False)
    community.enroll("late", strict_memory=False)
    feed = community.feed("intel", owner=owner, tiers=TIERS)
    feed.publish(REPORT, doc_id="rpt")
    return feed


def test_catch_up_view_is_byte_identical_to_live_cycle():
    """The differential contract: a late joiner who replays the
    snapshot sees EXACTLY what a member who listened live saw."""
    community = Community()
    feed = _build(community)
    live = feed.subscribe("alice", "internal")
    feed.subscribe("late", "internal")  # joined, but missed the cycle
    feed.broadcast()
    live.require_ok()
    caught = feed.catch_up("late")
    caught.require_ok()
    assert caught.view == live.view
    assert caught.docs_complete == live.docs_complete == 1


def test_catch_up_per_tier_views_differ():
    community = Community()
    feed = _build(community)
    pub = feed.subscribe("alice", "public")
    feed.subscribe("bob", "internal")
    feed.subscribe("late", "public")
    feed.broadcast()
    caught = feed.catch_up("late")
    caught.require_ok()
    assert caught.view == pub.view == "<report><summary>sum</summary></report>"
    internal = feed.catch_up("bob")
    internal.require_ok()
    assert "<secret>classified</secret>" in internal.view


def test_catch_up_before_any_broadcast_synthesizes_from_store():
    """A live feed can serve catch-up even if no cycle ever ran: the
    snapshot is rebuilt from the stored corpus on demand."""
    community = Community()
    feed = _build(community)
    feed.subscribe("late", "internal")
    caught = feed.catch_up("late")
    caught.require_ok()
    assert "<secret>classified</secret>" in caught.view


def test_catch_up_is_one_shot_and_detached():
    """The catch-up handle never attaches to the live lane -- a member
    holding both a live and a catch-up handle must not run two card
    sessions during the next cycle."""
    community = Community()
    feed = _build(community)
    live = feed.subscribe("alice", "internal")
    feed.broadcast()
    caught = feed.catch_up("alice")
    frozen = caught.view
    feed.broadcast(cycles=2)
    assert caught.view == frozen
    live.require_ok()
    assert feed.handles("internal") == [live]


def test_republish_invalidates_snapshot():
    community = Community()
    feed = _build(community)
    feed.subscribe("late", "internal")
    feed.broadcast()
    feed.publish(
        "<report><summary>v2</summary><body>b2</body></report>",
        doc_id="rpt",
    )  # republish WITHOUT a new broadcast
    caught = feed.catch_up("late")
    caught.require_ok()
    assert "v2" in caught.view
    assert "classified" not in caught.view


def test_revocation_invalidates_snapshot_for_remaining_members():
    """After a tier revoke the old snapshot (old epoch) must never be
    served: the surviving member's catch-up is rebuilt under the new
    epoch."""
    community = Community()
    feed = _build(community)
    feed.subscribe("alice", "internal")
    feed.subscribe("bob", "internal")
    feed.broadcast()
    feed.revoke("bob")
    caught = feed.catch_up("alice")
    caught.require_ok()
    assert "<secret>classified</secret>" in caught.view
    assert feed.epoch("internal") == 2


def test_durable_reopen_serves_catch_up(tmp_path):
    path = tmp_path / "community.db"
    community = Community(store_path=path)
    feed = _build(community)
    live = feed.subscribe("late", "internal")
    feed.broadcast()
    live.require_ok()
    live_view = live.view
    community.close()

    reopened = Community.open(path)
    restored = reopened.feed("intel")
    assert restored.sealed
    assert [spec.name for spec in restored.tiers] == ["public", "internal"]
    assert [doc.doc_id for doc in restored.documents] == ["rpt"]
    caught = restored.catch_up("late")
    caught.require_ok()
    assert caught.view == live_view
    assert restored.epoch("internal") == 1
    reopened.close()


def test_sealed_feed_refuses_owner_operations(tmp_path):
    path = tmp_path / "community.db"
    community = Community(store_path=path)
    feed = _build(community)
    feed.broadcast()
    community.close()

    reopened = Community.open(path)
    restored = reopened.feed("intel")
    with pytest.raises(PolicyError, match="sealed"):
        restored.publish("<r>x</r>")
    with pytest.raises(PolicyError, match="sealed"):
        restored.subscribe("late", "internal")
    with pytest.raises(PolicyError, match="sealed"):
        restored.broadcast()
    with pytest.raises(PolicyError, match="sealed"):
        restored.revoke("late")
    with pytest.raises(PolicyError, match="sealed"):
        restored.preview()
    reopened.close()


def test_sealed_feed_with_stale_snapshot_raises(tmp_path):
    """A republish after the last broadcast makes the persisted cycle
    stale; a sealed handle cannot rebuild it and must say so rather
    than serve old bytes."""
    path = tmp_path / "community.db"
    community = Community(store_path=path)
    feed = _build(community)
    feed.subscribe("late", "internal")
    feed.broadcast()
    feed.publish(
        "<report><summary>v2</summary><body>b2</body></report>",
        doc_id="rpt",
    )  # no rebroadcast
    community.close()

    reopened = Community.open(path)
    with pytest.raises(PolicyError, match="is stale"):
        reopened.feed("intel").catch_up("late")
    reopened.close()


def test_sealed_feed_never_broadcast_raises(tmp_path):
    path = tmp_path / "community.db"
    community = Community(store_path=path)
    feed = _build(community)
    feed.subscribe("late", "internal")
    community.close()

    reopened = Community.open(path)
    with pytest.raises(PolicyError, match="never recorded"):
        reopened.feed("intel").catch_up("late")
    reopened.close()


def test_memory_backend_catches_up_without_persistence():
    """The in-memory store has no snapshot table; live feeds rebuild
    from the corpus so catch-up still works."""
    community = Community()
    feed = _build(community)
    feed.subscribe("late", "public")
    feed.broadcast()
    caught = feed.catch_up("late")
    caught.require_ok()
    assert caught.view == "<report><summary>sum</summary></report>"


# -- snapshot codec -------------------------------------------------------


def _snapshot():
    return CycleSnapshot(
        feed="intel",
        tier="internal",
        epoch=3,
        generation=17,
        boot="deadbeefcafef00d",
        docs=(("rpt", 2, 1), ("memo", 1, 1)),
        frames=(
            ("header", 0, b"\x00\x01header"),
            ("chunk", 0, b"chunk-zero"),
            ("chunk", 1, b""),
            ("end", 0, b""),
        ),
    )


def test_snapshot_codec_roundtrip():
    snapshot = _snapshot()
    assert decode_snapshot(encode_snapshot(snapshot)) == snapshot


def test_snapshot_codec_rejects_corruption():
    blob = encode_snapshot(_snapshot())
    with pytest.raises(TamperDetected):
        decode_snapshot(blob[:-3])  # truncated
    with pytest.raises(TamperDetected):
        decode_snapshot(b"XXXXXX\n" + blob[7:])  # bad magic
    with pytest.raises(TamperDetected):
        decode_snapshot(blob + b"\x00")  # trailing bytes


def test_sharded_backend_snapshots_live_on_shard_zero(tmp_path):
    backend = ShardedBackend.sqlite(tmp_path / "dsp.db", shards=4)
    try:
        assert backend.get_feed_snapshot("intel", "public") is None
        backend.put_feed_snapshot("intel", "public", b"blob", epoch=2)
        assert backend.get_feed_snapshot("intel", "public") == b"blob"
        assert backend.delete_feed_snapshot("intel", "public") is True
        assert backend.delete_feed_snapshot("intel", "public") is False
    finally:
        backend.close()


def test_sharded_memory_backend_degrades_snapshot_persistence():
    """A volatile shard 0 cannot persist snapshots; put must be a
    silent no-op (matching get/delete), never an error -- broadcast's
    contract is 'persisted when the store is durable'."""
    backend = ShardedBackend.memory(shards=4)
    backend.put_feed_snapshot("intel", "public", b"blob")
    assert backend.get_feed_snapshot("intel", "public") is None
    assert backend.delete_feed_snapshot("intel", "public") is False


def test_feed_broadcast_works_on_sharded_memory_backend():
    """Regression: broadcast() on a ShardedBackend.memory community
    must not crash on snapshot persistence; catch-up still works by
    rebuilding the cycle from the stored corpus."""
    community = Community(backend=ShardedBackend.memory(shards=2))
    feed = _build(community)
    live = feed.subscribe("alice", "internal")
    feed.subscribe("late", "internal")
    feed.broadcast()
    live.require_ok()
    caught = feed.catch_up("late")
    caught.require_ok()
    assert caught.view == live.view


def test_reopened_process_generation_coincidence_is_not_trusted(tmp_path):
    """The store's generation counter restarts at 0 per process, so a
    reopened process can coincidentally reach the counter a persisted
    snapshot was stamped with; the boot id must keep that from
    short-circuiting the piecewise staleness checks."""
    path = tmp_path / "community.db"
    community = Community(store_path=path)
    feed = _build(community)
    feed.subscribe("late", "internal")
    feed.broadcast()
    blob = community.store.backend.get_feed_snapshot("intel", "internal")
    stamped = decode_snapshot(blob).generation
    feed.publish(
        "<report><summary>v2</summary><body>b2</body></report>",
        doc_id="rpt",
    )  # stale now: republish without a rebroadcast
    community.close()

    reopened = Community.open(path)
    store = reopened.store
    assert store.generation < stamped
    while store.generation < stamped:
        store.put_wrapped_key("rpt", f"pump:{store.generation}", b"\x00")
    assert store.generation == stamped  # the coincidence under test
    with pytest.raises(PolicyError, match="is stale"):
        reopened.feed("intel").catch_up("late")
    reopened.close()
