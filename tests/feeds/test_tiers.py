"""Tier templates: validation, group naming, rule composition."""

import pytest

from repro.core.rules import Sign
from repro.errors import PolicyError
from repro.feeds import TierSpec, compose_rules


def test_group_subject_is_feed_scoped():
    spec = TierSpec("partner", allow=("/r",))
    assert spec.group("intel") == "feed:intel:partner"
    assert spec.group("other") == "feed:other:partner"


def test_rules_compose_in_declaration_order_with_stable_ids():
    tiers = [
        TierSpec("public", allow=("/r/s",)),
        TierSpec("partner", allow=("/r",), deny=("/r/b/x",), drop=("secret",)),
    ]
    rules = compose_rules("intel", tiers)
    listed = list(rules)
    assert [rule.rule_id for rule in listed] == [
        "F:intel:public:0",
        "F:intel:partner:0",
        "F:intel:partner:1",
        "F:intel:partner:2",
    ]
    assert [rule.subject for rule in listed] == [
        "feed:intel:public",
        "feed:intel:partner",
        "feed:intel:partner",
        "feed:intel:partner",
    ]
    # Composition is deterministic: same tiers, same fingerprint (so
    # the compiled-policy cache hits across republishes).
    again = compose_rules("intel", tiers)
    assert again.fingerprint() == rules.fingerprint()


def test_drop_entries_compile_to_deny_rules():
    spec = TierSpec("partner", allow=("/r",), drop=("secret", "/r/b/note"))
    rules = spec.rules_for("intel")
    drops = [rule for rule in rules if rule.sign is Sign.DENY]
    assert [str(rule.object) for rule in drops] == ["//secret", "/r/b/note"]


def test_string_convenience_coerces_to_tuples():
    spec = TierSpec("public", allow="/r/s", deny="/r/x", drop="secret")
    assert spec.allow == ("/r/s",)
    assert spec.deny == ("/r/x",)
    assert spec.drop == ("secret",)


@pytest.mark.parametrize("bad", ["", "a:b"])
def test_tier_names_must_be_colon_free(bad):
    with pytest.raises(PolicyError):
        TierSpec(bad, allow=("/r",))


def test_quota_must_be_positive():
    with pytest.raises(PolicyError):
        TierSpec("public", allow=("/r",), quota=0)
    assert TierSpec("public", allow=("/r",), quota=1).quota == 1


def test_duplicate_tier_names_refused():
    with pytest.raises(PolicyError):
        compose_rules(
            "intel",
            [TierSpec("public", allow=("/r",)), TierSpec("public", allow=("/r",))],
        )
