"""The Feed subsystem: tier views, key economics, membership.

The acceptance contracts of the tiered-feeds PR live here:

* per-tier views are byte-identical to an equivalent flat ``Channel``
  broadcast of the same composed policy;
* a carousel cycle performs ZERO key wraps and ZERO policy compiles,
  however many members subscribed;
* a join costs exactly one PKI wrap, ever;
* revoking a member performs exactly ONE re-wrap plus an epoch bump,
  regardless of member and document count.
"""

import pytest

from repro.community import Community, TierSpec
from repro.core.nfa import compile_call_count
from repro.crypto.groupkey import wrap_call_count
from repro.errors import KeyNotGranted, PolicyError
from repro.feeds import compose_rules, feed_doc_id
from repro.feeds.keys import member_recipient

REPORT = (
    "<report><summary>sum</summary>"
    "<body>text<secret>classified</secret></body></report>"
)
TIERS = [
    TierSpec("public", allow=("/report/summary",)),
    TierSpec("partner", allow=("/report",), drop=("secret",)),
    TierSpec("internal", allow=("/report",)),
]


def _feed_community(subscribers=(("alice", "public"), ("bob", "partner"), ("carol", "internal"))):
    community = Community()
    owner = community.enroll("owner")
    for name, __ in subscribers:
        community.enroll(name, strict_memory=False)
    feed = community.feed("intel", owner=owner, tiers=TIERS)
    feed.publish(REPORT, doc_id="rpt")
    handles = {
        name: feed.subscribe(name, tier) for name, tier in subscribers
    }
    return community, feed, handles


def test_tier_views_filter_by_tier():
    __, feed, handles = _feed_community()
    feed.broadcast(cycles=2)
    for handle in handles.values():
        handle.require_ok()
    assert handles["alice"].view == "<report><summary>sum</summary></report>"
    assert "<secret>" not in handles["bob"].view
    assert "<body>" in handles["bob"].view
    assert "<secret>classified</secret>" in handles["carol"].view


def test_tier_views_byte_identical_to_flat_channel():
    """A feed tier delivers EXACTLY what a flat per-member channel
    with the same composed policy delivers -- the group-key hierarchy
    changes key economics, never bytes."""
    __, feed, handles = _feed_community()
    feed.broadcast()

    flat = Community()
    owner = flat.enroll("owner")
    members = {
        name: flat.enroll(name, strict_memory=False)
        for name in ("alice", "bob", "carol")
    }
    doc = owner.publish(
        REPORT, compose_rules("intel", TIERS), to=list(members.values()),
        doc_id="rpt",
    )
    channel = flat.channel(doc)
    flat_handles = {
        name: channel.subscribe(
            member, groups=frozenset({f"feed:intel:{tier}"})
        )
        for (name, member), tier in zip(
            members.items(), ("public", "partner", "internal")
        )
    }
    channel.broadcast()
    for name, handle in handles.items():
        assert flat_handles[name].ok
        assert handle.view == flat_handles[name].view


def test_preview_is_one_lane_per_tier_and_matches_cards():
    __, feed, handles = _feed_community()
    feed.broadcast()
    preview = feed.preview()
    assert set(preview) == {"public", "partner", "internal"}
    assert preview["public"] == handles["alice"].view
    assert preview["partner"] == handles["bob"].view
    assert preview["internal"] == handles["carol"].view


def test_double_subscribe_refused_at_the_feed_layer():
    __, feed, __ = _feed_community()
    with pytest.raises(PolicyError, match="already subscribed"):
        feed.subscribe("alice", "public")
    # ... including to a DIFFERENT tier: one card, one session stream.
    with pytest.raises(PolicyError, match="already subscribed"):
        feed.subscribe("alice", "internal")


def test_join_costs_exactly_one_wrap():
    community, feed, __ = _feed_community()
    community.enroll("dave", strict_memory=False)
    before = wrap_call_count()
    feed.subscribe("dave", "partner")
    assert wrap_call_count() - before == 1


def test_carousel_cycle_costs_zero_wraps_and_zero_compiles():
    __, feed, handles = _feed_community()
    feed.broadcast()  # first cycle warms the compiled-policy cache
    wraps = wrap_call_count()
    compiles = compile_call_count()
    feed.broadcast(cycles=3)
    assert wrap_call_count() == wraps
    assert compile_call_count() == compiles
    for handle in handles.values():
        handle.require_ok()


def test_publish_costs_one_wrap_per_tier_not_per_member():
    __, feed, __ = _feed_community()
    before = wrap_call_count()
    feed.publish("<report><summary>two</summary><body>b</body></report>")
    assert wrap_call_count() - before == len(feed.tiers)


def test_revocation_is_exactly_one_rewrap_plus_epoch_bump():
    community, feed, handles = _feed_community()
    feed.broadcast()
    store = community.store
    assert (
        member_recipient("intel", "partner", "bob")
        in store.get(feed_doc_id("intel")).wrapped_keys
    )
    before = wrap_call_count()
    epoch_before = feed.epoch("partner")
    feed.revoke("bob")
    assert wrap_call_count() - before == 1
    assert feed.epoch("partner") == epoch_before + 1
    assert (
        member_recipient("intel", "partner", "bob")
        not in store.get(feed_doc_id("intel")).wrapped_keys
    )
    # Unrelated tiers keep their epoch.
    assert feed.epoch("public") == 1
    assert feed.epoch("internal") == 1


def test_revoked_member_is_detached_and_denied_catch_up():
    __, feed, handles = _feed_community()
    feed.broadcast()
    frozen = handles["bob"].view
    feed.revoke("bob")
    feed.broadcast(cycles=2)
    assert handles["bob"].view == frozen  # detached: view never grows
    with pytest.raises(KeyNotGranted):
        handles["bob"].require_ok()
    with pytest.raises(KeyNotGranted):
        feed.catch_up("bob")
    assert "bob" not in feed.members


def test_remaining_members_unaffected_by_revocation():
    __, feed, handles = _feed_community()
    feed.broadcast()
    carol_before = handles["carol"].view
    feed.revoke("bob")
    feed.broadcast()
    handles["carol"].require_ok()
    handles["alice"].require_ok()
    assert handles["carol"].view == carol_before  # cycle 2 deduplicated


def test_revoked_member_may_rejoin():
    """Revocation is a membership change, not a ban: a fresh subscribe
    re-wraps the tier master for the member under the new epoch."""
    __, feed, __ = _feed_community()
    feed.revoke("bob")
    handle = feed.subscribe("bob", "public")
    feed.broadcast()
    handle.require_ok()
    assert handle.view == "<report><summary>sum</summary></report>"


def test_quota_caps_documents_per_cycle():
    community = Community()
    owner = community.enroll("owner")
    community.enroll("alice", strict_memory=False)
    community.enroll("bob", strict_memory=False)
    feed = community.feed(
        "digest",
        owner=owner,
        tiers=[
            TierSpec("lite", allow=("/r",), quota=1),
            TierSpec("full", allow=("/r",)),
        ],
    )
    feed.publish("<r>one</r>", doc_id="d1")
    feed.publish("<r>two</r>", doc_id="d2")
    lite = feed.subscribe("alice", "lite")
    full = feed.subscribe("bob", "full")
    feed.broadcast()
    lite.require_ok()
    full.require_ok()
    assert list(lite.views) == ["d1"]
    assert list(full.views) == ["d1", "d2"]
    assert full.view == "<r>one</r><r>two</r>"
    assert feed.preview()["lite"] == lite.view
    assert feed.preview()["full"] == full.view


def test_multi_document_views_accumulate_in_cycle_order():
    __, feed, handles = _feed_community()
    feed.publish(
        "<report><summary>second</summary><body>b2</body></report>",
        doc_id="rpt2",
    )
    feed.broadcast(cycles=2)
    assert list(handles["alice"].views) == ["rpt", "rpt2"]
    assert handles["alice"].view == (
        "<report><summary>sum</summary></report>"
        "<report><summary>second</summary></report>"
    )
    assert handles["alice"].docs_complete == 2


def test_subscriber_joining_after_publish_needs_no_regrant():
    """A document published BEFORE a member joined unlocks through the
    tier content key -- no per-member grant ever existed."""
    community, feed, __ = _feed_community()
    community.enroll("erin", strict_memory=False)
    handle = feed.subscribe("erin", "internal")
    feed.broadcast()
    handle.require_ok()
    assert "<secret>classified</secret>" in handle.view


def test_unknown_tier_and_unknown_member_raise():
    community, feed, __ = _feed_community()
    community.enroll("zed", strict_memory=False)
    with pytest.raises(PolicyError, match="no tier"):
        feed.subscribe("zed", "platinum")
    with pytest.raises(PolicyError):
        feed.subscribe("nobody", "public")
    with pytest.raises(PolicyError, match="not subscribed"):
        feed.revoke("owner")


def test_feed_accessor_contract():
    community, feed, __ = _feed_community()
    assert community.feed("intel") is feed
    assert community.feeds == [feed]
    with pytest.raises(PolicyError, match="already exists"):
        community.feed("intel", owner="owner", tiers=TIERS)
    with pytest.raises(PolicyError, match="no feed"):
        community.feed("ghost")
    with pytest.raises(PolicyError, match="at least one tier"):
        community.feed("empty", owner="owner", tiers=[])
    with pytest.raises(PolicyError, match="no ':'"):
        community.feed("a:b", owner="owner", tiers=TIERS)


def test_member_subscribe_sugar():
    community = Community()
    owner = community.enroll("owner")
    alice = community.enroll("alice", strict_memory=False)
    feed = community.feed(
        "intel", owner=owner, tiers=[TierSpec("public", allow=("/r",))]
    )
    feed.publish("<r>x</r>")
    handle = alice.subscribe("intel", "public")
    feed.broadcast()
    handle.require_ok()
    assert handle.view == "<r>x</r>"
