"""FaultPlan determinism: same coordinates, same faults, every time."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan, FaultRule


def _drive(plan, sites):
    return [
        (site, rule.kind if rule is not None else None)
        for site in sites
        for rule in [plan.decide(site)]
    ]


def test_at_indices_fire_exactly_there():
    plan = FaultPlan(0, (FaultRule("s", "fail", at=(1, 3)),))
    kinds = [r.kind if r else None for r in (plan.decide("s") for _ in range(5))]
    assert kinds == [None, "fail", None, "fail", None]
    assert plan.operations("s") == 5
    assert [e.index for e in plan.fired] == [1, 3]


def test_limit_caps_total_firings():
    plan = FaultPlan(0, (FaultRule("s", "fail", probability=1.0, limit=2),))
    kinds = [plan.decide("s") is not None for _ in range(6)]
    assert kinds == [True, True, False, False, False, False]


def test_site_patterns_are_fnmatch():
    plan = FaultPlan(0, (FaultRule("backend.*", "fail", probability=1.0),))
    assert plan.decide("backend.get") is not None
    assert plan.decide("backend.put_document") is not None
    assert plan.decide("socket.recv") is None


def test_counters_are_per_site():
    plan = FaultPlan(0, (FaultRule("a", "fail", at=(1,)),))
    assert plan.decide("a") is None
    # Traffic at other sites must not advance "a"'s counter.
    for _ in range(5):
        plan.decide("b")
    assert plan.decide("a") is not None


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**32), probability=st.floats(0.1, 0.9))
def test_probability_draws_replay_from_the_seed(seed, probability):
    rules = (FaultRule("s", "fail", probability=probability),)
    sites = ["s"] * 40
    first = _drive(FaultPlan(seed, rules), sites)
    second = _drive(FaultPlan(seed, rules), sites)
    assert first == second


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32))
def test_decisions_survive_interleaving(seed):
    """The n-th draw at a site is the same whatever other sites did."""
    rules = (
        FaultRule("a", "fail", probability=0.5),
        FaultRule("b", "stall", probability=0.5),
    )
    solo = FaultPlan(seed, rules)
    solo_a = [solo.decide("a") is not None for _ in range(20)]
    mixed = FaultPlan(seed, rules)
    mixed_a = []
    for n in range(20):
        for _ in range(n % 3):  # arbitrary interleaved traffic at b
            mixed.decide("b")
        mixed_a.append(mixed.decide("a") is not None)
    assert mixed_a == solo_a


def test_describe_names_rules_and_hits():
    plan = FaultPlan(7, (FaultRule("s", "fail", at=(0,), limit=1),))
    plan.decide("s")
    text = plan.describe()
    assert "seed=7" in text
    assert "s: fail" in text
    assert "s#0: fail" in text


def test_rules_can_be_armed_after_construction():
    """Scenarios build worlds fault-free, then arm the plan."""
    plan = FaultPlan(0)
    assert plan.decide("s") is None  # clean publish traffic
    plan.rules = (FaultRule("s", "fail", at=(1,)),)
    assert plan.decide("s") is not None
    assert len(plan.log) == 2
