"""Session/ViewStream teardown after a mid-pull transport failure.

The regression this guards: a pull that dies mid-window used to leave
the abandoned stream generator (and the proxy's pending refetch list)
half-driven, poisoning the *next* pull on the same card.  Now a failed
stream is recorded, closed, and re-raised only to its own consumers;
the next session on the same card delivers the golden view.
"""

import pytest

from repro.chaos import FaultPlan, FaultRule, FaultyClient, InjectedFault
from repro.chaos.scenarios import DOC_ID, build_world, golden_views
from repro.community import Community
from repro.community.session import ViewStream
from repro.dsp.client import LocalDSP
from repro.errors import TransportError


@pytest.fixture
def faulted_reader():
    """A reader attached through a client that can fail mid-window."""
    serving = build_world()
    plan = FaultPlan(0)
    client = FaultyClient(LocalDSP(serving.dsp), plan)
    attached = Community.attach(client)
    attached.enroll("doctor")
    document = attached.adopt(DOC_ID, "owner")
    yield plan, attached, document
    serving.close()


def _arm_mid_window(plan):
    # Chunk fetch op 1: strictly inside the pull, after the header
    # and first window already moved.
    plan.rules = (FaultRule("client.get_chunk*", "fail", at=(1,), limit=1),)


def test_failed_pull_then_clean_pull_same_session(faulted_reader):
    plan, attached, document = faulted_reader
    _arm_mid_window(plan)
    with attached.member("doctor").open(document) as session:
        with pytest.raises(TransportError):
            session.query().text()
        # Same session, same card: the dead stream must not poison us.
        assert session.query().text() == golden_views(1)["doctor"]


def test_failed_pull_then_clean_pull_new_session(faulted_reader):
    plan, attached, document = faulted_reader
    _arm_mid_window(plan)
    member = attached.member("doctor")
    with member.open(document) as session:
        with pytest.raises(TransportError):
            session.query().text()
    # Closing the broken session must neither raise nor park the card.
    with member.open(document) as session:
        assert session.query().text() == golden_views(1)["doctor"]


def test_abandoned_stream_is_closed_not_leaked(faulted_reader):
    plan, attached, document = faulted_reader
    _arm_mid_window(plan)
    member = attached.member("doctor")
    with member.open(document) as session:
        stream = session.query()
        with pytest.raises(TransportError):
            for _ in stream:
                pass
        assert stream.closed
        assert isinstance(stream.error, InjectedFault)
        # Every materializer re-raises the recorded failure: a partial
        # view is never delivered as if it were the document.
        with pytest.raises(TransportError):
            stream.text()
        with pytest.raises(TransportError):
            stream.finish()
    # Fresh pull after the implicit close(): still golden.
    with member.open(document) as session:
        assert session.query().text() == golden_views(1)["doctor"]


def test_abort_is_idempotent_and_silent():
    def gen():
        yield from ()

    stream = ViewStream(gen(), outcome=_outcome())
    stream.abort()
    stream.abort()
    assert stream.closed and stream.error is None


def _outcome():
    from repro.terminal.proxy import QueryOutcome

    return QueryOutcome(xml="")


def test_interrupted_iteration_unwinds_the_generator():
    """abort() runs the generator's finally blocks immediately."""
    unwound = []

    def gen():
        try:
            yield "piece"
            yield "never"
        finally:
            unwound.append(True)

    stream = ViewStream(gen(), outcome=_outcome())
    iterator = iter(stream)
    next(iterator)
    stream.abort()
    assert unwound == [True]
