"""The hostile-world scenario matrix, cell by cell and as a property.

Every (scenario x fault) cell must either raise its documented
:mod:`repro.errors` type or deliver a view byte-identical to the
fault-free golden -- and no cell may hang (the runner's watchdog turns
a hang into a failed cell).  The hypothesis sweep replays the quick
matrix over random seeds: determinism means any red cell reproduces
from its printed ``(scenario, fault, seed)`` coordinates.
"""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import SCENARIOS, Scenario, ScenarioResult, run_cell
from repro.chaos.scenarios import golden_views

ALL_CELLS = [
    (scenario, fault)
    for scenario in SCENARIOS
    for fault in scenario.faults
]
QUICK = [
    (scenario, fault)
    for scenario in SCENARIOS
    for fault in scenario.quick
]


def test_goldens_are_nonempty_and_distinct():
    v1, v2 = golden_views(1), golden_views(2)
    for views in (v1, v2):
        assert set(views) == {"doctor", "accountant"}
        assert all(views.values())
    assert v1["doctor"] != v2["doctor"]  # a republish really moves


def test_quick_set_is_a_subset_of_the_full_matrix():
    assert set(QUICK) <= set(ALL_CELLS)
    names = [scenario.name for scenario in SCENARIOS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize(
    "scenario,fault",
    ALL_CELLS,
    ids=[f"{s.name}-{fault}" for s, fault in ALL_CELLS],
)
def test_matrix_cell(scenario, fault):
    result = run_cell(scenario, fault, seed=0, deadline=60.0)
    assert result.ok, f"{result}\n{result.fault_log}"
    assert result.error != "Hang"


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=1, max_value=2**16))
def test_quick_matrix_holds_for_any_seed(seed):
    for scenario, fault in QUICK:
        result = run_cell(scenario, fault, seed, deadline=60.0)
        assert result.ok, f"{result}\n{result.fault_log}"


def test_watchdog_turns_a_hang_into_a_failed_cell():
    hang = Scenario(
        "hang",
        ("sleep",),
        ("sleep",),
        lambda seed, fault: (time.sleep(30), None)[1],
    )
    start = time.monotonic()
    result = run_cell(hang, "sleep", seed=0, deadline=0.3)
    assert time.monotonic() - start < 5
    assert not result.ok
    assert result.error == "Hang"
    assert "deadline" in result.detail


def test_results_render_readably():
    shown = str(
        ScenarioResult(
            "backend-pull", "torn", 3, ok=True, error="TamperDetected"
        )
    )
    assert "backend-pull" in shown and "torn" in shown and "seed 3" in shown
