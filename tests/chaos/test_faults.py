"""Each injection wrapper, exercised directly at its seam."""

import socket

import pytest

from repro.chaos import (
    FaultPlan,
    FaultRule,
    FaultyBackend,
    FaultyCard,
    FaultyClient,
    FaultySocket,
    InjectedFault,
    crash_reopen,
)
from repro.crypto.container import seal_document
from repro.crypto.keys import DocumentKeys
from repro.dsp.backends import MemoryBackend, ShardedBackend, SQLiteBackend
from repro.dsp.client import LocalDSP
from repro.dsp.server import DSPServer
from repro.dsp.store import DSPStore
from repro.errors import PolicyError, TransportError
from repro.smartcard.apdu import CommandAPDU, Instruction, StatusWord
from repro.smartcard.card import SmartCard

KEYS = DocumentKeys(b"chaos-unit-key!!")


def _container(version=1, payload=b"chaos-payload" * 13):
    return seal_document(payload, "doc", version, KEYS, chunk_size=32)


# -- FaultyBackend -----------------------------------------------------------


def test_backend_fail_is_injected_transport_error():
    plan = FaultPlan(0, (FaultRule("backend.get", "fail", at=(0,)),))
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.put_document(_container())
    with pytest.raises(InjectedFault):
        backend.get("doc")
    assert isinstance(plan.fired[0].kind, str)
    # InjectedFault stays inside the taxonomy contract.
    assert issubclass(InjectedFault, TransportError)
    assert backend.get("doc").container.header.version == 1


def test_backend_stale_serves_the_previous_snapshot():
    plan = FaultPlan(0)
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.put_document(_container(version=1))
    assert backend.get("doc").container.header.version == 1  # seeds it
    backend.put_document(_container(version=2), keep_keys=True)
    plan.rules = (FaultRule("backend.get", "stale", probability=1.0),)
    assert backend.get("doc").container.header.version == 1
    plan.rules = ()
    assert backend.get("doc").container.header.version == 2


def test_backend_stale_without_history_reads_through():
    plan = FaultPlan(
        0, (FaultRule("backend.get", "stale", probability=1.0),)
    )
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.put_document(_container())
    assert backend.get("doc").container.header.version == 1


def test_backend_torn_write_damages_then_raises():
    plan = FaultPlan(0)
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.put_document(_container(version=1))
    backend.put_rules("doc", [b"rule-1"], 1)
    backend.put_wrapped_key("doc", "doctor", b"wrap")
    # The clean v1 write above consumed op 0 at this site.
    plan.rules = (FaultRule("backend.put_document", "torn", at=(1,)),)
    clean = _container(version=2)
    with pytest.raises(InjectedFault):
        backend.put_document(clean)
    stored = backend.get("doc")
    # The damaged v2 container landed: same chunk count, torn tail.
    assert stored.container.header.version == 2
    assert len(stored.container.chunks) == len(clean.chunks)
    assert len(stored.container.chunks[-1]) < len(clean.chunks[-1])
    # ...and the half-applied write left old rules and grants behind.
    assert stored.rule_records == [b"rule-1"]
    assert stored.wrapped_keys == {"doctor": b"wrap"}


def test_backend_mutation_failures_leave_state_untouched():
    plan = FaultPlan(
        0,
        (
            FaultRule("backend.put_rules", "fail", at=(0,)),
            FaultRule("backend.put_wrapped_key", "fail", at=(0,)),
            FaultRule("backend.remove_wrapped_key", "fail", at=(0,)),
        ),
    )
    backend = FaultyBackend(MemoryBackend(), plan)
    backend.put_document(_container())
    for call in (
        lambda: backend.put_rules("doc", [b"r"], 1),
        lambda: backend.put_wrapped_key("doc", "doctor", b"w"),
        lambda: backend.remove_wrapped_key("doc", "doctor"),
    ):
        with pytest.raises(InjectedFault):
            call()
    stored = backend.get("doc")
    assert stored.rule_records == [] and stored.wrapped_keys == {}


def test_crash_reopen_sqlite_and_sharded(tmp_path):
    sqlite = SQLiteBackend(tmp_path / "solo.db")
    sqlite.put_document(_container())
    reopened = crash_reopen(sqlite)
    assert reopened is not sqlite
    assert reopened.get("doc").container.header.version == 1
    reopened.close()

    sharded = ShardedBackend.sqlite(tmp_path / "dsp.db", shards=2)
    sharded.put_document(_container())
    recovered = crash_reopen(sharded)
    assert recovered.get("doc").container.header.version == 1
    recovered.close()


def test_crash_reopen_refuses_volatile_backends():
    with pytest.raises(PolicyError):
        crash_reopen(MemoryBackend())


def test_faulty_backend_crashes_in_place(tmp_path):
    plan = FaultPlan(0)
    wrapper = FaultyBackend(SQLiteBackend(tmp_path / "dsp.db"), plan)
    wrapper.put_document(_container())
    assert crash_reopen(wrapper) is wrapper  # identity preserved
    assert wrapper.get("doc").container.header.version == 1
    wrapper.close()


# -- FaultyClient ------------------------------------------------------------


def _local_client(plan, **kwargs):
    store = DSPStore()
    store.put_document(_container())
    store.put_rules("doc", [b"r"], 1)
    store.put_wrapped_key("doc", "doctor", b"wrap")
    server = DSPServer(store)
    return FaultyClient(LocalDSP(server), plan, **kwargs)


def test_client_fail_raises_before_the_request_leaves():
    plan = FaultPlan(0, (FaultRule("client.get_chunk", "fail", at=(1,)),))
    client = _local_client(plan)
    assert client.get_chunk("doc", 0)  # op 0 passes
    with pytest.raises(InjectedFault):
        client.get_chunk("doc", 1)
    assert client.get_chunk("doc", 1)  # next op is clean again


def test_client_before_hook_sees_site_and_index():
    seen = []
    plan = FaultPlan(0)
    client = _local_client(plan, before=lambda site, index: seen.append((site, index)))
    client.get_header("doc")
    client.get_chunk("doc", 0)
    client.get_chunk("doc", 1)
    assert seen == [
        ("client.get_header", 0),
        ("client.get_chunk", 0),
        ("client.get_chunk", 1),
    ]


def test_client_delegates_every_request_type():
    plan = FaultPlan(0)
    client = _local_client(plan)
    assert client.get_header("doc").doc_id == "doc"
    assert client.get_chunk_range("doc", 0, 2)
    assert client.get_rules("doc") == (1, [b"r"])
    assert client.get_wrapped_key("doc", "doctor") == b"wrap"
    assert client.clock is client.inner.clock


# -- FaultySocket ------------------------------------------------------------


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    return left, right


def test_socket_corrupt_flips_one_byte():
    left, right = _pair()
    plan = FaultPlan(
        0, (FaultRule("socket.recv", "corrupt", at=(0,), arg=2),)
    )
    faulty = FaultySocket(left, plan)
    right.sendall(b"abcdef")
    assert faulty.recv(6) == b"ab" + bytes([ord("c") ^ 0xFF]) + b"def"
    right.sendall(b"abcdef")
    assert faulty.recv(6) == b"abcdef"  # one-shot
    faulty.close()
    right.close()


def test_socket_truncate_delivers_half_then_eof_forever():
    left, right = _pair()
    plan = FaultPlan(0, (FaultRule("socket.recv", "truncate", at=(0,)),))
    faulty = FaultySocket(left, plan)
    right.sendall(b"0123456789")
    assert faulty.recv(10) == b"01234"
    assert faulty.recv(10) == b""
    assert faulty.recv(10) == b""
    right.close()


def test_socket_disconnect_and_stall():
    left, right = _pair()
    plan = FaultPlan(
        0,
        (
            FaultRule("socket.recv", "stall", at=(0,)),
            FaultRule("socket.recv", "disconnect", at=(1,)),
        ),
    )
    faulty = FaultySocket(left, plan)
    right.sendall(b"data")
    with pytest.raises(TimeoutError):
        faulty.recv(4)
    assert faulty.recv(4) == b""  # injected EOF; socket is dead
    right.close()


def test_socket_send_disconnect_resets():
    left, right = _pair()
    plan = FaultPlan(0, (FaultRule("socket.send", "disconnect", at=(0,)),))
    faulty = FaultySocket(left, plan)
    with pytest.raises(ConnectionResetError):
        faulty.sendall(b"request")
    right.close()


# -- FaultyCard --------------------------------------------------------------


def test_card_injects_status_words_and_delegates():
    plan = FaultPlan(
        0,
        (
            FaultRule("card.process", "exhaust", at=(1,)),
            FaultRule("card.process", "tamper", at=(2,)),
        ),
    )
    card = FaultyCard(SmartCard(), plan)
    select = CommandAPDU(ins=Instruction.SELECT)  # op 0 passes through
    assert card.process(select).sw == StatusWord.OK
    assert card.process(select).sw == StatusWord.MEMORY_FAILURE
    assert card.process(select).sw == StatusWord.SECURITY_STATUS_NOT_SATISFIED
    assert card.process(select).sw == StatusWord.OK
    # Non-process attributes delegate to the real card.
    assert card.soe is card.inner.soe
