"""RemoteDSP's resilience layer: retry, reconnect-resume, deadlines.

The contract under test: transport failures heal transparently (the
view a retried session delivers is byte-identical to a fault-free
pull), a retried chunk fetch can never splice two document versions
(:class:`GenerationChanged` guards the resume), typed policy answers
are never retried, and no request ever outlives its deadline silently.
"""

import pytest

from repro.chaos import FaultPlan, FaultRule, FaultySocket
from repro.chaos.scenarios import DOC_ID, build_world, golden_views
from repro.community import Community
from repro.dsp.remote import GenerationChanged, RemoteDSP, RetryPolicy
from repro.errors import TransportError, UnknownDocument


@pytest.fixture
def served():
    community = build_world()
    server = community.serve()
    yield community, server
    community.close()


def _attach(client):
    attached = Community.attach(client)
    attached.enroll("doctor")
    return attached, attached.adopt(DOC_ID, "owner")


# -- backoff schedule --------------------------------------------------------


def test_delays_grow_exponentially_with_deterministic_jitter():
    policy = RetryPolicy(backoff=0.1, multiplier=2.0, jitter=0.5, seed=7)
    delays = [policy.delay(n) for n in range(4)]
    assert delays == [policy.delay(n) for n in range(4)]  # seeded: replays
    for n, delay in enumerate(delays):
        base = 0.1 * 2.0**n
        assert base * 0.5 <= delay <= base  # jitter only ever shrinks
    assert delays[3] > delays[0]


def test_zero_jitter_is_exact():
    policy = RetryPolicy(backoff=0.05, multiplier=3.0, jitter=0.0)
    assert [policy.delay(n) for n in range(3)] == pytest.approx(
        [0.05, 0.15, 0.45]
    )


# -- healing -----------------------------------------------------------------


def test_reconnect_heals_a_dropped_connection(served):
    community, server = served
    plan = FaultPlan(
        0, (FaultRule("socket.recv", "disconnect", at=(4,), limit=1),)
    )
    client = RemoteDSP.connect(
        server.address,
        retry=RetryPolicy(attempts=5, backoff=0.01, deadline=30.0, seed=0),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    attached, document = _attach(client)
    with attached.member("doctor").open(document) as session:
        view = session.query().text()
    assert view == golden_views(1)["doctor"]
    assert client.reconnects >= 1
    client.close()


def test_without_retry_policy_the_failure_is_raised(served):
    community, server = served
    plan = FaultPlan(
        0, (FaultRule("socket.recv", "disconnect", at=(0,), limit=1),)
    )
    client = RemoteDSP.connect(
        server.address, socket_wrapper=lambda sock: FaultySocket(sock, plan)
    )
    with pytest.raises(TransportError):
        client.get_header(DOC_ID)
    client.close()


def test_policy_answers_are_never_retried(served):
    community, server = served
    client = RemoteDSP.connect(
        server.address,
        retry=RetryPolicy(attempts=5, backoff=0.01, deadline=30.0),
    )
    with pytest.raises(UnknownDocument):
        client.get_header("no-such-doc")
    assert client.retries == 0
    client.close()


def test_deadline_surfaces_as_transport_error_never_a_hang(served):
    community, server = served
    # Every recv stalls: the client must give up within the deadline.
    plan = FaultPlan(
        0, (FaultRule("socket.recv", "stall", probability=1.0),)
    )
    client = RemoteDSP.connect(
        server.address,
        retry=RetryPolicy(
            attempts=100, backoff=0.01, deadline=0.5, jitter=0.0
        ),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    with pytest.raises(TransportError, match="deadline"):
        client.get_header(DOC_ID)
    client.close()


# -- the generation guard ----------------------------------------------------


def test_retried_chunk_pull_refuses_a_version_change(served):
    community, server = served
    plan = FaultPlan(0)
    client = RemoteDSP.connect(
        server.address,
        retry=RetryPolicy(attempts=5, backoff=0.01, deadline=30.0, seed=0),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    header = client.get_header(DOC_ID)  # records version 1
    assert header.version == 1
    client.get_chunk(DOC_ID, 0)
    # The document moves on while the connection dies under us.
    community.member("owner").publish(
        community.document(DOC_ID).events,
        community.document(DOC_ID).rules,
        to=["doctor", "accountant"],
        doc_id=DOC_ID,
        chunk_size=64,
    )
    plan.rules = (
        FaultRule("socket.recv", "disconnect", probability=1.0, limit=1),
    )
    with pytest.raises(GenerationChanged):
        client.get_chunk(DOC_ID, 1)
    # The guard is an answer, not a transient: it was not retried away.
    client.close()


def test_same_version_resume_is_transparent(served):
    community, server = served
    plan = FaultPlan(0)
    client = RemoteDSP.connect(
        server.address,
        retry=RetryPolicy(attempts=5, backoff=0.01, deadline=30.0, seed=0),
        socket_wrapper=lambda sock: FaultySocket(sock, plan),
    )
    client.get_header(DOC_ID)
    first = client.get_chunk(DOC_ID, 0)
    plan.rules = (
        FaultRule("socket.recv", "disconnect", probability=1.0, limit=1),
    )
    again = client.get_chunk(DOC_ID, 0)
    assert again == first
    assert client.reconnects == 1
    client.close()
