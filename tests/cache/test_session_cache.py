"""Session-level view-cache tests: hits, parity, and security invariants.

The contract under test, end to end through the community facade:

* a warm query on an unchanged document costs exactly one DSP round
  trip (the ``GET_META`` probe) and zero card time, and delivers bytes
  identical to a fresh pull;
* a republish or rules change is detected by the probe and repulled --
  stale bytes are never served;
* a revoked subject is **never** served from cache: the probe doubles
  as a revocation check and raises ``KeyNotGranted`` even though the
  card still holds its provisioned key (the differential against the
  cache-less path below makes that explicit);
* failed or aborted streams never populate the cache.
"""

import pytest

from repro.chaos.faults import FaultyClient
from repro.chaos.plan import FaultPlan, FaultRule
from repro.community import Community, ViewCache
from repro.core.delivery import ViewMode
from repro.dsp import LocalDSP, RemoteDSP
from repro.errors import KeyNotGranted, PolicyError, TransportError
from repro.smartcard.applet import PendingStrategy
from repro.workloads.docgen import hospital
from repro.workloads.rulegen import hospital_rules
from repro.xmlstream.tree import tree_to_events

DOC = (
    "<notes><work>plan<task>ship</task></work>"
    "<diary>secret</diary><admin>keys</admin></notes>"
)
RULES = [("+", "bob", "/notes"), ("-", "bob", "//diary")]


def _world(*, cache=True, xml=DOC, rules=RULES):
    community = Community()
    alice = community.enroll("alice")
    bob = community.enroll("bob")
    document = alice.publish(xml, rules, to=[bob], doc_id="doc")
    if cache:
        community.enable_view_cache()
    return community, bob, document


def _fresh_pull(xml=DOC, rules=RULES, query=None, **kwargs):
    """The same query in a pristine cache-less world: the parity oracle."""
    community, bob, document = _world(cache=False, xml=xml, rules=rules)
    with bob.open(document) as session:
        return session.query(query, **kwargs).text()


# -- warm hits ---------------------------------------------------------------


def test_warm_query_is_one_probe_zero_card_time_same_bytes():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        cold = session.query()
        cold_text = cold.text()
        cold_requests = cold.metrics.dsp_requests
        warm = session.query()
        warm_text = warm.text()
    assert cold_requests > 1
    assert warm.metrics.dsp_requests == 1  # the GET_META probe, nothing else
    assert warm.metrics.bytes_to_card == 0
    assert warm.metrics.card_cycles == 0.0
    assert warm.metrics.cache_hit == 1
    assert warm.metrics.as_dict()["cache_hit"] == 1
    assert warm_text == cold_text == _fresh_pull()
    assert cache.stats.hits == 1 and cache.stats.stores == 1


def test_warm_hit_survives_session_boundaries():
    community, bob, document = _world()
    with bob.open(document) as session:
        first = session.query().text()
    with bob.open(document) as session:
        stream = session.query()
        assert stream.text() == first
        assert stream.metrics.cache_hit == 1


def test_semantic_hit_answers_narrow_query_from_full_view():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        session.query().text()  # populate with the full authorized view
        narrow = session.query("/notes/work")
        text = narrow.text()
    assert narrow.metrics.dsp_requests == 1
    assert narrow.metrics.cache_semantic_hit == 1
    assert narrow.metrics.card_cycles == 0.0
    assert cache.stats.semantic_hits == 1
    # Byte parity: exactly what a fresh card pull of the narrow query
    # delivers in a cache-less world.
    assert text == _fresh_pull(query="/notes/work")
    # The derived answer was promoted: the repeat is an exact hit.
    with bob.open(document) as session:
        repeat = session.query("/notes/work")
        assert repeat.text() == text
        assert repeat.metrics.cache_hit == 1


def test_refetch_and_prune_shapes_cache_but_never_answer_semantically():
    for kwargs in (
        {"strategy": PendingStrategy.REFETCH},
        {"view_mode": ViewMode.PRUNE},
    ):
        community, bob, document = _world()
        cache = community.view_cache
        with bob.open(document) as session:
            session.query(**kwargs).text()
            warm = session.query(**kwargs)
            warm_text = warm.text()
            assert warm.metrics.cache_hit == 1  # exact hits still work
            narrow = session.query("/notes/work", **kwargs)
            narrow_text = narrow.text()
        assert warm_text == _fresh_pull(**kwargs)
        assert narrow.metrics.cache_semantic_hit == 0
        assert cache.stats.semantic_hits == 0
        assert narrow_text == _fresh_pull(query="/notes/work", **kwargs)


def test_byte_parity_over_the_docgen_corpus():
    corpus = list(tree_to_events(hospital(n_patients=3)))
    rules = hospital_rules()
    community = Community()
    owner = community.enroll("owner")
    doctor = community.enroll("doctor")
    document = owner.publish(corpus, rules, to=[doctor], doc_id="ward")
    community.enable_view_cache()
    queries = [None, "/hospital/ward", "//patient/name", "//episode"]
    with doctor.open(document) as session:
        # Pass 1 populates (and, for the narrow queries, may derive
        # from the full view); pass 2 must hit for every query.
        first = {q: session.query(q).text() for q in queries}
        for query in queries:
            stream = session.query(query)
            assert stream.text() == first[query], query
            metrics = stream.metrics
            assert metrics.cache_hit + metrics.cache_semantic_hit == 1, query
            assert metrics.dsp_requests == 1
    # Every cached answer matches a pristine cache-less pull.
    fresh_community = Community()
    fresh_owner = fresh_community.enroll("owner")
    fresh_doctor = fresh_community.enroll("doctor")
    fresh_doc = fresh_owner.publish(
        corpus, rules, to=[fresh_doctor], doc_id="ward"
    )
    with fresh_doctor.open(fresh_doc) as session:
        for query in queries:
            assert session.query(query).text() == first[query], query


# -- staleness ---------------------------------------------------------------


def test_republish_is_detected_and_repulled():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        old = session.query().text()
        community.member("alice").publish(
            "<notes><work>replan</work><admin>rotated</admin></notes>",
            RULES,
            to=[bob],
            doc_id="doc",
        )
        fresh = session.query()
        text = fresh.text()
    assert fresh.metrics.cache_hit == 0
    assert fresh.metrics.dsp_requests > 1
    assert text != old
    assert text == _fresh_pull(
        xml="<notes><work>replan</work><admin>rotated</admin></notes>"
    )
    assert cache.stats.hits == 0


def test_rules_change_is_detected_and_repulled():
    community, bob, document = _world()
    tightened = [("+", "bob", "/notes"), ("-", "bob", "//diary"),
                 ("-", "bob", "//admin")]
    with bob.open(document) as session:
        old = session.query().text()
        document.update_rules(tightened)
        fresh = session.query()
        text = fresh.text()
    assert fresh.metrics.cache_hit == 0
    assert "admin" in old and "admin" not in text
    assert text == _fresh_pull(rules=tightened)


# -- revocation: the differential --------------------------------------------


def test_revoked_subject_is_never_served_from_cache():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        session.query().text()  # warm: the dangerous state
        hits_before = cache.stats.hits
        document.revoke(bob)
        with pytest.raises(KeyNotGranted):
            session.query()
        # Zero serves of any kind after the revocation, and the
        # subject's entries are gone.
        assert cache.stats.hits == hits_before
        assert cache.stats.semantic_hits == 0
        assert cache.stats.revocation_refusals == 1
        assert len(cache) == 0
        # Still refused on retry -- the refusal is not one-shot.
        with pytest.raises(KeyNotGranted):
            session.query("/notes/work")
    assert cache.stats.revocation_refusals == 2


def test_revocation_differential_cache_is_stricter_than_cacheless():
    """The probe turns key revocation into an *immediate* refusal.

    Without the cache, a card that already unlocked the document keeps
    its provisioned key, so a warm session keeps serving -- the
    documented retained-copy behaviour that ``update_rules`` must
    close.  With the cache enabled, the freshness probe notices the
    missing wrapped key on the very next query and refuses, cache or
    no cache.
    """
    plain, plain_bob, plain_doc = _world(cache=False)
    with plain_bob.open(plain_doc) as session:
        session.query().text()
        plain_doc.revoke(plain_bob)
        retained = session.query().text()  # the retained-copy serve
        assert retained  # the cache-less path really does keep serving
    cached, cached_bob, cached_doc = _world(cache=True)
    with cached_bob.open(cached_doc) as session:
        session.query().text()
        cached_doc.revoke(cached_bob)
        with pytest.raises(KeyNotGranted):
            session.query()


def test_grant_after_revoke_recovers_with_a_fresh_pull():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        first = session.query().text()
        document.revoke(bob)
        with pytest.raises(KeyNotGranted):
            session.query()
        document.grant(bob)
        recovered = session.query()
        assert recovered.text() == first
        assert recovered.metrics.cache_hit == 0  # repulled, not replayed
    assert cache.stats.stores == 2


def test_cross_subject_isolation():
    community = Community()
    alice = community.enroll("alice")
    bob = community.enroll("bob")
    carol = community.enroll("carol")
    document = alice.publish(DOC, RULES + [("+", "carol", "/notes/work")],
                             to=[bob, carol], doc_id="doc")
    cache = community.enable_view_cache()
    with bob.open(document) as session:
        session.query().text()
    with carol.open(document) as session:
        stream = session.query()
        text = stream.text()
    # Carol's different policy yields different bytes; bob's cached
    # view must not leak into her session.
    assert stream.metrics.cache_hit == 0
    assert stream.metrics.cache_semantic_hit == 0
    assert text != _fresh_pull()
    assert cache.stats.misses >= 1


# -- population discipline ---------------------------------------------------


def test_failed_stream_never_populates():
    serving, _, _ = _world(cache=False)
    plan = FaultPlan(0)
    client = FaultyClient(LocalDSP(serving.dsp), plan)
    attached = Community.attach(client)
    attached.enroll("bob")
    document = attached.adopt("doc", "alice")
    cache = attached.enable_view_cache()
    plan.rules = (FaultRule("client.get_chunk*", "fail", at=(0,), limit=1),)
    with attached.member("bob").open(document) as session:
        with pytest.raises(TransportError):
            session.query().text()
        assert len(cache) == 0 and cache.stats.stores == 0
        # The clean retry populates, and the next query hits.
        assert session.query().text() == _fresh_pull()
        assert cache.stats.stores == 1
        warm = session.query()
        warm.text()
        assert warm.metrics.cache_hit == 1
    serving.close()


def test_aborted_stream_never_populates():
    community, bob, document = _world()
    cache = community.view_cache
    with bob.open(document) as session:
        stream = session.query()
        next(iter(stream))  # consume a piece, then walk away
        stream.abort()
    assert len(cache) == 0 and cache.stats.stores == 0


# -- topologies --------------------------------------------------------------


def test_remote_attached_terminal_caches_through_get_meta():
    serving, _, _ = _world(cache=False)
    server = serving.serve()
    client = RemoteDSP.connect(server.address, timeout=10.0)
    try:
        attached = Community.attach(client)
        attached.enroll("bob")
        document = attached.adopt("doc", "alice")
        cache = attached.enable_view_cache()
        with attached.member("bob").open(document) as session:
            cold_text = session.query().text()
            warm = session.query()
            warm_text = warm.text()
        assert warm.metrics.cache_hit == 1
        assert warm.metrics.dsp_requests == 1
        assert warm_text == cold_text == _fresh_pull()
        assert cache.stats.hits == 1
    finally:
        client.close()
        serving.close()


# -- facade API --------------------------------------------------------------


def test_enable_view_cache_is_idempotent_and_guards_replacement():
    community = Community()
    cache = community.enable_view_cache(max_entries=4)
    assert community.enable_view_cache() is cache
    assert community.enable_view_cache(cache) is cache
    with pytest.raises(PolicyError):
        community.enable_view_cache(ViewCache())


def test_cache_can_be_injected_at_construction():
    cache = ViewCache(max_entries=8)
    community = Community(view_cache=cache)
    assert community.view_cache is cache
    assert community.enable_view_cache() is cache


def test_cache_off_by_default_changes_nothing():
    community, bob, document = _world(cache=False)
    with bob.open(document) as session:
        first = session.query()
        text = first.text()
        second = session.query()
    assert community.view_cache is None
    assert second.metrics.cache_hit == 0
    assert second.metrics.dsp_requests == first.metrics.dsp_requests
    assert second.text() == text
