"""Unit tests for the bounded, version-keyed view cache.

Everything here drives :class:`~repro.cache.viewcache.ViewCache`
directly with hand-built entries and probes -- the session integration
(live pulls, real revocations) lives in ``test_session_cache.py``.
"""

import pytest

from repro.cache.viewcache import CacheKey, CachedView, ViewCache
from repro.dsp.wire import DocMeta


def _key(query=None, *, doc_id="doc-1", subject="bob", strategy="buffer",
         view_mode="skeleton", groups=frozenset()):
    return CacheKey(
        doc_id=doc_id,
        subject=subject,
        query=query,
        strategy=strategy,
        view_mode=view_mode,
        groups=groups,
    )


def _meta(*, doc_version=1, rules_version=1, generation=1, boot="b1",
          has_key=True):
    return DocMeta(
        doc_version=doc_version,
        rules_version=rules_version,
        generation=generation,
        boot=boot,
        has_key=has_key,
    )


def _store(cache, key, xml="<a>x</a>", doc_version=1, rules_version=1):
    entry = cache.record(
        key,
        xml=xml,
        pieces=(("view", xml, 0, None),),
        fragments=(),
        doc_version=doc_version,
        rules_version=rules_version,
    )
    assert entry is not None
    return entry


# -- freshness ---------------------------------------------------------------


def test_exact_hit_via_piecewise_check_then_stamped_fast_path():
    cache = ViewCache()
    key = _key()
    _store(cache, key)
    # A freshly recorded entry is unstamped: the first probe validates
    # piecewise (versions match) and stamps the store generation.
    probe = _meta(generation=7, boot="boot-a")
    found = cache.lookup(key, probe)
    assert found is not None and found[1] is False
    assert found[0].generation == 7 and found[0].boot == "boot-a"
    # Same stamp, *different* doc version: the fast path answers
    # without ever comparing versions -- a matching (generation, boot)
    # proves nothing at the store changed, including this document.
    assert cache.lookup(key, _meta(doc_version=99, generation=7, boot="boot-a"))
    assert cache.stats.hits == 2


def test_version_bump_drops_the_entry_and_misses():
    cache = ViewCache()
    key = _key()
    _store(cache, key, doc_version=1, rules_version=1)
    assert cache.lookup(key, _meta(doc_version=2)) is None
    assert cache.stats.misses == 1
    assert cache.stats.invalidations == 1
    assert len(cache) == 0 and cache.bytes_used == 0


def test_rules_bump_is_as_fatal_as_a_doc_bump():
    cache = ViewCache()
    key = _key()
    _store(cache, key, doc_version=1, rules_version=1)
    assert cache.lookup(key, _meta(rules_version=2)) is None
    assert cache.entry(key) is None


def test_generation_mismatch_alone_is_not_a_miss():
    # A generation bump caused by *another* document must fall back to
    # the piecewise check and still hit (then re-stamp).
    cache = ViewCache()
    key = _key()
    _store(cache, key)
    assert cache.lookup(key, _meta(generation=3, boot="b"))
    assert cache.lookup(key, _meta(generation=4, boot="b"))
    entry = cache.entry(key)
    assert entry is not None and entry.generation == 4


def test_boot_nonce_change_invalidates_the_stamp_not_the_entry():
    # A store restart (new boot nonce) resets generations; versions
    # still prove freshness, and the entry re-stamps under the new boot.
    cache = ViewCache()
    key = _key()
    _store(cache, key)
    assert cache.lookup(key, _meta(generation=9, boot="boot-1"))
    assert cache.lookup(key, _meta(generation=1, boot="boot-2"))
    entry = cache.entry(key)
    assert entry is not None and entry.boot == "boot-2"


def test_lookup_asserts_revoked_probes_are_refused_first():
    cache = ViewCache()
    key = _key()
    _store(cache, key)
    with pytest.raises(AssertionError):
        cache.lookup(key, _meta(has_key=False))


# -- population --------------------------------------------------------------


def test_record_refuses_entries_without_validators():
    cache = ViewCache()
    assert cache.record(
        _key(), xml="<a/>", pieces=(), fragments=(),
        doc_version=None, rules_version=1,
    ) is None
    assert cache.record(
        _key(), xml="<a/>", pieces=(), fragments=(),
        doc_version=1, rules_version=None,
    ) is None
    assert len(cache) == 0 and cache.stats.stores == 0


def test_replacing_an_entry_does_not_leak_bytes():
    cache = ViewCache()
    key = _key()
    _store(cache, key, xml="<a>one</a>")
    used = cache.bytes_used
    _store(cache, key, xml="<a>two</a>")
    assert len(cache) == 1
    assert cache.bytes_used == used
    assert cache.stats.stores == 2


def test_oversized_entry_is_rejected_not_cached():
    cache = ViewCache(max_bytes=512)
    key = _key()
    cache.record(
        key,
        xml="x" * 4096,
        pieces=(),
        fragments=(),
        doc_version=1,
        rules_version=1,
    )
    assert len(cache) == 0 and cache.bytes_used == 0


# -- bounds ------------------------------------------------------------------


def test_entry_count_bound_evicts_least_recently_used():
    cache = ViewCache(max_entries=2)
    a, b, c = _key("/a"), _key("/b"), _key("/c")
    _store(cache, a)
    _store(cache, b)
    # Touch ``a`` so ``b`` becomes the LRU victim.
    assert cache.lookup(a, _meta())
    _store(cache, c)
    assert cache.entry(a) is not None
    assert cache.entry(b) is None
    assert cache.entry(c) is not None
    assert cache.stats.evictions == 1


def test_byte_budget_evicts_before_count_bound():
    cache = ViewCache(max_entries=100, max_bytes=1200)
    for index in range(4):
        _store(cache, _key(f"/q{index}"), xml=f"<a>{'x' * 200}</a>")
    assert cache.bytes_used <= 1200
    assert len(cache) < 4
    assert cache.stats.evictions >= 1


def test_bounds_must_be_positive():
    with pytest.raises(ValueError):
        ViewCache(max_entries=0)
    with pytest.raises(ValueError):
        ViewCache(max_bytes=0)


# -- invalidation ------------------------------------------------------------


def test_invalidate_subject_is_surgical():
    cache = ViewCache()
    _store(cache, _key("/a", subject="bob"))
    _store(cache, _key("/a", subject="carol"))
    _store(cache, _key("/a", subject="bob", doc_id="doc-2"))
    assert cache.invalidate_subject("doc-1", "bob") == 1
    assert cache.entry(_key("/a", subject="carol")) is not None
    assert cache.entry(_key("/a", subject="bob", doc_id="doc-2")) is not None


def test_invalidate_document_drops_every_subject():
    cache = ViewCache()
    _store(cache, _key("/a", subject="bob"))
    _store(cache, _key("/a", subject="carol"))
    _store(cache, _key("/a", doc_id="doc-2"))
    assert cache.invalidate_document("doc-1") == 2
    assert len(cache) == 1


def test_refuse_revoked_counts_the_refusal():
    cache = ViewCache()
    _store(cache, _key("/a"))
    _store(cache, _key("/b"))
    assert cache.refuse_revoked("doc-1", "bob") == 2
    assert cache.stats.revocation_refusals == 1
    assert cache.stats.invalidations == 2
    assert len(cache) == 0


def test_clear_resets_bytes_and_counts_invalidations():
    cache = ViewCache()
    _store(cache, _key("/a"))
    _store(cache, _key("/b"))
    assert cache.clear() == 2
    assert len(cache) == 0 and cache.bytes_used == 0
    assert cache.stats.invalidations == 2


# -- semantic answering through the cache ------------------------------------

DONOR_XML = "<notes><work>plan<task>ship</task></work><admin>keys</admin></notes>"


def test_semantic_hit_derives_stores_and_promotes():
    cache = ViewCache()
    donor = _key(None)  # the full authorized view
    _store(cache, donor, xml=DONOR_XML)
    narrow = _key("/notes/work")
    probe = _meta(generation=5, boot="b5")
    found = cache.lookup(narrow, probe)
    assert found is not None
    entry, derived = found
    assert derived is True
    assert entry.xml == "<notes><work>plan<task>ship</task></work></notes>"
    assert cache.stats.semantic_hits == 1
    # The derived entry was stored first-class (and pre-stamped with
    # the probe), so the identical query next time is an *exact* hit.
    again = cache.lookup(narrow, probe)
    assert again is not None and again[1] is False
    assert cache.stats.hits == 1


def test_semantic_answer_never_crosses_subjects_or_documents():
    cache = ViewCache()
    _store(cache, _key(None, subject="bob"), xml=DONOR_XML)
    assert cache.lookup(_key("/notes/work", subject="carol"), _meta()) is None
    assert (
        cache.lookup(_key("/notes/work", doc_id="doc-2"), _meta()) is None
    )


def test_semantic_answer_refused_for_refetch_and_prune_shapes():
    cache = ViewCache()
    for strategy, view_mode in (
        ("refetch", "skeleton"),
        ("buffer", "prune"),
    ):
        donor = _key(None, strategy=strategy, view_mode=view_mode)
        _store(cache, donor, xml=DONOR_XML)
        narrow = _key("/notes/work", strategy=strategy, view_mode=view_mode)
        assert cache.lookup(narrow, _meta()) is None


def test_semantic_answer_refused_for_predicate_queries():
    cache = ViewCache()
    _store(cache, _key(None), xml=DONOR_XML)
    assert cache.lookup(_key('/notes/work[task = "x"]'), _meta()) is None


def test_stale_donor_is_dropped_not_answered_from():
    cache = ViewCache()
    _store(cache, _key(None), xml=DONOR_XML, doc_version=1)
    assert cache.lookup(_key("/notes/work"), _meta(doc_version=2)) is None
    assert len(cache) == 0  # the probe proved the donor outdated
    assert cache.stats.invalidations == 1


def test_has_candidates_predicts_lookup():
    cache = ViewCache()
    assert not cache.has_candidates(_key("/notes/work"))
    _store(cache, _key(None), xml=DONOR_XML)
    assert cache.has_candidates(_key(None))  # exact
    assert cache.has_candidates(_key("/notes/work"))  # semantic donor
    assert not cache.has_candidates(_key("/x", subject="carol"))
    assert not cache.has_candidates(_key('/a[b = "1"]'))  # not answerable


# -- stats -------------------------------------------------------------------


def test_stats_as_dict_carries_every_counter():
    cache = ViewCache()
    _store(cache, _key())
    cache.lookup(_key(), _meta())
    stats = cache.stats.as_dict()
    assert stats["hits"] == 1 and stats["stores"] == 1
    assert set(stats) == {
        "hits", "semantic_hits", "misses", "probes", "invalidations",
        "evictions", "revocation_refusals", "stores",
    }
