"""Unit and differential tests for containment-based view answering.

The load-bearing property: within the shapes ``answerable`` admits,
:func:`~repro.cache.semantic.answer_from_view` must produce *exactly*
the bytes the reference engine would -- the cached text round-trips
through the parser and back out through the shared writer with nothing
gained or lost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import semantic
from repro.core.delivery import ViewMode
from repro.core.reference import reference_view
from repro.core.rules import RuleSet, Sign
from repro.workloads import docgen
from repro.xmlstream.tree import tree_to_events
from repro.xmlstream.writer import write_string
from repro.xpathlib import parse_path


# -- admission rules ---------------------------------------------------------


def test_parse_query_rejects_garbage_and_relative_paths():
    assert semantic.parse_query("/a/b") is not None
    assert semantic.parse_query("///") is None
    assert semantic.parse_query("not an xpath [") is None


def test_structural_means_predicate_free():
    assert semantic.structural(parse_path("/a//b/*"))
    assert not semantic.structural(parse_path("/a[b]/c"))
    assert not semantic.structural(parse_path('//a[. = "1"]'))


def test_answerable_only_for_buffered_skeleton_sessions():
    assert semantic.answerable(None, "buffer", "skeleton")
    assert semantic.answerable("/a/b", "buffer", "skeleton")
    assert not semantic.answerable("/a/b", "refetch", "skeleton")
    assert not semantic.answerable("/a/b", "buffer", "prune")
    assert not semantic.answerable("/a[b]", "buffer", "skeleton")
    assert not semantic.answerable("][", "buffer", "skeleton")


def test_covers_is_containment_with_a_full_view_donor():
    assert semantic.covers(None, "/a/b")  # whole view covers everything
    assert semantic.covers("//b", "/a/b")
    assert not semantic.covers("/a/b", "//b")
    assert not semantic.covers("//b", '/a/b[c = "1"]')  # predicate target
    assert not semantic.covers("/a[b]", "/a")  # donor narrower


# -- answering ---------------------------------------------------------------


def test_answer_from_empty_view_is_empty():
    assert semantic.answer_from_view("", "/a") == ""


def test_answer_from_multirooted_view_is_refused():
    assert semantic.answer_from_view("<a/><b/>", "/a") is None


def test_answer_selects_subtrees_with_retained_ancestors():
    view = "<notes><work>plan<task>ship</task></work><admin>keys</admin></notes>"
    assert (
        semantic.answer_from_view(view, "/notes/work")
        == "<notes><work>plan<task>ship</task></work></notes>"
    )
    assert semantic.answer_from_view(view, "//task") == (
        "<notes><work><task>ship</task></work></notes>"
    )
    assert semantic.answer_from_view(view, "/notes/none") == ""


def test_answer_refuses_predicates_even_when_direct():
    view = "<notes><work>plan</work></notes>"
    assert semantic.answer_from_view(view, "/notes/work[x]") is None


# -- byte parity with the reference engine -----------------------------------
#
# A cached view is itself reference-engine output; answering ``q``
# from it must equal running the reference engine on the *original*
# tree with ``q`` as the query (the view for ``q`` under the same
# PERMIT-all policy).  Containment guarantees the donor retained every
# node ``q`` selects, so the two evaluations see identical subtrees.

_CORPUS = {
    "hospital": (
        docgen.hospital(n_patients=3),
        ["hospital", "ward", "patient", "episode", "diagnosis", "name",
         "prescription", "billing"],
    ),
    "agenda": (
        docgen.agenda(n_members=3, events_per_member=3),
        ["agenda", "member", "event", "title", "participants", "private"],
    ),
}


@st.composite
def _structural_query(draw, tags):
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        axis = draw(st.sampled_from(["/", "//"]))
        steps.append(f"{axis}{draw(st.sampled_from(tags + ['*']))}")
    return "".join(steps)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_answer_matches_reference_evaluation_on_docgen(data):
    corpus = data.draw(st.sampled_from(sorted(_CORPUS)), label="corpus")
    root, tags = _CORPUS[corpus]
    query = data.draw(_structural_query(tags), label="query")
    # The donor: the full tree rendered as a PERMIT-all skeleton view.
    donor_xml = write_string(tree_to_events(root))
    expected = write_string(
        reference_view(
            root,
            RuleSet([]),
            query=parse_path(query),
            mode=ViewMode.SKELETON,
            default=Sign.PERMIT,
        )
    )
    assert semantic.answer_from_view(donor_xml, query) == expected
